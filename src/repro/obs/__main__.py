"""``python -m repro.obs`` — journal analysis + live dashboards.

Examples::

    # Per-trace critical paths + FU/link utilization
    python -m repro.obs journal.json

    # One request only (trace-id prefixes work)
    python -m repro.obs journal.json --trace-id 3fa94b2c

    # CI health gate: exit 1 unless every row is trace-stamped and every
    # successful serve trace has compile + simulate children
    python -m repro.obs journal.json --check

    # Prometheus textfile synthesized from the journal rows
    python -m repro.obs journal.json --prom-out metrics.prom

    # Live dashboard over a router/server status document
    # (ClusterRouter(live_status_path=...) / CinnamonServer(...)):
    python -m repro.obs top status.json          # refresh until Ctrl-C
    python -m repro.obs top status.json --once   # one frame (CI-able)

    # Continuous Prometheus textfile re-export of the live snapshot
    python -m repro.obs watch status.json --prom-out metrics.prom --once
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from .analyze import check, load_journal, registry_from_journal, render_report


def _fmt_unix(unix: float) -> str:
    return time.strftime("%H:%M:%S", time.localtime(unix))


def render_top(document: dict) -> str:
    """One text frame of the live dashboard from a status document."""
    lines = [
        f"cinnamon live — {document.get('process', '?')}  "
        f"updated {_fmt_unix(document.get('updated_unix', 0.0))}  "
        f"(schema {document.get('schema', '?')})"
    ]
    workers = document.get("workers") or []
    if workers:
        live = sum(1 for w in workers if w.get("live"))
        lines.append(f"workers: {live}/{len(workers)} live  "
                     + "  ".join(
                         f"{w.get('id')}[{'up' if w.get('live') else 'down'}"
                         f" pend={w.get('pending', 0)}]"
                         for w in workers))
    slos = document.get("slos") or []
    if slos:
        lines.append("slo                     burn   budget  bad%    events")
        for entry in slos:
            lines.append(
                f"  {entry.get('slo', '?'):<21} "
                f"{entry.get('burn_rate', 0.0):6.2f} "
                f"{entry.get('budget_remaining', 1.0):7.1%} "
                f"{entry.get('bad_fraction', 0.0):6.1%} "
                f"{entry.get('events', 0):9d}")
    tenants = document.get("tenants") or []
    if tenants:
        lines.append("tenant       requests      ok  failed"
                     "    sim_cycles  bootstraps          bytes  compile_s")
        for row in tenants:
            lines.append(
                f"  {row['tenant']:<10} {row['requests']:9.0f} "
                f"{row['ok']:7.0f} {row['failed']:7.0f} "
                f"{row['sim_cycles']:13.0f} {row['bootstraps']:11.0f} "
                f"{row['bytes']:14.0f} {row['compile_s']:10.3f}")
    alerts = document.get("alerts") or []
    if alerts:
        lines.append(f"alerts ({len(alerts)}):")
        for alert in alerts[-5:]:
            lines.append(
                f"  [{alert.get('severity', '?'):<4}] "
                f"{_fmt_unix(alert.get('fired_unix', 0.0))} "
                f"{alert.get('slo', '?')}: "
                f"burn {alert.get('burn_rate', 0.0):.1f}x "
                f"over {alert.get('long_window_s', 0.0):g}s")
    bundles = document.get("flight_bundles") or []
    if bundles:
        lines.append(f"flight bundles: {len(bundles)} "
                     f"(latest {bundles[-1]})")
    return "\n".join(lines)


def _load_status(path: str) -> dict:
    with open(path) as handle:
        return json.load(handle)


def _cmd_top(args) -> int:
    while True:
        try:
            document = _load_status(args.status)
        except (OSError, ValueError) as exc:
            print(f"cannot read status document {args.status}: {exc}",
                  file=sys.stderr)
            if args.once:
                return 1
            time.sleep(args.interval)
            continue
        if not args.once:
            sys.stdout.write("\x1b[2J\x1b[H")   # clear screen, home
        print(render_top(document))
        if args.once:
            return 0
        try:
            time.sleep(args.interval)
        except KeyboardInterrupt:   # pragma: no cover - interactive
            return 0


def _cmd_watch(args) -> int:
    from .live import render_snapshot_prometheus

    while True:
        try:
            document = _load_status(args.status)
        except (OSError, ValueError) as exc:
            print(f"cannot read status document {args.status}: {exc}",
                  file=sys.stderr)
            if args.once:
                return 1
            time.sleep(args.interval)
            continue
        body = render_snapshot_prometheus(document.get("snapshot", {}))
        if args.prom_out:
            with open(args.prom_out, "w") as handle:
                handle.write(body)
            print(f"wrote {args.prom_out} "
                  f"({len(body.splitlines())} lines)")
        else:
            print(body, end="")
        if args.once:
            return 0
        try:
            time.sleep(args.interval)
        except KeyboardInterrupt:   # pragma: no cover - interactive
            return 0


def _live_parser(prog: str, description: str) -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog=prog, description=description)
    parser.add_argument("status", help="live status document JSON "
                        "(live_status_path= on the router/server)")
    parser.add_argument("--once", action="store_true",
                        help="render one frame and exit")
    parser.add_argument("--interval", type=float, default=1.0,
                        help="refresh period in seconds (default 1)")
    return parser


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "top":
        parser = _live_parser(
            "python -m repro.obs top",
            "Live cluster dashboard over a status document.")
        return _cmd_top(parser.parse_args(argv[1:]))
    if argv and argv[0] == "watch":
        parser = _live_parser(
            "python -m repro.obs watch",
            "Continuous Prometheus textfile export of the live "
            "merged snapshot.")
        parser.add_argument("--prom-out", default=None, metavar="FILE",
                            help="textfile destination (default: stdout)")
        return _cmd_watch(parser.parse_args(argv[1:]))

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Critical-path and utilization analysis of a "
                    "repro trace journal (schema >= 5); "
                    "subcommands `top` and `watch` render live status "
                    "documents instead.")
    parser.add_argument("journal", help="trace journal JSON "
                        "(CinnamonServer.export_trace / session.export_trace)")
    parser.add_argument("--trace-id", default=None,
                        help="report a single trace (prefix match)")
    parser.add_argument("--check", action="store_true",
                        help="verify cross-layer invariants; exit 1 on "
                             "any problem")
    parser.add_argument("--prom-out", default=None, metavar="FILE",
                        help="write a Prometheus textfile synthesized "
                             "from the journal")
    args = parser.parse_args(argv)

    document = load_journal(args.journal)

    if args.check:
        problems = check(document)
        if problems:
            for problem in problems:
                print(f"FAIL: {problem}")
            return 1
        traces = sum(1 for _ in set(
            row.get("trace_id") for row in document.get("jobs", ())
            if row.get("trace_id")))
        print(f"OK: {len(document.get('jobs', []))} rows, "
              f"{traces} traces, all invariants hold")
        return 0

    print(render_report(document, trace_id=args.trace_id))

    if args.prom_out:
        registry = registry_from_journal(document)
        with open(args.prom_out, "w") as handle:
            handle.write(registry.render_prometheus())
        print(f"wrote {args.prom_out}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
