"""Unified counter/gauge/histogram metrics for the whole stack.

A tiny, dependency-free registry in the Prometheus data model: counters
only go up, gauges float, histograms keep cumulative buckets *plus* a
bounded reservoir so the snapshot can report exact-ish p50/p95/p99
quantiles (Prometheus proper computes those server-side; a self-contained
loadgen report needs them locally).

Historically this lived in :mod:`repro.serve.metrics` and counted only
the serving layer; it is now the process-wide home so runtime, cache,
tuning, and recovery metrics land in the same scrape
(:func:`default_registry`).  ``repro.serve.metrics`` re-exports
everything here for backwards compatibility.

Two exports:

* :meth:`MetricsRegistry.render_prometheus` — text exposition format
  (``# HELP`` / ``# TYPE`` / ``name{label="v"} value``), scrapeable;
* :meth:`MetricsRegistry.snapshot` — one JSON-serializable dict, the
  artifact the CI smoke job uploads.
"""

from __future__ import annotations

import json
import random
import threading
from bisect import bisect_left, insort
from typing import Dict, Iterable, List, Optional, Tuple

#: Default histogram buckets, in seconds — spans sub-ms queue waits to
#: multi-minute paper-scale bootstrap compiles.
DEFAULT_BUCKETS = (0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
                   1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0)

#: Buckets for simulated-cycle histograms (1K cycles to 1G cycles).
CYCLE_BUCKETS = (1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9)

#: Reservoir size per histogram; beyond this, uniform replacement keeps
#: the sample representative without unbounded memory.
RESERVOIR_SIZE = 4096

#: Snapshots carry the raw reservoir only while it is still *exact*
#: (every observation is in it) and small enough for the wire; beyond
#: this the cluster merge falls back to count-weighted quantiles.
SNAPSHOT_SAMPLES_MAX = 512

LabelSet = Tuple[Tuple[str, str], ...]


def _labels_key(labels: Optional[dict]) -> LabelSet:
    return tuple(sorted((str(k), str(v)) for k, v in (labels or {}).items()))


def _labels_text(key: LabelSet, extra: str = "") -> str:
    parts = [f'{k}="{v}"' for k, v in key]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def quantile_from_sorted(samples: List[float], q: float) -> Optional[float]:
    """Quantile of a *sorted* sample list — the one nearest-rank formula
    shared by :meth:`Histogram.quantile`, the cluster merge, and the live
    time-series windows, so single-process and merged values agree."""
    if not samples:
        return None
    if len(samples) == 1:
        return samples[0]
    idx = min(len(samples) - 1, int(q * (len(samples) - 1) + 0.5))
    return samples[idx]


class Counter:
    """Monotonic counter."""

    kind = "counter"

    def __init__(self, name: str, help: str, labels: LabelSet):
        self.name, self.help, self.labels = name, help, labels
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def expose(self) -> List[str]:
        return [f"{self.name}{_labels_text(self.labels)} {self.value:g}"]

    def snapshot_value(self):
        return self.value


class Gauge:
    """Point-in-time value."""

    kind = "gauge"

    def __init__(self, name: str, help: str, labels: LabelSet):
        self.name, self.help, self.labels = name, help, labels
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def expose(self) -> List[str]:
        return [f"{self.name}{_labels_text(self.labels)} {self.value:g}"]

    def snapshot_value(self):
        return self.value


class Histogram:
    """Cumulative-bucket histogram with a quantile reservoir."""

    kind = "histogram"

    def __init__(self, name: str, help: str, labels: LabelSet,
                 buckets: Iterable[float] = DEFAULT_BUCKETS):
        self.name, self.help, self.labels = name, help, labels
        self.buckets = tuple(sorted(buckets))
        self._counts = [0] * (len(self.buckets) + 1)  # +inf tail
        self._count = 0
        self._sum = 0.0
        self._max = 0.0
        self._reservoir: List[float] = []   # kept sorted for quantiles
        self._rng = random.Random(0x5e12e)  # deterministic replacement
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._counts[bisect_left(self.buckets, value)] += 1
            self._count += 1
            self._sum += value
            self._max = max(self._max, value)
            if len(self._reservoir) < RESERVOIR_SIZE:
                insort(self._reservoir, value)
            else:
                slot = self._rng.randrange(self._count)
                if slot < RESERVOIR_SIZE:
                    del self._reservoir[self._rng.randrange(RESERVOIR_SIZE)]
                    insort(self._reservoir, value)

    def quantile(self, q: float) -> Optional[float]:
        """Quantile estimate from the reservoir.

        An empty reservoir has no quantiles — ``None``, not a misleading
        0.0; a single-sample reservoir returns that sample for every q.
        """
        with self._lock:
            return quantile_from_sorted(self._reservoir, q)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def expose(self) -> List[str]:
        with self._lock:
            lines, cumulative = [], 0
            for bound, bucket_count in zip(self.buckets, self._counts):
                cumulative += bucket_count
                le = f'le="{bound:g}"'
                lines.append(
                    f"{self.name}_bucket{_labels_text(self.labels, le)} "
                    f"{cumulative}")
            cumulative += self._counts[-1]
            inf = 'le="+Inf"'
            lines.append(
                f"{self.name}_bucket{_labels_text(self.labels, inf)} "
                f"{cumulative}")
            lines.append(
                f"{self.name}_sum{_labels_text(self.labels)} {self._sum:g}")
            lines.append(
                f"{self.name}_count{_labels_text(self.labels)} {self._count}")
            return lines

    def snapshot_value(self) -> dict:
        with self._lock:
            count, total = self._count, self._sum
            maximum = self._max
            counts = list(self._counts)
            samples = (list(self._reservoir)
                       if 0 < count <= SNAPSHOT_SAMPLES_MAX else None)
        value = {
            "count": count,
            "sum": total,
            "mean": total / count if count else 0.0,
            "max": maximum,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "buckets": {"le": list(self.buckets), "counts": counts},
        }
        if samples is not None:
            value["samples"] = samples
        return value


class MetricsRegistry:
    """Get-or-create registry of named (and optionally labeled) series."""

    def __init__(self):
        self._metrics: Dict[Tuple[str, LabelSet], object] = {}
        self._help: Dict[str, Tuple[str, str]] = {}  # name -> (kind, help)
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #

    def _get_or_create(self, cls, name: str, help: str,
                       labels: Optional[dict], **kwargs):
        key = (name, _labels_key(labels))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                declared = self._help.setdefault(name, (cls.kind, help))
                if declared[0] != cls.kind:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{declared[0]}, not {cls.kind}")
                metric = cls(name, help or declared[1], key[1], **kwargs)
                self._metrics[key] = metric
            elif not isinstance(metric, cls):
                raise ValueError(f"metric {name!r} is not a {cls.kind}")
            return metric

    def counter(self, name: str, help: str = "",
                labels: Optional[dict] = None) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "",
              labels: Optional[dict] = None) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(self, name: str, help: str = "",
                  labels: Optional[dict] = None,
                  buckets: Iterable[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._get_or_create(Histogram, name, help, labels,
                                   buckets=buckets)

    # ------------------------------------------------------------------ #

    def render_prometheus(self) -> str:
        """Prometheus text exposition format (one scrape body)."""
        with self._lock:
            ordered = sorted(self._metrics.items())
            help_map = dict(self._help)
        lines, seen = [], set()
        for (name, _), metric in ordered:
            if name not in seen:
                seen.add(name)
                kind, help_text = help_map[name]
                if help_text:
                    lines.append(f"# HELP {name} {help_text}")
                lines.append(f"# TYPE {name} {kind}")
            lines.extend(metric.expose())
        return "\n".join(lines) + "\n"

    def snapshot(self) -> dict:
        """JSON-serializable state of every series."""
        with self._lock:
            ordered = sorted(self._metrics.items())
        out: dict = {}
        for (name, labels), metric in ordered:
            entry = out.setdefault(name, {"type": metric.kind, "series": []})
            entry["series"].append({
                "labels": dict(labels),
                "value": metric.snapshot_value(),
            })
        return out

    def snapshot_json(self, indent: int = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=False)


# ---------------------------------------------------------------------- #
# The process-global default registry.

_DEFAULT_REGISTRY = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide registry the runtime/cache/tune/recovery layers
    report into (the serving layer takes a registry per server so tests
    stay isolated; pass ``metrics=default_registry()`` to merge them)."""
    return _DEFAULT_REGISTRY
