"""Journal analysis: critical paths, utilization, and a Prometheus dump.

Everything here works from the *trace journal alone* — the JSON document
:class:`repro.runtime.trace.TraceRecorder` renders (schema >= 5, where
rows carry ``trace_id``/``span_id``).  That makes ``python -m repro.obs``
usable on an artifact from another process or another machine: no live
tracer or registry required.

The per-trace breakdown splits one request's wall time into

* ``queue``   — admission-queue wait (``queue_s - batch_s``),
* ``batch``   — batcher coalescing window,
* ``compile`` — wall time of the trace's compile rows (hits included),
* ``sim``     — wall time of its simulate rows,
* ``recovery``— detection + degraded recompile + replay,
* ``other``   — the unattributed remainder (scheduling, bookkeeping).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from .metrics import CYCLE_BUCKETS, MetricsRegistry

#: Breakdown phases, in report order.
PHASES = ("queue", "batch", "compile", "sim", "recovery", "other")


def load_journal(path: str) -> dict:
    with open(path) as handle:
        return json.load(handle)


def group_by_trace(document: dict) -> Dict[str, List[dict]]:
    """Journal rows keyed by ``trace_id`` (untraced rows are dropped)."""
    traces: Dict[str, List[dict]] = {}
    for row in document.get("jobs", ()):
        trace_id = row.get("trace_id")
        if trace_id:
            traces.setdefault(trace_id, []).append(row)
    return traces


def breakdown(rows: List[dict]) -> dict:
    """Critical-path split for one trace's rows (see module docstring)."""
    serve = next((r for r in rows if r.get("kind") == "serve"), None)
    compile_s = sum(r.get("seconds", 0.0)
                    for r in rows if r.get("kind") == "compile")
    sim_s = sum(r.get("seconds", 0.0)
                for r in rows if r.get("kind") == "simulate")
    recovery_s = sum((r.get("detection_s") or 0.0)
                     + (r.get("recompile_s") or 0.0)
                     + (r.get("replay_s") or 0.0)
                     for r in rows if r.get("kind") == "recovery")
    out = {
        "job": (serve or (rows[0] if rows else {})).get("job", "?"),
        "status": serve.get("status") if serve else None,
        "total_s": serve.get("seconds", 0.0) if serve else
                   compile_s + sim_s + recovery_s,
        "queue": 0.0, "batch": 0.0,
        "compile": compile_s, "sim": sim_s, "recovery": recovery_s,
        "other": 0.0,
        "rows": {kind: sum(1 for r in rows if r.get("kind") == kind)
                 for kind in ("serve", "compile", "simulate", "recovery",
                              "trust")},
    }
    if serve is not None:
        queue_s = serve.get("queue_s", 0.0) or 0.0
        batch_s = serve.get("batch_s", 0.0) or 0.0
        out["queue"] = max(0.0, queue_s - batch_s)
        out["batch"] = batch_s
    accounted = sum(out[p] for p in PHASES if p != "other")
    out["other"] = max(0.0, out["total_s"] - accounted)
    return out


def trace_table(document: dict) -> Dict[str, dict]:
    """``breakdown`` per trace id, in first-appearance order."""
    return {trace_id: breakdown(rows)
            for trace_id, rows in group_by_trace(document).items()}


def utilization_summary(document: dict) -> dict:
    """FU and network-link utilization aggregated over every simulate
    payload in the journal (cycle-weighted means)."""
    fu_busy: Dict[str, float] = {}
    link_busy: Dict[str, float] = {}
    link_bytes: Dict[str, float] = {}
    total_cycles = 0
    runs = 0
    for row in document.get("jobs", ()):
        if row.get("kind") != "simulate":
            continue
        payload = row.get("simulate")
        if not payload:
            continue
        runs += 1
        cycles = payload.get("cycles", 0) or 0
        total_cycles += cycles
        for name, busy in (payload.get("fu_busy_cycles") or {}).items():
            fu_busy[name] = fu_busy.get(name, 0.0) + busy
        for cid, link in (payload.get("links") or {}).items():
            link_busy[cid] = link_busy.get(cid, 0.0) \
                + link.get("busy_cycles", 0)
            link_bytes[cid] = link_bytes.get(cid, 0.0) \
                + link.get("bytes", 0)
    from ..sim.simulator import METRICS_SCHEMA_VERSION

    denom = max(1, total_cycles)
    return {
        # Same metric vocabulary (and version) as SimulationResult.as_dict
        # and the benchmarks/ BENCH_*.json files.
        "schema_version": METRICS_SCHEMA_VERSION,
        "simulations": runs,
        "total_cycles": total_cycles,
        "fu_utilization": {name: min(1.0, busy / denom)
                           for name, busy in sorted(fu_busy.items())},
        "link_utilization": {cid: min(1.0, busy / denom)
                             for cid, busy in sorted(link_busy.items())},
        "link_bytes": {cid: int(b)
                       for cid, b in sorted(link_bytes.items())},
    }


def registry_from_journal(document: dict,
                          registry: Optional[MetricsRegistry] = None
                          ) -> MetricsRegistry:
    """Replay journal rows into a registry — the offline equivalent of
    what :class:`TraceRecorder` feeds the live default registry, so the
    CLI can emit a Prometheus textfile from a journal artifact."""
    registry = registry or MetricsRegistry()
    for row in document.get("jobs", ()):
        kind = row.get("kind")
        if kind == "compile":
            registry.counter(
                "runtime_compile_requests_total",
                "Compile requests by cache outcome.",
                labels={"cache": row.get("cache", "?")}).inc()
            registry.histogram(
                "runtime_compile_seconds",
                "Wall time of one compile call (hits included)."
            ).observe(row.get("seconds", 0.0))
            for timing in (row.get("compile") or {}).get("passes", ()):
                registry.histogram(
                    "runtime_compile_pass_seconds",
                    "Wall time per compiler pass (cache misses only).",
                    labels={"pass": timing["name"]}
                ).observe(timing["seconds"])
        elif kind == "simulate":
            registry.counter(
                "runtime_simulations_total",
                "Simulations by cache outcome.",
                labels={"cache": row.get("cache", "?")}).inc()
            payload = row.get("simulate")
            if payload and "cycles" in payload:
                registry.histogram(
                    "runtime_simulated_cycles",
                    "Simulated cycles per workload run.",
                    labels={"workload": row.get("job", "?"),
                            "machine": row.get("machine", "?")},
                    buckets=CYCLE_BUCKETS).observe(payload["cycles"])
        elif kind == "serve":
            registry.counter(
                "serve_requests_total", "Serve requests by status.",
                labels={"status": row.get("status", "?")}).inc()
            registry.histogram(
                "serve_request_seconds",
                "End-to-end request latency."
            ).observe(row.get("seconds", 0.0))
            registry.histogram(
                "serve_queue_seconds", "Admission + batching wait."
            ).observe(row.get("queue_s", 0.0) or 0.0)
            registry.histogram(
                "serve_execute_seconds", "In-shard execution time."
            ).observe(row.get("execute_s", 0.0) or 0.0)
            # Schema 8: serve rows carry the tenant and a cost rollup —
            # replaying them rebuilds the router's per-tenant billing
            # families offline.
            tenant = row.get("tenant")
            if tenant:
                registry.counter(
                    "cluster_tenant_requests_total",
                    "Requests by tenant and terminal status.",
                    labels={"tenant": tenant,
                            "status": row.get("status", "?")}).inc()
                cost = row.get("cost") or {}
                for metric, field, help_text in (
                        ("cluster_tenant_sim_cycles_total", "sim_cycles",
                         "Simulated accelerator cycles billed to the "
                         "tenant."),
                        ("cluster_tenant_bootstraps_total", "bootstraps",
                         "Bootstrap operations billed to the tenant."),
                        ("cluster_tenant_bytes_total", "bytes",
                         "HBM + network bytes moved for the tenant."),
                        ("cluster_tenant_compile_seconds_total",
                         "compile_s",
                         "Compile wall seconds billed (cache misses "
                         "only).")):
                    value = cost.get(field, 0) or 0
                    if value:
                        registry.counter(
                            metric, help_text,
                            labels={"tenant": tenant}).inc(value)
        elif kind == "alert":
            # Schema 8: SLO burn-rate alerts journaled by the live
            # telemetry pipeline (repro.obs.live).
            registry.counter(
                "obs_slo_alerts_total",
                "SLO burn-rate alerts fired.",
                labels={"slo": row.get("slo", "?"),
                        "severity": row.get("severity", "?")}).inc()
        elif kind == "recovery":
            registry.counter(
                "runtime_recoveries_total",
                "Degraded-mode recoveries by fault kind.",
                labels={"fault": row.get("fault", "?")}).inc()
        elif kind == "tune":
            registry.counter(
                "runtime_tune_runs_total", "Autotuning runs recorded.",
                labels={"strategy": row.get("strategy", "?")}).inc()
        elif kind == "cluster":
            registry.counter(
                "cluster_events_total",
                "Cluster control-plane events by kind.",
                labels={"event": row.get("event", "?")}).inc()
        elif kind == "trust":
            # Mirrors TraceRecorder.record_trust's live counters so a
            # journal artifact replays to the same Prometheus series.
            event = row.get("event", "?")
            registry.counter(
                "trust_events_total", "Trust-layer events by kind.",
                labels={"event": event}).inc()
            if event == "tamper_detected":
                registry.counter(
                    "trust_tamper_detected_total",
                    "Artifacts whose bytes mismatched their signed "
                    "manifest.",
                    labels={"target": row.get("target") or "unknown"}
                ).inc()
            elif event in ("replay_rejected", "stale_request"):
                registry.counter(
                    "trust_replay_rejected_total",
                    "Requests rejected by the replay/freshness guard.",
                    labels={"reason": row.get("reason", event)}).inc()
            elif event == "stale_key":
                registry.counter(
                    "trust_stale_key_rejections_total",
                    "Requests rejected for stale/revoked/unknown keys."
                ).inc()
    return registry


def check(document: dict) -> List[str]:
    """Cross-layer invariants over a journal; returns problem strings
    (empty = healthy).  Checked:

    * every row carries a ``trace_id``/``span_id`` (schema 5) — except
      ``kind:"alert"`` rows (schema 8), which are fleet-scoped SLO
      events fired by the live monitor loop, not part of any request's
      trace;
    * every *successful* serve row's trace also contains at least one
      compile row (hit or miss) and at least one simulate row — i.e. the
      request's execution really was traced end-to-end.  (Rejected and
      timed-out requests legitimately never reach the shard.)
    """
    problems: List[str] = []
    schema = document.get("schema", 0)
    if schema < 5:
        problems.append(f"journal schema {schema} < 5: rows predate "
                        "trace-id stamping")
    for index, row in enumerate(document.get("jobs", ())):
        if row.get("kind") == "alert":
            continue
        if not row.get("trace_id") or not row.get("span_id"):
            problems.append(
                f"row {index} ({row.get('kind', '?')}:"
                f"{row.get('job', '?')}) missing trace_id/span_id")
    for trace_id, rows in group_by_trace(document).items():
        serves = [r for r in rows if r.get("kind") == "serve"
                  and r.get("status") == "ok"]
        if not serves:
            continue
        kinds = {r.get("kind") for r in rows}
        if "compile" not in kinds:
            problems.append(f"trace {trace_id}: serve row has no "
                            "compile-or-cache child row")
        if "simulate" not in kinds:
            problems.append(f"trace {trace_id}: serve row has no "
                            "simulate child row")
    return problems


# ---------------------------------------------------------------------- #
# Report rendering (the `python -m repro.obs` output)


def _fmt_ms(seconds: float) -> str:
    return f"{seconds * 1e3:9.2f}ms"


def render_breakdown(trace_id: str, split: dict) -> str:
    lines = [f"trace {trace_id}  job={split['job']}  "
             f"status={split['status'] or '-'}  "
             f"total={_fmt_ms(split['total_s']).strip()}"]
    total = max(split["total_s"], 1e-12)
    for phase in PHASES:
        seconds = split[phase]
        bar = "#" * int(round(40 * seconds / total))
        lines.append(f"  {phase:<9}{_fmt_ms(seconds)}  "
                     f"{100 * seconds / total:5.1f}%  {bar}")
    rows = split["rows"]
    lines.append("  rows     "
                 + "  ".join(f"{k}={v}" for k, v in rows.items() if v))
    return "\n".join(lines)


def render_report(document: dict,
                  trace_id: Optional[str] = None) -> str:
    """The full text report: per-trace critical paths plus the journal's
    aggregate FU/link utilization."""
    table = trace_table(document)
    if trace_id is not None:
        table = {tid: split for tid, split in table.items()
                 if tid == trace_id or tid.startswith(trace_id)}
        if not table:
            return f"no journal rows for trace id {trace_id!r}"
    parts = [f"trace journal: schema {document.get('schema', '?')}, "
             f"{len(document.get('jobs', []))} rows, "
             f"{len(table)} trace(s)"]
    parts.extend(render_breakdown(tid, split)
                 for tid, split in table.items())
    util = utilization_summary(document)
    if util["simulations"]:
        parts.append(f"utilization over {util['simulations']} "
                     f"simulation(s), {util['total_cycles']} cycles:")
        fu = "  ".join(f"{name}={frac:.1%}" for name, frac
                       in util["fu_utilization"].items())
        parts.append(f"  FU    {fu}")
        links = "  ".join(f"link{cid}={frac:.1%}" for cid, frac
                          in util["link_utilization"].items())
        if links:
            parts.append(f"  links {links}")
    return "\n".join(parts)
