"""Bounded in-memory time-series over metric snapshots.

The live pipeline's storage layer: every source (a cluster worker, the
router, or a single-process server) periodically contributes either a
full cumulative :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` or a
**delta** against its previous one (the shape the CNC1 ``telemetry``
frame carries — see :func:`snapshot_delta` / :func:`apply_delta`).  The
store folds each contribution into a per-source cumulative view and
appends a point to a fixed-interval ring buffer per series, bounded by
``horizon_s`` — memory is O(sources x series x horizon/interval)
regardless of run length.

Window queries subtract ring endpoints per source and sum across
sources, which is exactly right for cumulative counters and histogram
bucket counts (PromQL's ``increase()``); counter resets (a respawned
worker re-using a source name) clamp to the newer value instead of
going negative.  :class:`~repro.obs.live.slo.SLOEngine` drives its
burn-rate math entirely off these windows.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Dict, List, Optional, Tuple

LabelKey = Tuple[Tuple[str, str], ...]


def _labels_key(labels: Optional[dict]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in (labels or {}).items()))


# ---------------------------------------------------------------------- #
# Delta encoding between successive cumulative snapshots.

def _hist_delta(prev: Optional[dict], cur: dict) -> Optional[dict]:
    prev = prev or {}
    d_count = cur.get("count", 0) - prev.get("count", 0)
    d_sum = cur.get("sum", 0.0) - prev.get("sum", 0.0)
    if d_count == 0 and d_sum == 0.0:
        return None
    delta = {"count": d_count, "sum": d_sum, "max": cur.get("max", 0.0)}
    cur_b, prev_b = cur.get("buckets"), prev.get("buckets", {})
    if cur_b:
        prev_counts = prev_b.get("counts") or [0] * len(cur_b["counts"])
        if len(prev_counts) == len(cur_b["counts"]):
            delta["buckets"] = {
                "le": list(cur_b["le"]),
                "counts": [c - p for c, p in
                           zip(cur_b["counts"], prev_counts)],
            }
    return delta


def snapshot_delta(prev: Optional[dict], cur: dict) -> dict:
    """Delta between two cumulative snapshots, same top-level shape but
    carrying only changed series — counters and histogram count/sum/
    bucket counts as differences, gauges as current levels (a level has
    no meaningful delta).  This is the CNC1 ``telemetry`` payload."""
    prev_index: Dict[Tuple[str, LabelKey], object] = {}
    for name, entry in (prev or {}).items():
        for series in entry.get("series", ()):
            prev_index[(name, _labels_key(series.get("labels")))] = \
                series.get("value")
    out: dict = {}
    for name, entry in cur.items():
        kind = entry.get("type", "gauge")
        for series in entry.get("series", ()):
            labels = series.get("labels", {})
            value = series.get("value")
            before = prev_index.get((name, _labels_key(labels)))
            if kind == "histogram":
                if not isinstance(value, dict):
                    continue
                changed = _hist_delta(
                    before if isinstance(before, dict) else None, value)
            elif kind == "counter":
                changed = (value or 0.0) - (before or 0.0)
                if changed == 0.0:
                    changed = None
            else:   # gauge: ship the level whenever it moved (or is new)
                changed = value if value != before else None
            if changed is None:
                continue
            out.setdefault(name, {"type": kind, "series": []})[
                "series"].append({"labels": dict(labels), "value": changed})
    return out


def apply_delta(base: Optional[dict], delta: dict) -> dict:
    """Fold a :func:`snapshot_delta` payload back onto a cumulative
    snapshot (the store's per-source view)."""
    out: Dict[str, dict] = {}
    for name, entry in (base or {}).items():
        out[name] = {"type": entry.get("type", "gauge"),
                     "series": [dict(s) for s in entry.get("series", ())]}
    for name, entry in delta.items():
        kind = entry.get("type", "gauge")
        slot = out.setdefault(name, {"type": kind, "series": []})
        index = {_labels_key(s.get("labels")): s for s in slot["series"]}
        for series in entry.get("series", ()):
            labels = series.get("labels", {})
            change = series.get("value")
            existing = index.get(_labels_key(labels))
            if existing is None:
                existing = {"labels": dict(labels), "value": None}
                slot["series"].append(existing)
                index[_labels_key(labels)] = existing
            before = existing["value"]
            if kind == "counter":
                existing["value"] = (before or 0.0) + change
            elif kind == "gauge":
                existing["value"] = change
            else:   # histogram
                prev = before if isinstance(before, dict) else {}
                merged = {
                    "count": prev.get("count", 0) + change.get("count", 0),
                    "sum": prev.get("sum", 0.0) + change.get("sum", 0.0),
                    "max": max(prev.get("max", 0.0),
                               change.get("max", 0.0)),
                }
                merged["mean"] = (merged["sum"] / merged["count"]
                                  if merged["count"] else 0.0)
                d_b, p_b = change.get("buckets"), prev.get("buckets")
                if d_b:
                    prev_counts = ((p_b or {}).get("counts")
                                   or [0] * len(d_b["counts"]))
                    if len(prev_counts) == len(d_b["counts"]):
                        merged["buckets"] = {
                            "le": list(d_b["le"]),
                            "counts": [p + c for p, c in
                                       zip(prev_counts, d_b["counts"])],
                        }
                elif p_b:
                    merged["buckets"] = p_b
                existing["value"] = merged
    return out


# ---------------------------------------------------------------------- #


class _Ring:
    """Fixed-interval ring of (slot, value) points; same-slot pushes
    overwrite so the memory bound holds however fast a source reports."""

    __slots__ = ("interval_s", "_points")

    def __init__(self, interval_s: float, capacity: int):
        self.interval_s = max(1e-3, interval_s)
        self._points: deque = deque(maxlen=max(2, capacity))

    def push(self, now: float, value) -> None:
        slot = int(now / self.interval_s)
        if self._points and self._points[-1][0] == slot:
            self._points[-1] = (slot, value)
        else:
            self._points.append((slot, value))

    def latest(self):
        return self._points[-1][1] if self._points else None

    def at_or_before(self, t: float):
        """Newest value recorded at or before ``t`` — falls back to the
        oldest retained point so short histories still give a (partial)
        window rather than nothing."""
        if not self._points:
            return None
        slot = int(t / self.interval_s)
        best = None
        for point_slot, value in self._points:
            if point_slot <= slot:
                best = value
            else:
                break
        return best if best is not None else self._points[0][1]

    def oldest_unix(self) -> Optional[float]:
        if not self._points:
            return None
        return self._points[0][0] * self.interval_s


class TimeSeriesStore:
    """Per-source cumulative snapshots plus bounded per-series history."""

    def __init__(self, interval_s: float = 1.0, horizon_s: float = 3600.0):
        self.interval_s = interval_s
        self.horizon_s = horizon_s
        self._capacity = max(2, int(horizon_s / max(1e-3, interval_s)))
        self._lock = threading.Lock()
        self._cumulative: Dict[str, dict] = {}     # source -> snapshot
        self._rings: Dict[Tuple[str, str, LabelKey], _Ring] = {}
        self._kinds: Dict[str, str] = {}           # metric name -> type
        self._updated: Dict[str, float] = {}       # source -> unix

    # ------------------------------------------------------------------ #

    def ingest(self, source: str, snapshot: dict,
               now: Optional[float] = None) -> None:
        """Fold a full cumulative snapshot from ``source``."""
        now = time.time() if now is None else now
        with self._lock:
            self._cumulative[source] = snapshot
            self._updated[source] = now
            self._push_points(source, snapshot, now)

    def ingest_delta(self, source: str, delta: dict,
                     now: Optional[float] = None) -> None:
        """Fold a :func:`snapshot_delta` payload from ``source``."""
        now = time.time() if now is None else now
        with self._lock:
            snapshot = apply_delta(self._cumulative.get(source), delta)
            self._cumulative[source] = snapshot
            self._updated[source] = now
            self._push_points(source, snapshot, now)

    def forget(self, source: str) -> None:
        """Drop a dead source's latest levels (its history stays until
        it ages out, so windows spanning its lifetime remain right)."""
        with self._lock:
            self._cumulative.pop(source, None)
            self._updated.pop(source, None)

    def _push_points(self, source: str, snapshot: dict, now: float) -> None:
        for name, entry in snapshot.items():
            kind = entry.get("type", "gauge")
            self._kinds[name] = kind
            for series in entry.get("series", ()):
                key = (source, name, _labels_key(series.get("labels")))
                ring = self._rings.get(key)
                if ring is None:
                    ring = self._rings[key] = _Ring(self.interval_s,
                                                    self._capacity)
                value = series.get("value")
                if kind == "histogram" and isinstance(value, dict):
                    buckets = value.get("buckets") or {}
                    value = (value.get("count", 0), value.get("sum", 0.0),
                             tuple(buckets.get("le", ())),
                             tuple(buckets.get("counts", ())))
                ring.push(now, value)

    # ------------------------------------------------------------------ #

    def sources(self) -> List[str]:
        with self._lock:
            return sorted(self._cumulative)

    def snapshots(self) -> Dict[str, dict]:
        """Latest cumulative snapshot per live source."""
        with self._lock:
            return dict(self._cumulative)

    def history_span_s(self, now: Optional[float] = None) -> float:
        """Seconds of history actually retained (caps every window)."""
        now = time.time() if now is None else now
        with self._lock:
            oldest = [r.oldest_unix() for r in self._rings.values()]
        oldest = [t for t in oldest if t is not None]
        return max(0.0, now - min(oldest)) if oldest else 0.0

    def _matching(self, name: str, labels: Optional[dict]):
        want = _labels_key(labels) if labels is not None else None
        for (source, ring_name, key), ring in self._rings.items():
            if ring_name != name:
                continue
            if want is not None and key != want:
                continue
            yield ring

    def level(self, name: str, labels: Optional[dict] = None) -> float:
        """Latest value summed across live sources (gauge levels and
        cumulative counter totals alike)."""
        with self._lock:
            total = 0.0
            live = set(self._cumulative)
            for (source, ring_name, key), ring in self._rings.items():
                if ring_name != name or source not in live:
                    continue
                if labels is not None and key != _labels_key(labels):
                    continue
                value = ring.latest()
                if isinstance(value, tuple):
                    value = value[0]    # histogram ring: count
                if isinstance(value, (int, float)):
                    total += value
            return total

    def window_scalar(self, name: str, window_s: float,
                      labels: Optional[dict] = None,
                      now: Optional[float] = None) -> float:
        """Counter increase over the trailing window, summed across
        sources and (optionally) label sets."""
        now = time.time() if now is None else now
        start = now - window_s
        with self._lock:
            total = 0.0
            for ring in self._matching(name, labels):
                end_v = ring.latest()
                if not isinstance(end_v, (int, float)):
                    continue
                start_v = ring.at_or_before(start)
                if not isinstance(start_v, (int, float)):
                    start_v = 0.0
                delta = end_v - start_v
                total += end_v if delta < 0 else delta   # counter reset
            return total

    def window_hist(self, name: str, window_s: float,
                    labels: Optional[dict] = None,
                    now: Optional[float] = None) -> dict:
        """Histogram increase over the trailing window: event count,
        value sum, and per-bucket counts (summed across sources)."""
        now = time.time() if now is None else now
        start = now - window_s
        count, total = 0, 0.0
        le: Tuple[float, ...] = ()
        counts: List[float] = []
        with self._lock:
            for ring in self._matching(name, labels):
                end_v = ring.latest()
                if not isinstance(end_v, tuple):
                    continue
                start_v = ring.at_or_before(start)
                if not isinstance(start_v, tuple):
                    start_v = (0, 0.0, end_v[2], (0,) * len(end_v[3]))
                d_count = end_v[0] - start_v[0]
                if d_count < 0:    # reset: take the post-reset totals
                    start_v = (0, 0.0, end_v[2], (0,) * len(end_v[3]))
                    d_count = end_v[0]
                count += d_count
                total += end_v[1] - start_v[1]
                if end_v[2] and end_v[2] == start_v[2] \
                        and len(end_v[3]) == len(start_v[3]):
                    if not le:
                        le, counts = end_v[2], [0.0] * len(end_v[3])
                    if end_v[2] == le:
                        for i in range(len(counts)):
                            counts[i] += end_v[3][i] - start_v[3][i]
        return {"count": count, "sum": total,
                "le": list(le), "counts": counts}

    def good_fraction_le(self, name: str, threshold: float,
                         window_s: float,
                         now: Optional[float] = None) -> Optional[Tuple[float, int]]:
        """(fraction of events <= threshold, total events) over the
        window, from bucket counts — ``None`` when there were no events.
        A threshold between bucket bounds rounds *down* (conservative:
        overestimates the bad fraction, never hides a breach)."""
        window = self.window_hist(name, window_s, now=now)
        if window["count"] <= 0 or not window["le"]:
            return None
        good = 0.0
        for bound, bucket in zip(window["le"], window["counts"]):
            if bound <= threshold:
                good += bucket
        return good / window["count"], int(window["count"])
