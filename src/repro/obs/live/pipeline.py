"""The live telemetry pipeline: store + SLO engine + flight recorder.

One :class:`LivePipeline` per serving front-end (a
:class:`~repro.cluster.router.ClusterRouter` or a single-process
:class:`~repro.serve.CinnamonServer`).  Sources feed it cumulative
snapshots or CNC1 ``telemetry`` deltas; each ``tick()``:

1. folds the owning process's registry into the store,
2. evaluates every SLO's burn-rate rules, journaling fired alerts as
   ``kind:"alert"`` rows (schema 8) and bumping ``obs_slo_*`` metrics,
3. rings a compact metric sample into the flight recorder,
4. atomically rewrites the live **status document** — the JSON that
   ``python -m repro.obs top`` renders and ``watch --prom-out``
   re-exports as a Prometheus textfile.

The router drives ``tick()`` from its monitor loop; single-process
servers call ``start()`` for a daemon thread at ``interval_s``.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Union

from ..metrics import MetricsRegistry, default_registry
from .flight import FlightRecorder
from .slo import Alert, SLO, SLOEngine
from .timeseries import TimeSeriesStore, snapshot_delta

#: Status document version.
STATUS_SCHEMA_VERSION = 1

#: (metric, column, has_status_label) — the per-tenant cost families.
_TENANT_FAMILIES = (
    ("cluster_tenant_sim_cycles_total", "sim_cycles"),
    ("cluster_tenant_bootstraps_total", "bootstraps"),
    ("cluster_tenant_bytes_total", "bytes"),
    ("cluster_tenant_compile_seconds_total", "compile_s"),
)


def tenant_table(snapshot: dict) -> List[dict]:
    """Per-tenant cost rollups out of a (merged) metrics snapshot."""
    tenants: dict = {}

    def row(tenant: str) -> dict:
        return tenants.setdefault(tenant, {
            "tenant": tenant, "requests": 0.0, "ok": 0.0, "failed": 0.0,
            "sim_cycles": 0.0, "bootstraps": 0.0, "bytes": 0.0,
            "compile_s": 0.0,
        })

    for series in snapshot.get("cluster_tenant_requests_total",
                               {}).get("series", ()):
        labels = series.get("labels", {})
        tenant = labels.get("tenant", "default")
        value = series.get("value") or 0.0
        entry = row(tenant)
        entry["requests"] += value
        if labels.get("status") == "ok":
            entry["ok"] += value
        else:
            entry["failed"] += value
    for metric, column in _TENANT_FAMILIES:
        for series in snapshot.get(metric, {}).get("series", ()):
            tenant = series.get("labels", {}).get("tenant", "default")
            row(tenant)[column] += series.get("value") or 0.0
    return sorted(tenants.values(),
                  key=lambda r: (-r["sim_cycles"], r["tenant"]))


def render_snapshot_prometheus(snapshot: dict) -> str:
    """Prometheus text exposition from a (merged) snapshot dict — the
    ``obs watch --prom-out`` body, mirroring
    :meth:`~repro.obs.metrics.MetricsRegistry.render_prometheus` for
    series that only exist post-merge."""
    lines: List[str] = []
    for name in sorted(snapshot):
        entry = snapshot[name]
        kind = entry.get("type", "gauge")
        lines.append(f"# TYPE {name} {kind}")
        for series in entry.get("series", ()):
            labels = series.get("labels", {})
            text = ",".join(f'{k}="{v}"'
                            for k, v in sorted(labels.items()))
            base = f"{name}{{{text}}}" if text else name
            value = series.get("value")
            if isinstance(value, dict):    # histogram
                buckets = value.get("buckets") or {}
                cumulative = 0.0
                for bound, count in zip(buckets.get("le", ()),
                                        buckets.get("counts", ())):
                    cumulative += count
                    le = f'le="{bound:g}"'
                    sep = "," if text else ""
                    lines.append(f"{name}_bucket{{{text}{sep}{le}}} "
                                 f"{cumulative:g}")
                sep = "," if text else ""
                lines.append(f'{name}_bucket{{{text}{sep}le="+Inf"}} '
                             f'{value.get("count", 0):g}')
                lines.append(f"{name}_sum{{{text}}} "
                             f"{value.get('sum', 0.0):g}"
                             if text else
                             f"{name}_sum {value.get('sum', 0.0):g}")
                lines.append(f"{name}_count{{{text}}} "
                             f"{value.get('count', 0):g}"
                             if text else
                             f"{name}_count {value.get('count', 0):g}")
            elif isinstance(value, (int, float)):
                lines.append(f"{base} {value:g}")
    return "\n".join(lines) + "\n"


class LivePipeline:
    """Continuous telemetry for one serving front-end."""

    def __init__(self, *, slos: Sequence[Union[str, SLO]] = (),
                 flight_dir=None, process: str = "server",
                 recorder=None, registry: Optional[MetricsRegistry] = None,
                 interval_s: float = 1.0, horizon_s: float = 1800.0,
                 window_scale: float = 1.0, cooldown_s: float = 60.0,
                 min_events: int = 10,
                 status_path=None,
                 snapshot_fn: Optional[Callable[[], dict]] = None,
                 workers_fn: Optional[Callable[[], List[dict]]] = None):
        self.interval_s = interval_s
        self.process = process
        self.recorder = recorder
        self.registry = registry
        self.status_path = Path(status_path) if status_path else None
        self._snapshot_fn = snapshot_fn
        self._workers_fn = workers_fn

        self.store = TimeSeriesStore(interval_s=interval_s,
                                     horizon_s=horizon_s)
        self.engine = SLOEngine(
            [SLO.parse(s, min_events=min_events)
             if isinstance(s, str) else s for s in slos],
            self.store, window_scale=window_scale, cooldown_s=cooldown_s)
        self.flight: Optional[FlightRecorder] = None
        if flight_dir is not None:
            self.flight = FlightRecorder(flight_dir, process=process)
            if recorder is not None:
                recorder.add_listener(self.flight.note_row)

        self._alerts: deque = deque(maxlen=64)
        self._last_pushed: Optional[dict] = None
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Ingestion (router reader loop / stats poll / local registry).

    def ingest(self, source: str, snapshot: dict,
               now: Optional[float] = None) -> None:
        self.store.ingest(source, snapshot, now=now)

    def ingest_delta(self, source: str, delta: dict,
                     now: Optional[float] = None) -> None:
        self.store.ingest_delta(source, delta, now=now)

    def forget(self, source: str) -> None:
        self.store.forget(source)

    # ------------------------------------------------------------------ #

    def merged_snapshot(self) -> dict:
        """The cluster-wide snapshot: the owner's view when provided
        (router: registry + worker stats), else the store's sources."""
        if self._snapshot_fn is not None:
            return self._snapshot_fn()
        from ...cluster.merge import merge_snapshots

        return merge_snapshots(self.store.snapshots().values())

    @property
    def alerts(self) -> List[dict]:
        with self._lock:
            return list(self._alerts)

    def tick(self, now: Optional[float] = None) -> List[Alert]:
        """One evaluation cycle; returns any alerts that fired."""
        now = time.time() if now is None else now
        if self.registry is not None:
            self.store.ingest(self.process, self.registry.snapshot(),
                              now=now)

        fired = self.engine.evaluate(now=now)
        for alert in fired:
            row = alert.as_row()
            if self.recorder is not None:
                # Journals the row, bumps obs_slo_alerts_total, and (via
                # the listener) rings + auto-dumps the flight recorder.
                self.recorder.record_alert(
                    slo=alert.slo, severity=alert.severity,
                    burn_rate=alert.burn_rate,
                    long_window_s=alert.long_window_s,
                    short_window_s=alert.short_window_s,
                    bad_fraction=alert.bad_fraction,
                    objective=alert.objective,
                    threshold=alert.threshold, message=alert.message)
            else:
                default_registry().counter(
                    "obs_slo_alerts_total",
                    "SLO burn-rate alerts fired.",
                    labels={"slo": alert.slo,
                            "severity": alert.severity}).inc()
                if self.flight is not None:
                    self.flight.note_row(row)
            row["fired_unix"] = alert.fired_unix
            with self._lock:
                self._alerts.append(row)

        slo_status = self.engine.status(now=now)
        if self.registry is not None:
            for entry in slo_status:
                labels = {"slo": entry["slo"]}
                self.registry.gauge(
                    "obs_slo_burn_rate",
                    "Current fast-window error-budget burn rate.",
                    labels=labels).set(entry["burn_rate"])
                self.registry.gauge(
                    "obs_slo_budget_remaining",
                    "Fraction of the error budget left.",
                    labels=labels).set(entry["budget_remaining"])

        if self.flight is not None:
            self.flight.note_sample({
                "unix": now,
                "queue_depth": self.store.level("serve_queue_depth"),
                "inflight": self.store.level("serve_inflight_requests"),
                "requests": self.store.level("serve_requests_total"),
                "workers": self.store.level("cluster_workers"),
            })

        if self.status_path is not None:
            self.write_status(now=now, slo_status=slo_status)
        return fired

    # ------------------------------------------------------------------ #
    # The status document (obs top / watch read this).

    def status_document(self, now: Optional[float] = None,
                        slo_status: Optional[List[dict]] = None) -> dict:
        now = time.time() if now is None else now
        snapshot = self.merged_snapshot()
        workers = self._workers_fn() if self._workers_fn else []
        return {
            "schema": STATUS_SCHEMA_VERSION,
            "process": self.process,
            "updated_unix": now,
            "interval_s": self.interval_s,
            "snapshot": snapshot,
            "tenants": tenant_table(snapshot),
            "workers": workers,
            "slos": (slo_status if slo_status is not None
                     else self.engine.status(now=now)),
            "alerts": self.alerts,
            "flight_bundles": [str(p) for p in self.flight.bundles]
            if self.flight else [],
        }

    def write_status(self, now: Optional[float] = None,
                     slo_status: Optional[List[dict]] = None) -> None:
        document = self.status_document(now=now, slo_status=slo_status)
        self.status_path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.status_path.with_suffix(".tmp")
        tmp.write_text(json.dumps(document))
        os.replace(tmp, self.status_path)

    # ------------------------------------------------------------------ #
    # Worker-side push helper: the delta since the last push.

    def delta_since_last_push(self, snapshot: dict) -> dict:
        delta = snapshot_delta(self._last_pushed, snapshot)
        self._last_pushed = snapshot
        return delta

    # ------------------------------------------------------------------ #
    # Standalone mode (single-process server): background tick thread.

    def start(self) -> None:
        if self._thread is not None:
            return
        self._stop.clear()

        def _run():
            while not self._stop.wait(self.interval_s):
                try:
                    self.tick()
                except Exception:   # pragma: no cover - keep ticking
                    pass

        self._thread = threading.Thread(target=_run, daemon=True,
                                        name="obs-live")
        self._thread.start()

    def stop(self, final_tick: bool = True) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        if final_tick:
            try:
                self.tick()
            except Exception:   # pragma: no cover - defensive
                pass
