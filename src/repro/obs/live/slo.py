"""Declarative SLOs with multi-window burn-rate evaluation.

An :class:`SLO` states an objective over a stream of events — "99.9% of
requests complete within 250ms", "99.9% of requests succeed", "99% wait
less than 100ms in the admission queue".  The :class:`SLOEngine` turns
the :class:`~repro.obs.live.timeseries.TimeSeriesStore` windows into the
Google-SRE multi-window multi-burn-rate policy:

* **burn rate** = observed bad fraction / error budget (``1 -
  objective``).  Burn 1.0 spends the budget exactly over the compliance
  window; burn 14.4 over 1h spends a 30-day budget in ~2 days.
* An alert fires when **both** a long and a short window exceed the
  same burn threshold — the long window proves sustained impact, the
  short window proves it is *still* happening (fast reset once fixed):

  ========  ===========  ============  ==============
  severity  long window  short window  burn threshold
  ========  ===========  ============  ==============
  page      1h           5m            14.4
  page      6h           30m           6.0
  warn      24h          6h            3.0
  ========  ===========  ============  ==============

``window_scale`` compresses the canonical windows (tests and short
loadgen runs use e.g. ``1/60`` so "5m" means 5s); windows additionally
clamp to the history the store actually holds, so a deliberately tight
SLO fires within seconds of a real burn instead of needing an hour of
uptime first.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .timeseries import TimeSeriesStore

#: (severity, long window s, short window s, burn-rate threshold).
BURN_WINDOWS: Tuple[Tuple[str, float, float, float], ...] = (
    ("page", 3600.0, 300.0, 14.4),
    ("page", 6 * 3600.0, 1800.0, 6.0),
    ("warn", 24 * 3600.0, 6 * 3600.0, 3.0),
)

#: Compliance window the error budget is stated over (30 days).
BUDGET_WINDOW_S = 30 * 24 * 3600.0

_KINDS = ("latency", "availability", "queue_wait")

#: Which metric series backs each SLO kind.
_KIND_METRICS = {
    "latency": ("histogram", "serve_request_latency_seconds"),
    "queue_wait": ("histogram", "serve_queue_wait_seconds"),
    "availability": ("counter", "serve_requests_total"),
}


@dataclass(frozen=True)
class SLO:
    """One objective: ``objective`` fraction of events must be good.

    ``threshold_s`` defines "good" for the latency kinds (event value <=
    threshold); availability counts any non-``ok`` terminal status as
    bad.  ``min_events`` gates evaluation so a two-request window can't
    page."""

    name: str
    kind: str                    # latency | availability | queue_wait
    objective: float             # e.g. 0.999
    threshold_s: float = 0.0
    min_events: int = 10

    def __post_init__(self):
        if self.kind not in _KINDS:
            raise ValueError(f"unknown SLO kind {self.kind!r} "
                             f"(want one of {_KINDS})")
        if not 0.0 < self.objective < 1.0:
            raise ValueError("objective must be a fraction in (0, 1)")
        if self.kind != "availability" and self.threshold_s <= 0:
            raise ValueError(f"{self.kind} SLO needs a threshold")

    @property
    def error_budget(self) -> float:
        return 1.0 - self.objective

    def describe(self) -> str:
        if self.kind == "availability":
            return f"{self.objective * 100:g}% of requests succeed"
        noun = ("complete within" if self.kind == "latency"
                else "wait at most")
        return (f"{self.objective * 100:g}% of requests {noun} "
                f"{self.threshold_s * 1e3:g}ms")

    @classmethod
    def parse(cls, spec: str, min_events: int = 10) -> "SLO":
        """Parse the CLI/config grammar::

            latency:<threshold_s>:<objective_pct>[:<name>]
            queue_wait:<threshold_s>:<objective_pct>[:<name>]
            availability:<objective_pct>[:<name>]

        e.g. ``latency:0.25:99.9`` — 99.9% of requests within 250ms.
        """
        parts = spec.split(":")
        kind = parts[0].strip()
        if kind == "availability":
            if len(parts) < 2:
                raise ValueError(f"bad SLO spec {spec!r}")
            objective = float(parts[1]) / 100.0
            name = parts[2] if len(parts) > 2 else "availability"
            return cls(name=name, kind=kind, objective=objective,
                       min_events=min_events)
        if kind in ("latency", "queue_wait"):
            if len(parts) < 3:
                raise ValueError(f"bad SLO spec {spec!r}")
            threshold = float(parts[1])
            objective = float(parts[2]) / 100.0
            pct = parts[2].strip()
            if "." in pct:
                pct = pct.rstrip("0").rstrip(".")
            name = parts[3] if len(parts) > 3 else f"{kind}-p{pct}"
            return cls(name=name, kind=kind, objective=objective,
                       threshold_s=threshold, min_events=min_events)
        raise ValueError(f"unknown SLO kind in spec {spec!r}")


@dataclass
class Alert:
    """One fired burn-rate rule — becomes a ``kind:"alert"`` journal row."""

    slo: str
    severity: str
    burn_rate: float
    long_window_s: float
    short_window_s: float
    bad_fraction: float
    objective: float
    threshold: float
    fired_unix: float = field(default_factory=time.time)
    message: str = ""

    def as_row(self) -> dict:
        return {
            "kind": "alert", "job": self.slo, "slo": self.slo,
            "severity": self.severity, "burn_rate": self.burn_rate,
            "long_window_s": self.long_window_s,
            "short_window_s": self.short_window_s,
            "bad_fraction": self.bad_fraction,
            "objective": self.objective, "threshold": self.threshold,
            "message": self.message,
        }


class SLOEngine:
    """Evaluates every SLO against the store on each tick."""

    def __init__(self, slos: List[SLO], store: TimeSeriesStore,
                 window_scale: float = 1.0, cooldown_s: float = 60.0):
        self.slos = list(slos)
        self.store = store
        self.window_scale = window_scale
        self.cooldown_s = cooldown_s
        self._last_fired: Dict[Tuple[str, str], float] = {}

    # ------------------------------------------------------------------ #

    def _bad_fraction(self, slo: SLO, window_s: float,
                      now: float) -> Optional[Tuple[float, int]]:
        """(bad fraction, events) over the trailing window, or ``None``
        when the window holds no events."""
        kind, metric = _KIND_METRICS[slo.kind]
        if kind == "histogram":
            good = self.store.good_fraction_le(
                metric, slo.threshold_s, window_s, now=now)
            if good is None:
                return None
            fraction, events = good
            return 1.0 - fraction, events
        total = self.store.window_scalar(metric, window_s, now=now)
        if total <= 0:
            return None
        ok = self.store.window_scalar(metric, window_s,
                                      labels={"status": "ok"}, now=now)
        return max(0.0, total - ok) / total, int(total)

    def _burn(self, slo: SLO, window_s: float,
              now: float) -> Optional[Tuple[float, float, int]]:
        """(burn rate, bad fraction, events) over the window."""
        bad = self._bad_fraction(slo, window_s, now)
        if bad is None:
            return None
        fraction, events = bad
        return fraction / slo.error_budget, fraction, events

    # ------------------------------------------------------------------ #

    def evaluate(self, now: Optional[float] = None) -> List[Alert]:
        """One tick: fire at most one alert per SLO (the most severe
        rule that matched), honoring the per-rule cooldown."""
        now = time.time() if now is None else now
        fired: List[Alert] = []
        for slo in self.slos:
            for severity, long_w, short_w, threshold in BURN_WINDOWS:
                long_s = long_w * self.window_scale
                short_s = short_w * self.window_scale
                long_burn = self._burn(slo, long_s, now)
                short_burn = self._burn(slo, short_s, now)
                if long_burn is None or short_burn is None:
                    continue
                if long_burn[2] < slo.min_events:
                    continue
                if long_burn[0] <= threshold or short_burn[0] <= threshold:
                    continue
                key = (slo.name, severity)
                last = self._last_fired.get(key)
                if last is not None and now - last < self.cooldown_s:
                    break   # still burning, still suppressed
                self._last_fired[key] = now
                fired.append(Alert(
                    slo=slo.name, severity=severity,
                    burn_rate=long_burn[0],
                    long_window_s=long_s, short_window_s=short_s,
                    bad_fraction=long_burn[1], objective=slo.objective,
                    threshold=slo.threshold_s, fired_unix=now,
                    message=(f"{slo.describe()}: burn {long_burn[0]:.1f}x "
                             f"budget over {long_s:g}s "
                             f"(and {short_burn[0]:.1f}x over "
                             f"{short_s:g}s)")))
                break   # most severe rule wins; skip milder ones
        return fired

    def status(self, now: Optional[float] = None) -> List[dict]:
        """Per-SLO dashboard rows: current fast-window burn, bad
        fraction, and error budget remaining over the retained history."""
        now = time.time() if now is None else now
        rows = []
        for slo in self.slos:
            fast = self._burn(slo, BURN_WINDOWS[0][1] * self.window_scale,
                              now)
            span = min(BUDGET_WINDOW_S * self.window_scale,
                       max(self.store.history_span_s(now),
                           self.store.interval_s))
            overall = self._burn(slo, span, now)
            consumed = 0.0
            if overall is not None:
                consumed = min(1.0, overall[1] / slo.error_budget)
            rows.append({
                "slo": slo.name,
                "kind": slo.kind,
                "objective": slo.objective,
                "threshold_s": slo.threshold_s,
                "describe": slo.describe(),
                "events": overall[2] if overall else 0,
                "bad_fraction": overall[1] if overall else 0.0,
                "burn_rate": fast[0] if fast else 0.0,
                "budget_remaining": 1.0 - consumed,
            })
        return rows
