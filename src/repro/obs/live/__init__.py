"""repro.obs.live — continuous telemetry for the serving path.

Post-hoc journals (:mod:`repro.obs.analyze`) answer "what happened";
this package answers "what is happening": a bounded in-memory
time-series store fed by streaming per-worker snapshots/deltas
(:mod:`.timeseries`), a Google-SRE multi-window burn-rate SLO engine
(:mod:`.slo`), a crash-triggered flight recorder (:mod:`.flight`), and
the :class:`~repro.obs.live.pipeline.LivePipeline` that ties them to a
router or server and feeds ``python -m repro.obs top`` / ``watch``.
"""

from .flight import FLIGHT_SCHEMA_VERSION, FlightRecorder
from .pipeline import (LivePipeline, STATUS_SCHEMA_VERSION,
                       render_snapshot_prometheus, tenant_table)
from .slo import Alert, BURN_WINDOWS, SLO, SLOEngine
from .timeseries import TimeSeriesStore, apply_delta, snapshot_delta

__all__ = [
    "Alert",
    "BURN_WINDOWS",
    "FLIGHT_SCHEMA_VERSION",
    "FlightRecorder",
    "LivePipeline",
    "SLO",
    "SLOEngine",
    "STATUS_SCHEMA_VERSION",
    "TimeSeriesStore",
    "apply_delta",
    "render_snapshot_prometheus",
    "snapshot_delta",
    "tenant_table",
]
