"""Flight recorder: bounded recent-history rings + post-mortem bundles.

Every process in the serving path (router, worker, single-process
server) keeps a bounded ring of the most recent journal rows and
periodic metric samples.  When something goes wrong — a worker death, an
SLO burn-rate page, a chip-failure recovery, a trust rejection — the
recorder dumps a **post-mortem bundle**: one self-contained JSON file
holding the rings plus a Chrome-trace snapshot of the most recent spans,
loadable directly in Perfetto/``chrome://tracing``.

Bundles are deduplicated per ``(trigger, key)`` — one worker death
produces exactly one bundle however many requests it orphaned — and
bounded in bytes: an oversized bundle sheds sim-event detail, then
halves its rings, rather than filling the disk during a crash loop.

Journal-row triggers arrive via :meth:`note_row` (wired as a
:meth:`~repro.runtime.trace.TraceRecorder.add_listener` tap), so the
resilience layer's ``recovery`` rows and the trust layer's rejection
rows trigger dumps without those layers knowing the recorder exists.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from pathlib import Path
from typing import List, Optional

from ..export import build_chrome_trace
from ..tracing import tracer as _global_tracer

#: Trust events that merit a post-mortem (mirrors record_trust).
_TRUST_TRIGGERS = {"tamper_detected", "stale_key", "replay_rejected",
                   "stale_request"}

#: Bundle document version.
FLIGHT_SCHEMA_VERSION = 1


class _TracerView:
    """Duck-typed Tracer over a fixed span list, for the exporter."""

    def __init__(self, spans, epoch_s: float):
        self._spans = list(spans)
        self.epoch_s = epoch_s

    def spans(self, trace_id=None, kind=None):
        return self._spans


class FlightRecorder:
    """Bounded black box with crash-triggered dumps."""

    def __init__(self, out_dir, *, process: str = "proc",
                 row_capacity: int = 512, sample_capacity: int = 512,
                 span_limit: int = 256,
                 max_bundle_bytes: int = 4_000_000):
        self.out_dir = Path(out_dir)
        self.process = process
        self.span_limit = span_limit
        self.max_bundle_bytes = max_bundle_bytes
        self._rows: deque = deque(maxlen=row_capacity)
        self._samples: deque = deque(maxlen=sample_capacity)
        self._dumped: set = set()
        self._bundles: List[Path] = []
        self._seq = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Feeding the rings.

    def note_row(self, row: dict) -> None:
        """Ring a journal row; auto-dump on post-mortem-worthy kinds."""
        with self._lock:
            self._rows.append(dict(row))
        kind = row.get("kind")
        if kind == "recovery":
            self.dump("recovery", key=row.get("span_id")
                      or f"{row.get('job')}@{row.get('cycle')}")
        elif kind == "alert" and row.get("severity") == "page":
            self.dump("slo_breach",
                      key=f"{row.get('slo')}@{row.get('severity')}"
                          f"@{int(row.get('long_window_s') or 0)}")
        elif kind == "trust" and row.get("event") in _TRUST_TRIGGERS:
            self.dump("trust_rejection",
                      key=f"{row.get('event')}@{row.get('target')}")

    def note_sample(self, sample: dict) -> None:
        """Ring one periodic metric sample (small scalar dict)."""
        with self._lock:
            self._samples.append(dict(sample))

    # ------------------------------------------------------------------ #

    @property
    def bundles(self) -> List[Path]:
        with self._lock:
            return list(self._bundles)

    def dump(self, trigger: str, key: Optional[str] = None,
             extra: Optional[dict] = None) -> Optional[Path]:
        """Write one post-mortem bundle; returns its path, or ``None``
        when this ``(trigger, key)`` already produced one."""
        with self._lock:
            dedup = (trigger, key)
            if key is not None and dedup in self._dumped:
                return None
            self._dumped.add(dedup)
            self._seq += 1
            seq = self._seq
            rows = list(self._rows)
            samples = list(self._samples)

        tr = _global_tracer()
        spans = tr.spans()[-self.span_limit:]
        document = {
            "schema": FLIGHT_SCHEMA_VERSION,
            "process": self.process,
            "trigger": trigger,
            "key": key,
            "created_unix": time.time(),
            "journal": rows,
            "samples": samples,
            "chrome_trace": build_chrome_trace(
                _TracerView(spans, tr.epoch_s)),
        }
        if extra:
            document["extra"] = dict(extra)

        encoded = self._bounded_encode(document, spans, tr.epoch_s)
        self.out_dir.mkdir(parents=True, exist_ok=True)
        name = f"flight-{self.process}-{trigger}-{seq:03d}.json"
        path = self.out_dir / name
        tmp = path.with_suffix(".tmp")
        tmp.write_text(encoded)
        os.replace(tmp, path)
        with self._lock:
            self._bundles.append(path)
        return path

    def _bounded_encode(self, document: dict, spans,
                        epoch_s: float) -> str:
        """Serialize within ``max_bundle_bytes``: first drop simulated
        FU timelines (usually the bulk), then halve the rings until the
        bundle fits (floor: 16 rows/samples, 8 spans)."""
        encoded = json.dumps(document)
        if len(encoded) <= self.max_bundle_bytes:
            return encoded
        slim_spans = spans
        if any(getattr(s, "sim_events", None) for s in slim_spans):
            slim_spans = [_without_sim_events(s) for s in slim_spans]
            document["chrome_trace"] = build_chrome_trace(
                _TracerView(slim_spans, epoch_s))
            encoded = json.dumps(document)
        while len(encoded) > self.max_bundle_bytes:
            rows = document["journal"]
            samples = document["samples"]
            if len(rows) <= 16 and len(samples) <= 16 \
                    and len(slim_spans) <= 8:
                document["truncated"] = True
                break
            document["journal"] = rows[len(rows) // 2:]
            document["samples"] = samples[len(samples) // 2:]
            slim_spans = slim_spans[len(slim_spans) // 2:]
            document["chrome_trace"] = build_chrome_trace(
                _TracerView(slim_spans, epoch_s))
            document["truncated"] = True
            encoded = json.dumps(document)
        return encoded


def _without_sim_events(span):
    """A shallow copy of a span minus its per-FU cycle timeline."""
    from ..tracing import Span

    clone = Span(span.name, kind=span.kind, trace_id=span.trace_id,
                 parent_id=span.parent_id, attrs=dict(span.attrs),
                 start_s=span.start_s)
    clone.span_id = span.span_id
    clone.end_s = span.end_s
    clone.start_unix = span.start_unix
    clone.sim_cycles = span.sim_cycles
    return clone
