"""Cross-layer spans: one ``trace_id`` from serve admission to simulator.

The observability layer's core is deliberately tiny and dependency-free:
a :class:`Span` is a named wall-clock interval carrying a ``trace_id``
shared by everything one request touched, and a :class:`Tracer` is the
process-wide collector of finished spans.  Propagation uses
``contextvars`` so nested ``start_span`` calls parent automatically —
and because the serving stack hops threads (admission happens on the
caller, execution inside a shard's ``ThreadPoolExecutor``, batch work on
a session worker pool), spans can also be carried *explicitly*: attach a
span to the object crossing the boundary and re-activate it on the far
side with :meth:`Tracer.use_span`.

Tracing is off by default (``start_span`` hands out the no-op
:data:`NULL_SPAN`; nothing is recorded).  ``repro.obs.enable()`` turns
it on for the process::

    import repro.obs as obs

    obs.enable()
    ...  # serve / compile / simulate as usual
    obs.export_chrome_trace("trace.json")   # one merged timeline
"""

from __future__ import annotations

import contextlib
import contextvars
import threading
import time
import uuid
from typing import Dict, Iterator, List, Optional

#: The active span of the current execution context (thread / task).
_CURRENT: contextvars.ContextVar[Optional["Span"]] = contextvars.ContextVar(
    "repro_obs_current_span", default=None)


def _new_id() -> str:
    return uuid.uuid4().hex[:16]


class Span:
    """One named interval of one trace.

    ``start_s``/``end_s`` are ``time.perf_counter`` readings (comparable
    across threads of one process); ``start_unix`` anchors the trace to
    wall-clock time once per root.  ``attrs`` is a free-form string-keyed
    dict rendered into trace exports; ``sim_events``/``sim_cycles`` hold
    a captured :class:`~repro.sim.trace.TraceEvent` timeline for
    ``simulate`` spans (scaled onto the span's wall-clock interval at
    export time).
    """

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "kind",
                 "start_s", "end_s", "start_unix", "attrs",
                 "sim_events", "sim_cycles")

    def __init__(self, name: str, kind: str = "internal",
                 trace_id: Optional[str] = None,
                 parent_id: Optional[str] = None,
                 attrs: Optional[dict] = None,
                 start_s: Optional[float] = None):
        self.name = name
        self.kind = kind
        self.trace_id = trace_id or _new_id()
        self.span_id = _new_id()
        self.parent_id = parent_id
        self.start_s = time.perf_counter() if start_s is None else start_s
        self.end_s: Optional[float] = None
        self.start_unix = time.time()
        self.attrs: Dict[str, object] = dict(attrs or {})
        self.sim_events = None
        self.sim_cycles = 0

    # ------------------------------------------------------------------ #

    @property
    def finished(self) -> bool:
        return self.end_s is not None

    @property
    def duration_s(self) -> float:
        end = self.end_s if self.end_s is not None else time.perf_counter()
        return max(0.0, end - self.start_s)

    def set_attr(self, key: str, value) -> "Span":
        self.attrs[key] = value
        return self

    def finish(self, end_s: Optional[float] = None) -> "Span":
        if self.end_s is None:
            self.end_s = time.perf_counter() if end_s is None else end_s
        return self

    def as_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "kind": self.kind,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "duration_s": self.duration_s,
            "attrs": dict(self.attrs),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, kind={self.kind!r}, "
                f"trace={self.trace_id}, {self.duration_s * 1e3:.2f}ms)")


class _NullSpan(Span):
    """The span handed out while tracing is disabled: accepts the full
    :class:`Span` API, records nothing, and is never collected."""

    def __init__(self):
        super().__init__("null", kind="null", start_s=0.0)
        self.trace_id = ""
        self.span_id = ""

    def set_attr(self, key: str, value) -> "Span":
        return self

    def finish(self, end_s: Optional[float] = None) -> "Span":
        return self


#: Shared no-op span: identity-comparable, safe to "activate" and finish.
NULL_SPAN = _NullSpan()


class Tracer:
    """Process-wide span factory and collector.

    Thread-safe: spans may start, finish, and be re-activated from any
    thread.  Finished *and* still-open spans are both kept (a registry of
    open spans lets exports include a crashed request's partial trace);
    ``reset()`` drops everything, ``enable()``/``disable()`` gate whether
    new spans are real or :data:`NULL_SPAN`.
    """

    def __init__(self, enabled: bool = False,
                 capture_fu_timeline: bool = True):
        self.enabled = enabled
        #: When on, ``simulate`` spans get a per-functional-unit cycle
        #: timeline attached (see :meth:`CinnamonSession.simulate`).
        self.capture_fu_timeline = capture_fu_timeline
        self._spans: List[Span] = []
        self._lock = threading.Lock()
        self.epoch_s = time.perf_counter()
        self.epoch_unix = time.time()

    # ------------------------------------------------------------------ #
    # Span lifecycle

    def begin(self, name: str, kind: str = "internal",
              parent: Optional[Span] = None,
              attrs: Optional[dict] = None) -> Span:
        """Open a span *without* activating it (explicit lifecycle; the
        serving layer begins a request's root span at admission and
        finishes it at resolution, on a different thread)."""
        if not self.enabled:
            return NULL_SPAN
        if parent is None:
            parent = _CURRENT.get()
        if parent is not None and parent is not NULL_SPAN:
            span = Span(name, kind, trace_id=parent.trace_id,
                        parent_id=parent.span_id, attrs=attrs)
        else:
            span = Span(name, kind, attrs=attrs)
        with self._lock:
            self._spans.append(span)
        return span

    @contextlib.contextmanager
    def start_span(self, name: str, kind: str = "internal",
                   parent: Optional[Span] = None,
                   attrs: Optional[dict] = None) -> Iterator[Span]:
        """Open, activate, and (on exit) finish a span."""
        span = self.begin(name, kind, parent=parent, attrs=attrs)
        if span is NULL_SPAN:
            yield span
            return
        token = _CURRENT.set(span)
        try:
            yield span
        except BaseException as exc:
            span.set_attr("error", f"{type(exc).__name__}: {exc}")
            raise
        finally:
            _CURRENT.reset(token)
            span.finish()

    @contextlib.contextmanager
    def use_span(self, span: Optional[Span]) -> Iterator[Optional[Span]]:
        """Re-activate ``span`` in this thread (cross-thread propagation:
        attach the span to the unit of work, ``use_span`` it on arrival).
        Does not finish the span on exit."""
        if span is None or span is NULL_SPAN:
            yield span
            return
        token = _CURRENT.set(span)
        try:
            yield span
        finally:
            _CURRENT.reset(token)

    def add_span(self, span: Span) -> Span:
        """Collect an externally built span (synthesized sub-timelines,
        e.g. per-compiler-pass children derived from ``CompileStats``)."""
        if self.enabled:
            with self._lock:
                self._spans.append(span)
        return span

    # ------------------------------------------------------------------ #
    # Introspection

    def current(self) -> Optional[Span]:
        span = _CURRENT.get()
        return None if span is NULL_SPAN else span

    def spans(self, trace_id: Optional[str] = None,
              kind: Optional[str] = None) -> List[Span]:
        with self._lock:
            spans = list(self._spans)
        if trace_id is not None:
            spans = [s for s in spans if s.trace_id == trace_id]
        if kind is not None:
            spans = [s for s in spans if s.kind == kind]
        return spans

    def trace_ids(self) -> List[str]:
        seen, ordered = set(), []
        for span in self.spans():
            if span.trace_id not in seen:
                seen.add(span.trace_id)
                ordered.append(span.trace_id)
        return ordered

    def reset(self) -> None:
        with self._lock:
            self._spans.clear()
        self.epoch_s = time.perf_counter()
        self.epoch_unix = time.time()


# ---------------------------------------------------------------------- #
# The process-global tracer behind `repro.obs`.

_TRACER = Tracer()


def tracer() -> Tracer:
    """The process-wide :class:`Tracer`."""
    return _TRACER


def enable(capture_fu_timeline: bool = True, reset: bool = False) -> Tracer:
    """Turn tracing on for the process; ``reset=True`` also drops spans
    collected so far."""
    if reset:
        _TRACER.reset()
    _TRACER.enabled = True
    _TRACER.capture_fu_timeline = capture_fu_timeline
    return _TRACER


def disable() -> Tracer:
    _TRACER.enabled = False
    return _TRACER


def enabled() -> bool:
    return _TRACER.enabled


def current_span() -> Optional[Span]:
    """The active span of this execution context (None when untraced)."""
    return _TRACER.current()


def start_span(name: str, kind: str = "internal",
               parent: Optional[Span] = None,
               attrs: Optional[dict] = None):
    """Module-level shorthand for ``tracer().start_span(...)``."""
    return _TRACER.start_span(name, kind, parent=parent, attrs=attrs)
