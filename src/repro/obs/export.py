"""One merged Chrome-trace timeline: serve spans down to simulated FUs.

The exporter folds three very different clocks into a single
Perfetto-loadable file:

* **Wall-clock spans** (serve / queue / batch / execute / compile /
  cache / pass / simulate / recovery) — one track per request on the
  ``repro wall-clock`` process, nested as recorded;
* **Compiler pass children** — already wall-clock (synthesized from
  ``CompileStats`` timings), they land inside their compile span;
* **Simulated per-FU cycle timelines** — each ``simulate`` span that
  captured a :class:`~repro.sim.trace.TraceEvent` list gets its own
  process (``pid >= 1000``) with one thread per ``chip/lane``; cycle
  timestamps are *scaled onto the wall-clock interval of the enclosing
  span* (``scale = span_duration_us / simulated_cycles``), so zooming
  into a request's simulate slice reveals what the NTTs, base-conversion
  units, and HBM were doing during exactly that wall-clock window.

All timestamps are microseconds relative to the tracer's epoch, which
the Chrome trace-event format expects.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from .tracing import Tracer, tracer as _global_tracer

#: Process id of the wall-clock span tracks.
WALL_PID = 1
#: First process id handed to per-simulate-span FU timelines.
SIM_PID_BASE = 1000

_ARG_TYPES = (str, int, float, bool)


def _request_tracks(spans) -> Dict[str, str]:
    """Name each trace's track after its root span (the serve span for
    served requests, the first parentless span otherwise)."""
    track: Dict[str, str] = {}
    for span in spans:
        if span.parent_id is None and span.trace_id not in track:
            rid = span.attrs.get("request_id")
            if rid is not None:
                track[span.trace_id] = f"req-{rid} {span.name}"
            else:
                track[span.trace_id] = f"{span.name} [{span.trace_id[:8]}]"
    return track


def build_chrome_trace(tr: Optional[Tracer] = None) -> dict:
    """The merged trace document (``{"traceEvents": [...]}``) for every
    span the tracer has collected."""
    tr = tr or _global_tracer()
    spans = tr.spans()
    records: List[dict] = [{
        "ph": "M", "pid": WALL_PID, "name": "process_name",
        "args": {"name": "repro wall-clock"},
    }]
    track = _request_tracks(spans)
    sim_pid = SIM_PID_BASE
    for span in spans:
        tid = track.get(span.trace_id, f"trace-{span.trace_id[:8]}")
        ts = (span.start_s - tr.epoch_s) * 1e6
        dur = max(1.0, span.duration_s * 1e6)
        args = {"trace_id": span.trace_id, "span_id": span.span_id,
                "kind": span.kind}
        args.update({k: v for k, v in span.attrs.items()
                     if isinstance(v, _ARG_TYPES)})
        records.append({
            "name": span.name, "ph": "X", "cat": span.kind,
            "ts": round(ts, 3), "dur": round(dur, 3),
            "pid": WALL_PID, "tid": tid, "args": args,
        })
        if span.sim_events:
            # Scale simulated cycles onto the span's wall-clock window.
            scale = dur / max(1, span.sim_cycles)
            records.append({
                "ph": "M", "pid": sim_pid, "name": "process_name",
                "args": {"name": f"sim {span.name} "
                                 f"[{span.trace_id[:8]}]"},
            })
            for event in span.sim_events:
                records.append({
                    "name": event.name, "ph": "X", "cat": "isa",
                    "ts": round(ts + event.start * scale, 3),
                    "dur": round(max(1.0, event.duration * scale), 3),
                    "pid": sim_pid,
                    "tid": f"chip{event.chip}/{event.lane}",
                    "args": {"trace_id": span.trace_id,
                             "span_id": span.span_id,
                             "cycles": event.duration},
                })
            sim_pid += 1
    return {"traceEvents": records, "displayTimeUnit": "ms"}


def export_chrome_trace(path: str, tr: Optional[Tracer] = None) -> int:
    """Write the merged timeline to ``path``; returns the event count."""
    document = build_chrome_trace(tr)
    with open(path, "w") as handle:
        json.dump(document, handle)
    return len(document["traceEvents"])
