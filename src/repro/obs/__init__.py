"""repro.obs — cross-layer observability for the whole stack.

One ``trace_id`` follows a request from serve admission through the
admission queue, the adaptive batcher, the compile pipeline (one child
span per compiler pass), the content-addressed cache, the cycle-accurate
simulator (with an optional per-functional-unit timeline), and the
recovery ladder.  Three consumers:

* :func:`export_chrome_trace` — one merged Perfetto-loadable timeline;
* ``python -m repro.obs journal.json`` — per-request critical paths,
  utilization summaries, invariant checks, Prometheus textfile dumps,
  all from the trace journal alone;
* :func:`default_registry` — the process-wide metrics registry every
  layer (serve, runtime, cache, tune, resilience) reports into.

Tracing is off by default and costs one ``if`` per span site when
disabled; ``repro.obs.enable()`` switches it on for the process.
"""

from __future__ import annotations

from .analyze import (breakdown, check, group_by_trace, load_journal,
                      registry_from_journal, render_report, trace_table,
                      utilization_summary)
from .export import build_chrome_trace, export_chrome_trace
from .metrics import (CYCLE_BUCKETS, Counter, DEFAULT_BUCKETS, Gauge,
                      Histogram, MetricsRegistry, default_registry)
from .tracing import (NULL_SPAN, Span, Tracer, current_span, disable,
                      enable, enabled, start_span, tracer)

__all__ = [
    "CYCLE_BUCKETS",
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "Span",
    "Tracer",
    "breakdown",
    "build_chrome_trace",
    "check",
    "current_span",
    "default_registry",
    "disable",
    "enable",
    "enabled",
    "export_chrome_trace",
    "group_by_trace",
    "load_journal",
    "registry_from_journal",
    "render_report",
    "start_span",
    "trace_table",
    "tracer",
    "utilization_summary",
]

# Live-telemetry names (repro.obs.live) resolve lazily (PEP 562): the
# pipeline pulls in the cluster merge helpers, which plain journal
# analysis and the hot serve path never need.
_LIVE_ATTRS = frozenset({
    "Alert", "BURN_WINDOWS", "FlightRecorder", "LivePipeline", "SLO",
    "SLOEngine", "TimeSeriesStore", "apply_delta",
    "render_snapshot_prometheus", "snapshot_delta", "tenant_table",
})

__all__ += sorted(_LIVE_ATTRS)


def __getattr__(name):
    if name in _LIVE_ATTRS:
        from . import live

        value = getattr(live, name)
        globals()[name] = value
        return value
    raise AttributeError(f"module 'repro.obs' has no attribute {name!r}")
