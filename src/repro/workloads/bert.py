"""BERT-Base encrypted inference (128 tokens), as a kernel schedule.

The paper's headline workload (Section 6.2): a 12-layer transformer whose
128-token input packs into 3 ciphertexts and whose activations span many
more.  Non-polynomial functions follow [65]: softmax/GELU/tanh via
polynomial approximation and Newton-Raphson for division and inverse
square roots.  About 1,400 bootstraps are required per inference.

Program-level parallelism (Section 7.1): the attention section exposes 6
parallel ciphertexts and the GELU section 12; together these cover ~85% of
the program.  The remaining ~15% (score combination, residual adds,
layernorm reductions) is serial and is what limits Cinnamon-12's scaling.
"""

from __future__ import annotations

from functools import partial

from ..core.ir.bootstrap_graph import BOOTSTRAP_13
from .compose import KernelSpec, WorkloadSchedule
from .kernels import activation_kernel, bootstrap_kernel, elementwise_kernel, \
    matmul_kernel

NUM_LAYERS = 12
TOKENS = 128
ATTENTION_PARALLEL = 6
GELU_PARALLEL = 12
TOTAL_BOOTSTRAPS = 1400
# ~85% of the bootstraps sit in the parallel attention/GELU sections.
PARALLEL_BOOTSTRAPS = int(TOTAL_BOOTSTRAPS * 0.85)
SERIAL_BOOTSTRAPS = TOTAL_BOOTSTRAPS - PARALLEL_BOOTSTRAPS


def bert_schedule(num_layers: int = NUM_LAYERS) -> WorkloadSchedule:
    scale = num_layers / NUM_LAYERS
    return WorkloadSchedule(
        name="bert-base-128",
        description="BERT-Base inference on one encrypted 128-token input",
        max_level=BOOTSTRAP_13.top_level,
        kernels=[
            KernelSpec(
                "bert-bootstrap-attention",
                partial(bootstrap_kernel, BOOTSTRAP_13),
                count=int(PARALLEL_BOOTSTRAPS * 0.45 * scale),
                parallel=True,
                max_parallel=ATTENTION_PARALLEL,
            ),
            KernelSpec(
                "bert-bootstrap-gelu",
                partial(bootstrap_kernel, BOOTSTRAP_13),
                count=int(PARALLEL_BOOTSTRAPS * 0.55 * scale),
                parallel=True,
                max_parallel=GELU_PARALLEL,
            ),
            KernelSpec(
                "bert-bootstrap-serial",
                partial(bootstrap_kernel, BOOTSTRAP_13),
                count=int(SERIAL_BOOTSTRAPS * scale),
                parallel=False,
            ),
            KernelSpec(
                "bert-qkv-matmul",
                partial(matmul_kernel, "qkv", 48, 12),
                count=int(4 * 3 * num_layers),  # Q,K,V,O per head group
                parallel=True,
                max_parallel=ATTENTION_PARALLEL,
            ),
            KernelSpec(
                "bert-softmax",
                partial(activation_kernel, "softmax", 31, 12),
                count=int(2 * num_layers),
                parallel=True,
                max_parallel=ATTENTION_PARALLEL,
            ),
            KernelSpec(
                "bert-gelu",
                partial(activation_kernel, "gelu", 59, 12),
                count=int(4 * num_layers),
                parallel=True,
                max_parallel=GELU_PARALLEL,
            ),
            KernelSpec(
                "bert-layernorm",
                partial(elementwise_kernel, "layernorm", 4, 10),
                count=int(2 * num_layers),
                parallel=False,  # reduction across the hidden dimension
            ),
        ],
    )
