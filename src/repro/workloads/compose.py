"""Hierarchical workload timing: kernels x schedules -> end-to-end time.

Flat cycle simulation of a full BERT inference (~1,400 bootstraps, ~10^9
ISA instructions) is impractical in-process, as it was for the paper's
artifact (24 h of SST runs).  Instead each *distinct* kernel is compiled
and simulated once per machine configuration and the end-to-end time is
composed from the schedule:

* ``parallel`` kernel instances are independent across ciphertexts
  (program-level parallelism): with ``g`` stream groups they run ``g`` at
  a time;
* ``serial`` kernels use one group regardless of machine size (the
  narrow sections that cap Cinnamon-12's scaling in Section 7.1).

Compiled/simulated kernels are cached per (kernel, machine) so parameter
sweeps (Figures 6, 13, 14, 16) stay affordable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from ..core.compiler import CompilerDriver, CompilerOptions
from ..core.dsl import CinnamonProgram
from ..fhe.params import ArchParams
from ..sim.config import MachineConfig
from ..sim.simulator import SimulationResult, SimulatorEngine


@dataclass(frozen=True)
class KernelSpec:
    """One distinct kernel of a workload.

    ``build`` returns the kernel's DSL program; ``count`` is how many times
    the workload executes it; ``parallel`` marks instances independent
    across ciphertexts (stream-parallelizable).
    """

    name: str
    build: Callable[[], CinnamonProgram]
    count: int
    parallel: bool = True
    max_parallel: int = 1 << 30  # cap on concurrent instances (e.g. BERT's
    #                              6-wide attention / 12-wide GELU sections)


@dataclass
class WorkloadSchedule:
    """A workload as a kernel schedule plus bookkeeping for reports."""

    name: str
    kernels: List[KernelSpec]
    description: str = ""
    max_level: int = 51

    def total_kernel_instances(self) -> int:
        return sum(k.count for k in self.kernels)


@dataclass
class WorkloadEstimate:
    """Composed end-to-end timing for one workload on one machine."""

    workload: str
    machine: str
    seconds: float
    kernel_seconds: Dict[str, float]
    kernel_results: Dict[str, SimulationResult]

    @property
    def milliseconds(self) -> float:
        return self.seconds * 1e3

    def utilization(self) -> Dict[str, float]:
        """Time-weighted average utilization across kernels."""
        totals = {"compute": 0.0, "memory": 0.0, "network": 0.0}
        for name, result in self.kernel_results.items():
            weight = self.kernel_seconds[name] / max(self.seconds, 1e-30)
            for key, value in result.utilization().items():
                totals[key] += weight * value
        return totals


class WorkloadTimer:
    """Compiles, simulates, and composes workloads on machine configs."""

    def __init__(self, group_chips: int = 4, compiler_overrides: dict = None):
        """``group_chips``: chips per stream group (the paper uses groups
        of four chips for parallel bootstraps, Section 7.1)."""
        self.group_chips = group_chips
        self.compiler_overrides = compiler_overrides or {}
        self._cache: Dict[Tuple, SimulationResult] = {}

    # ------------------------------------------------------------------ #

    def _kernel_result(self, kernel: KernelSpec, machine: MachineConfig,
                       chips_for_kernel: int, max_level: int) -> SimulationResult:
        # Key on the built program's name, not the schedule's label, so
        # identical kernels shared across workloads (e.g. every schedule's
        # bootstrap) compile and simulate once per machine.
        program = kernel.build()
        key = (program.name, machine.name, chips_for_kernel, max_level,
               machine.chip.registers,
               tuple(sorted(self.compiler_overrides.items())))
        if key in self._cache:
            return self._cache[key]
        params = ArchParams(max_level=max_level)
        options = CompilerOptions(
            num_chips=chips_for_kernel,
            registers_per_chip=machine.chip.registers,
            **self.compiler_overrides,
        )
        compiled = CompilerDriver(params, options).compile(program)
        result = SimulatorEngine(machine).run(compiled.isa)
        self._cache[key] = result
        return result

    def estimate(self, schedule: WorkloadSchedule,
                 machine: MachineConfig) -> WorkloadEstimate:
        """Compose the workload's end-to-end time on ``machine``."""
        groups = max(1, machine.num_chips // self.group_chips)
        group_machine = machine if groups == 1 else MachineConfig(
            f"{machine.name}/g{self.group_chips}", self.group_chips,
            machine.chip, topology="ring", hop_latency=machine.hop_latency)
        total = 0.0
        kernel_seconds: Dict[str, float] = {}
        kernel_results: Dict[str, SimulationResult] = {}
        for kernel in schedule.kernels:
            if kernel.parallel and groups > 1:
                # Independent instances: one per stream group of four chips.
                concurrency = min(groups, kernel.max_parallel)
                result = self._kernel_result(
                    kernel, group_machine, self.group_chips,
                    schedule.max_level)
                rounds = math.ceil(kernel.count / concurrency)
            else:
                # Serial sections still benefit from limb-level parallelism
                # across the whole machine (with diminishing returns).
                result = self._kernel_result(
                    kernel, machine, machine.num_chips, schedule.max_level)
                rounds = kernel.count
            seconds = rounds * result.seconds
            total += seconds
            kernel_seconds[kernel.name] = seconds
            kernel_results[kernel.name] = result
        return WorkloadEstimate(
            workload=schedule.name,
            machine=machine.name,
            seconds=total,
            kernel_seconds=kernel_seconds,
            kernel_results=kernel_results,
        )
