"""Reusable kernel program builders for the ML workloads.

Kernels are small DSL programs (one homomorphic matmul, one polynomial
activation, one elementwise block) compiled and simulated once per machine
configuration by :class:`repro.workloads.compose.WorkloadTimer`.
"""

from __future__ import annotations

from ..core.dsl import CinnamonProgram
from ..core.ir.bootstrap_graph import bsgs_matmul_ops, BootstrapPlan, \
    BOOTSTRAP_13


def bootstrap_kernel(plan: BootstrapPlan = BOOTSTRAP_13,
                     entry_level: int = 2) -> CinnamonProgram:
    """One full bootstrap of one ciphertext."""
    prog = CinnamonProgram(f"k-{plan.name}", level=entry_level,
                           bootstrap_output_level=plan.output_level)
    x = prog.input("x")
    prog.output("y", x.bootstrap())
    return prog


def matmul_kernel(name: str, num_diagonals: int, level: int) -> CinnamonProgram:
    """One BSGS diagonal matrix-vector product at the given level."""
    prog = CinnamonProgram(f"k-{name}", level=level)
    x = prog.input("x")
    prog.output("y", bsgs_matmul_ops(prog, x, num_diagonals, f"{name}_w"))
    return prog


def activation_kernel(name: str, degree: int, level: int) -> CinnamonProgram:
    """Chebyshev polynomial activation (GELU / softmax-exp / sigmoid).

    Uses the baby-step/giant-step structure so level consumption is
    logarithmic in the degree, matching [65]'s transformer activations.
    """
    import math

    prog = CinnamonProgram(f"k-{name}", level=level)
    x = prog.input("x")
    baby = 1 << max(1, math.ceil(math.log2(math.sqrt(degree + 1))))
    powers = {1: x}
    for i in range(2, baby + 1):
        half, other = i // 2, i - i // 2
        prod = powers[half] * powers[other]
        doubled = prod + prod
        powers[i] = doubled + (-1.0) if half == other else doubled - powers[1]
    g = baby
    while 2 * g <= degree:
        sq = powers[g] * powers[g]
        powers[2 * g] = (sq + sq) + (-1.0)
        g *= 2
    blocks = []
    num_blocks = max(1, (degree + baby) // baby)
    for blk in range(num_blocks):
        acc = None
        for i in range(1, baby + 1):
            term = powers[i] * prog.plaintext(f"{name}_c{blk}_{i}")
            acc = term if acc is None else acc + term
        blocks.append(acc)
    result = blocks[0]
    for blk in blocks[1:]:
        result = result + blk * powers[g]
    prog.output("y", result)
    return prog


def elementwise_kernel(name: str, muls: int, level: int) -> CinnamonProgram:
    """A block of ciphertext-ciphertext multiplies and adds (e.g. the
    Newton-Raphson division/inverse-sqrt iterations of the BERT layernorm).
    """
    prog = CinnamonProgram(f"k-{name}", level=level)
    x = prog.input("x")
    y = prog.input("y")
    acc = x
    for i in range(muls):
        acc = acc * y if i % 2 == 0 else acc * x
        if acc.level <= 2:
            break
    prog.output("z", acc + y)
    return prog
