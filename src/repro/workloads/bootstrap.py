"""The Bootstrap benchmark (Section 6.2).

A single ciphertext enters at level 2, is raised to level 51, and 36
levels are consumed by the pipeline, leaving 13 effective levels — the
paper's Bootstrap-13.  Section 7.5's Bootstrap-21 refreshes 21 levels.
"""

from __future__ import annotations

from ..core.dsl import CinnamonProgram, StreamPool
from ..core.ir.bootstrap_graph import BOOTSTRAP_13, BOOTSTRAP_21, BootstrapPlan


def bootstrap_program(plan: BootstrapPlan = BOOTSTRAP_13,
                      num_streams: int = 1,
                      entry_level: int = 2) -> CinnamonProgram:
    """Bootstrap one ciphertext per stream.

    With ``num_streams > 1``, independent ciphertexts are refreshed on
    separate streams — the program-level parallelism configuration of
    Figure 13's *+ Program parallelism* bar (two streams of two chips on
    Cinnamon-4) and of the Figure 6 motivation sweep.
    """
    prog = CinnamonProgram(f"{plan.name}-x{num_streams}",
                           level=entry_level,
                           bootstrap_output_level=plan.output_level)

    def stream_fn(stream_id: int):
        x = prog.input(f"x{stream_id}")
        prog.output(f"y{stream_id}", x.bootstrap())

    StreamPool(prog, num_streams, stream_fn)
    return prog
