"""The serving workload mix: paper benchmarks as inference requests.

The loadgen replays a traffic mix over the four paper workloads —
bootstrap, a ResNet-20 block, one HELR training step, a BERT layer —
each represented by its dominant kernel (the unit a serving frontend
actually dispatches; full-model latency composes from these, see
:mod:`repro.workloads.compose`).

Two scales:

* ``"paper"`` — architectural scale (N = 64K-equivalent parameters,
  the real BOOTSTRAP_13 plan).  First compile of the bootstrap takes
  tens of seconds; afterwards the serving cache makes repeats cheap.
* ``"small"`` — structurally identical miniatures (a real, tiny
  bootstrap plan; low-degree kernels) that compile in milliseconds, for
  tests and CI smoke runs.

Beyond the four dominant kernels, :func:`nn_mix` serves the *whole
models* the :mod:`repro.nn` frontend lowers — HELR, a reduced
ResNet-20, a BERT encoder block — as single requests (hundreds to
thousands of ops each).  ``serving_mix(..., include_nn=True)`` merges
them into the kernel mix; ``python -m repro.serve.loadgen --nn``
replays pure-nn traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from ..core.dsl import CinnamonProgram
from ..core.ir.bootstrap_graph import BOOTSTRAP_13, BootstrapPlan
from ..fhe.params import ArchParams
from .kernels import activation_kernel, bootstrap_kernel, matmul_kernel

#: A real bootstrap shrunk to a 16-level chain: same structure as
#: BOOTSTRAP_13 (CtS, EvalMod, StC), ~25x fewer instructions.
SMALL_BOOTSTRAP_PLAN = BootstrapPlan(
    "bootstrap-tiny", top_level=16, output_level=6,
    cts_stages=2, cts_radix=8, eval_mod_degree=7, eval_mod_doublings=1)


@dataclass(frozen=True)
class MixEntry:
    """One workload class of the traffic mix."""

    name: str
    build: Callable[[], CinnamonProgram]
    params: ArchParams
    weight: float = 1.0


# Small-scale chains for the lowered nn models, sized to each model's
# analytic depth plus one spare level: compile cost grows with the
# chain length, so a just-fits chain keeps the smoke mix fast.  A test
# pins that each model still fits (the depths are deterministic given
# the builders' seeds).
NN_SMALL_LEVELS = {"nn-helr": 16, "nn-resnet20": 32, "nn-bert-encoder": 46}


def _lowered(build_model, params, plan=None) -> Callable[[], CinnamonProgram]:
    def build() -> CinnamonProgram:
        from ..nn import lower  # deferred: keeps the mix import light

        return lower(build_model(), params, bootstrap_plan=plan).program
    return build


def nn_mix(scale: str = "small",
           weights: Optional[Dict[str, float]] = None
           ) -> Dict[str, MixEntry]:
    """Whole lowered models as serving classes, one request per forward.

    * ``"paper"`` — the full builders on the paper chain; ResNet-20 and
      the BERT encoder refresh via BOOTSTRAP_13, which the server's
      default compile options expand (the lowering targets the same
      plan, so steady-state levels agree).
    * ``"small"`` — bootstrap-free miniatures on just-deep-enough
      chains that compile in seconds.
    """
    from ..nn import build_bert_encoder, build_helr, build_resnet20

    if scale == "paper":
        params = ArchParams()
        entries = [
            MixEntry("nn-helr", _lowered(build_helr, params), params),
            MixEntry("nn-resnet20",
                     _lowered(build_resnet20, params, BOOTSTRAP_13), params),
            MixEntry("nn-bert-encoder",
                     _lowered(build_bert_encoder, params, BOOTSTRAP_13),
                     params),
        ]
    elif scale == "small":
        helr = ArchParams(max_level=NN_SMALL_LEVELS["nn-helr"])
        resnet = ArchParams(max_level=NN_SMALL_LEVELS["nn-resnet20"])
        bert = ArchParams(max_level=NN_SMALL_LEVELS["nn-bert-encoder"])
        entries = [
            MixEntry("nn-helr", _lowered(build_helr, helr), helr),
            MixEntry("nn-resnet20",
                     _lowered(lambda: build_resnet20(
                         image=4, channels=(2, 2, 2), blocks_per_stage=1,
                         relu_degree=2), resnet), resnet),
            MixEntry("nn-bert-encoder",
                     _lowered(lambda: build_bert_encoder(
                         d_model=8, seq=2, num_heads=2, d_ff=8), bert),
                     bert),
        ]
    else:
        raise ValueError(f"unknown serving mix scale {scale!r} "
                         "(expected 'small' or 'paper')")
    return _weighted(entries, weights)


def serving_mix(scale: str = "small",
                weights: Optional[Dict[str, float]] = None,
                include_nn: bool = False) -> Dict[str, MixEntry]:
    """The four-workload request mix at the given scale.

    ``weights`` reweights classes by name (missing names keep 1.0;
    weight 0 drops the class from the mix).  ``include_nn`` merges the
    three whole-model classes of :func:`nn_mix` into the traffic.
    """
    if scale == "paper":
        params = ArchParams()
        entries = [
            MixEntry("bootstrap",
                     lambda: bootstrap_kernel(BOOTSTRAP_13), params),
            MixEntry("resnet-block",
                     lambda: matmul_kernel("conv", 27, 12), params),
            MixEntry("helr-step",
                     lambda: activation_kernel("sigmoid", 7, 8), params),
            MixEntry("bert-layer",
                     lambda: matmul_kernel("qkv", 48, 12), params),
        ]
    elif scale == "small":
        small = ArchParams(max_level=16)
        entries = [
            MixEntry("bootstrap",
                     lambda: bootstrap_kernel(SMALL_BOOTSTRAP_PLAN,
                                              entry_level=2), small),
            MixEntry("resnet-block",
                     lambda: matmul_kernel("conv", 6, 6), small),
            MixEntry("helr-step",
                     lambda: activation_kernel("sigmoid", 3, 6), small),
            MixEntry("bert-layer",
                     lambda: matmul_kernel("qkv", 8, 6), small),
        ]
    else:
        raise ValueError(f"unknown serving mix scale {scale!r} "
                         "(expected 'small' or 'paper')")

    if include_nn:
        entries.extend(nn_mix(scale).values())
    return _weighted(entries, weights)


def _weighted(entries, weights: Optional[Dict[str, float]]
              ) -> Dict[str, MixEntry]:
    weights = weights or {}
    unknown = set(weights) - {e.name for e in entries}
    if unknown:
        raise ValueError(f"unknown mix classes: {sorted(unknown)}")
    mix = {}
    for entry in entries:
        weight = float(weights.get(entry.name, entry.weight))
        if weight > 0:
            mix[entry.name] = MixEntry(entry.name, entry.build,
                                       entry.params, weight)
    if not mix:
        raise ValueError("serving mix is empty after weighting")
    return mix
