"""The serving workload mix: paper benchmarks as inference requests.

The loadgen replays a traffic mix over the four paper workloads —
bootstrap, a ResNet-20 block, one HELR training step, a BERT layer —
each represented by its dominant kernel (the unit a serving frontend
actually dispatches; full-model latency composes from these, see
:mod:`repro.workloads.compose`).

Two scales:

* ``"paper"`` — architectural scale (N = 64K-equivalent parameters,
  the real BOOTSTRAP_13 plan).  First compile of the bootstrap takes
  tens of seconds; afterwards the serving cache makes repeats cheap.
* ``"small"`` — structurally identical miniatures (a real, tiny
  bootstrap plan; low-degree kernels) that compile in milliseconds, for
  tests and CI smoke runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from ..core.dsl import CinnamonProgram
from ..core.ir.bootstrap_graph import BOOTSTRAP_13, BootstrapPlan
from ..fhe.params import ArchParams
from .kernels import activation_kernel, bootstrap_kernel, matmul_kernel

#: A real bootstrap shrunk to a 16-level chain: same structure as
#: BOOTSTRAP_13 (CtS, EvalMod, StC), ~25x fewer instructions.
SMALL_BOOTSTRAP_PLAN = BootstrapPlan(
    "bootstrap-tiny", top_level=16, output_level=6,
    cts_stages=2, cts_radix=8, eval_mod_degree=7, eval_mod_doublings=1)


@dataclass(frozen=True)
class MixEntry:
    """One workload class of the traffic mix."""

    name: str
    build: Callable[[], CinnamonProgram]
    params: ArchParams
    weight: float = 1.0


def serving_mix(scale: str = "small",
                weights: Optional[Dict[str, float]] = None
                ) -> Dict[str, MixEntry]:
    """The four-workload request mix at the given scale.

    ``weights`` reweights classes by name (missing names keep 1.0;
    weight 0 drops the class from the mix).
    """
    if scale == "paper":
        params = ArchParams()
        entries = [
            MixEntry("bootstrap",
                     lambda: bootstrap_kernel(BOOTSTRAP_13), params),
            MixEntry("resnet-block",
                     lambda: matmul_kernel("conv", 27, 12), params),
            MixEntry("helr-step",
                     lambda: activation_kernel("sigmoid", 7, 8), params),
            MixEntry("bert-layer",
                     lambda: matmul_kernel("qkv", 48, 12), params),
        ]
    elif scale == "small":
        small = ArchParams(max_level=16)
        entries = [
            MixEntry("bootstrap",
                     lambda: bootstrap_kernel(SMALL_BOOTSTRAP_PLAN,
                                              entry_level=2), small),
            MixEntry("resnet-block",
                     lambda: matmul_kernel("conv", 6, 6), small),
            MixEntry("helr-step",
                     lambda: activation_kernel("sigmoid", 3, 6), small),
            MixEntry("bert-layer",
                     lambda: matmul_kernel("qkv", 8, 6), small),
        ]
    else:
        raise ValueError(f"unknown serving mix scale {scale!r} "
                         "(expected 'small' or 'paper')")

    weights = weights or {}
    unknown = set(weights) - {e.name for e in entries}
    if unknown:
        raise ValueError(f"unknown mix classes: {sorted(unknown)}")
    mix = {}
    for entry in entries:
        weight = float(weights.get(entry.name, entry.weight))
        if weight > 0:
            mix[entry.name] = MixEntry(entry.name, entry.build,
                                       entry.params, weight)
    if not mix:
        raise ValueError("serving mix is empty after weighting")
    return mix
