"""Workload generators: the paper's four benchmarks as Cinnamon programs.

Each generator produces DSL op graphs at the architectural scale
(N = 64K, 128-bit security equivalent).  Large models (ResNet-20, HELR,
BERT) are expressed as *kernel schedules*: each distinct kernel (bootstrap,
BSGS matmul, polynomial activation, ...) is compiled and cycle-simulated
once per machine configuration, and end-to-end time is composed from the
schedule — the hierarchical methodology documented in DESIGN.md section 7.
"""

from .bootstrap import bootstrap_program, BOOTSTRAP_13, BOOTSTRAP_21
from .compose import KernelSpec, WorkloadSchedule, WorkloadTimer
from .resnet import resnet20_schedule
from .helr import helr_schedule
from .bert import bert_schedule
from .serving import MixEntry, SMALL_BOOTSTRAP_PLAN, nn_mix, serving_mix
from . import baselines

__all__ = [
    "bootstrap_program",
    "BOOTSTRAP_13",
    "BOOTSTRAP_21",
    "KernelSpec",
    "WorkloadSchedule",
    "WorkloadTimer",
    "resnet20_schedule",
    "helr_schedule",
    "bert_schedule",
    "MixEntry",
    "SMALL_BOOTSTRAP_PLAN",
    "nn_mix",
    "serving_mix",
    "baselines",
]
