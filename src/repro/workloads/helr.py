"""HELR: encrypted logistic regression training [42], as a kernel schedule.

30 training iterations with mini-batch 256 on MNIST (784 features padded
to 1024).  The mini-batch spans several ciphertexts, so — unlike ResNet —
the refresh and update kernels have real program-level parallelism, which
is why HELR keeps scaling to Cinnamon-12 in Table 2.

Per iteration: one batched gradient matvec (BSGS), a degree-7 sigmoid
approximation, the weight update (elementwise), and one bootstrap to
refresh the model ciphertexts.
"""

from __future__ import annotations

from functools import partial

from ..core.ir.bootstrap_graph import BOOTSTRAP_13
from .compose import KernelSpec, WorkloadSchedule
from .kernels import activation_kernel, bootstrap_kernel, elementwise_kernel, \
    matmul_kernel

ITERATIONS = 30
BATCH_PARALLELISM = 4  # ciphertexts per mini-batch block


def helr_schedule() -> WorkloadSchedule:
    return WorkloadSchedule(
        name="helr",
        description="Logistic regression training, 30 iterations, batch 256",
        max_level=BOOTSTRAP_13.top_level,
        kernels=[
            KernelSpec(
                "helr-bootstrap",
                partial(bootstrap_kernel, BOOTSTRAP_13),
                count=ITERATIONS,
                parallel=True,
                max_parallel=BATCH_PARALLELISM,
            ),
            KernelSpec(
                "helr-gradient",
                partial(matmul_kernel, "grad", 32, 12),
                count=ITERATIONS,
                parallel=True,
                max_parallel=BATCH_PARALLELISM,
            ),
            KernelSpec(
                "helr-sigmoid",
                partial(activation_kernel, "sigmoid", 7, 8),
                count=ITERATIONS,
                parallel=True,
                max_parallel=BATCH_PARALLELISM,
            ),
            KernelSpec(
                "helr-update",
                partial(elementwise_kernel, "update", 2, 6),
                count=ITERATIONS,
                parallel=True,
                max_parallel=BATCH_PARALLELISM,
            ),
        ],
    )
