"""ResNet-20 CKKS inference (Lee et al. [43]), as a kernel schedule.

One 32x32 CIFAR-10 image packs into a single ciphertext, so program-level
parallelism is limited (Section 7.1: small models gain little from
Cinnamon-8/12); the serial bootstrap chain dominates.  Structure:

* ~19 ReLU approximations, each preceded by a bootstrap (the composite
  minimax polynomials burn the whole budget) — the intro's "about fifty
  bootstraps" counts the two EvalMod pipelines per refresh at this depth;
  we schedule 45 bootstraps plus the explicit activation evaluations.
* 20 convolution layers as BSGS diagonal matmuls (im2col packing).
* A final average-pool + fully-connected matmul.
"""

from __future__ import annotations

from functools import partial

from ..core.ir.bootstrap_graph import BOOTSTRAP_13
from .compose import KernelSpec, WorkloadSchedule
from .kernels import activation_kernel, bootstrap_kernel, matmul_kernel

NUM_BOOTSTRAPS = 45
NUM_CONV_LAYERS = 20
NUM_ACTIVATIONS = 19


def resnet20_schedule() -> WorkloadSchedule:
    return WorkloadSchedule(
        name="resnet20",
        description="ResNet-20 inference on one encrypted CIFAR-10 image",
        max_level=BOOTSTRAP_13.top_level,
        kernels=[
            KernelSpec(
                "resnet-bootstrap",
                partial(bootstrap_kernel, BOOTSTRAP_13),
                count=NUM_BOOTSTRAPS,
                parallel=False,  # single ciphertext: serial refresh chain
            ),
            KernelSpec(
                "resnet-conv",
                partial(matmul_kernel, "conv", 27, 12),  # 3x3x3 im2col diags
                count=NUM_CONV_LAYERS,
                parallel=False,
            ),
            KernelSpec(
                "resnet-relu",
                partial(activation_kernel, "relu", 27, 12),
                count=NUM_ACTIVATIONS,
                parallel=False,
            ),
            KernelSpec(
                "resnet-fc",
                partial(matmul_kernel, "fc", 10, 8),
                count=1,
                parallel=False,
            ),
        ],
    )
