"""Published baseline numbers (Table 2 and Section 8 comparisons).

The paper compares Cinnamon against the *best reported* results of prior
accelerators (CraterLake, ARK, CiFHER) and a one-off 48-core Xeon CPU
measurement; those are constants of the comparison, not something the
Cinnamon artifact re-measures.  We record them here verbatim so the
table/figure harnesses can regenerate the published rows, and mark which
cells the paper leaves empty.

``cpu_smallscale_seconds`` additionally measures this repository's own
functional CKKS bootstrap at a small ring degree, giving an honest local
CPU reference point for the speedup *shape* (the absolute 48-core number
remains the reported constant).
"""

from __future__ import annotations

import time
from typing import Dict, Optional

# Table 2 (seconds).  None == not reported in the paper.
REPORTED_SECONDS: Dict[str, Dict[str, Optional[float]]] = {
    "bootstrap": {
        "CraterLake": 6.33e-3,
        "CiFHER": 5.58e-3,
        "ARK": 3.5e-3,
        "CPU": 33.0,
    },
    "resnet20": {
        "CraterLake": 321.26e-3,
        "CiFHER": 189e-3,
        "ARK": 125e-3,
        "CPU": 17.5 * 60,
    },
    "helr": {
        "CraterLake": 121.91e-3,
        "CiFHER": 106.88e-3,
        "ARK": None,
        "CPU": 14.9 * 60,
    },
    "bert-base-128": {
        "CraterLake": None,
        "CiFHER": None,
        "ARK": None,
        "CPU": 1037.5 * 60,
    },
}

# The paper's own Cinnamon results (Table 2, seconds) — the calibration
# targets our simulator's shapes are checked against in EXPERIMENTS.md.
PAPER_CINNAMON_SECONDS: Dict[str, Dict[str, float]] = {
    "bootstrap": {"Cinnamon-M": 1.87e-3, "Cinnamon-4": 1.98e-3,
                  "Cinnamon-8": 1.71e-3, "Cinnamon-12": 1.63e-3},
    "resnet20": {"Cinnamon-M": 105.94e-3, "Cinnamon-4": 94.52e-3,
                 "Cinnamon-8": 73.85e-3, "Cinnamon-12": 70.57e-3},
    "helr": {"Cinnamon-M": 73.20e-3, "Cinnamon-4": 87.61e-3,
             "Cinnamon-8": 68.74e-3, "Cinnamon-12": 48.76e-3},
    "bert-base-128": {"Cinnamon-M": 3.83, "Cinnamon-4": 3.83,
                      "Cinnamon-8": 2.07, "Cinnamon-12": 1.67},
}


def reported_seconds(benchmark: str, system: str) -> Optional[float]:
    try:
        return REPORTED_SECONDS[benchmark][system]
    except KeyError as exc:
        raise KeyError(
            f"no reported number for {system!r} on {benchmark!r}") from exc


def cpu_smallscale_seconds(ring_degree: int = 256, levels: int = 18) -> float:
    """Measure this library's functional bootstrap on the host CPU.

    Pure-Python CKKS at a small ring — a *local* reference point showing
    that even a toy instance takes seconds on a CPU, versus milliseconds
    for the simulated accelerator.  Not comparable in absolute terms to
    the paper's 48-core N=64K measurement (33 s per bootstrap).
    """
    import numpy as np

    from ..fhe import CKKSContext, make_params
    from ..fhe.bootstrap import Bootstrapper

    params = make_params(ring_degree=ring_degree, levels=levels,
                         prime_bits=28, num_digits=3,
                         secret_hamming_weight=32)
    ctx = CKKSContext(params, seed=7)
    bs = Bootstrapper(ctx)
    ct = bs.encrypt_for_bootstrap(np.linspace(-1, 1, params.slot_count))
    start = time.perf_counter()
    bs.bootstrap(ct)
    return time.perf_counter() - start
