"""Request freshness: nonce + timestamp envelopes and replay windows.

A :class:`FreshnessEnvelope` travels with a request (and with every
``submit`` frame of the :mod:`repro.cluster` wire protocol): a random
nonce, the sender's wall-clock issue time, and a per-sender monotonic
sequence number.  The receiving side holds a :class:`ReplayGuard` with a
bounded window:

* a nonce seen again inside the window  -> :class:`ReplayError`
  (``nonce-reuse``) — the classic capture-and-resend;
* a sequence number at or below the sender's watermark ->
  :class:`ReplayError` (``sequence-reorder``) — an attacker re-ordering
  or re-injecting captured frames;
* a timestamp older than the window (or further in the future than the
  allowed skew) -> :class:`StaleRequestError` — outside the window the
  nonce set no longer vouches for uniqueness, so the request cannot be
  accepted at all.

The guard's memory is bounded: expired nonces are pruned on every check,
and ``max_nonces`` caps the set against a flood (when full, the oldest
entries fall out *and* the window conservatively shrinks to what is
still covered — never accept what we can no longer vouch for).
"""

from __future__ import annotations

import secrets
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from .errors import ReplayError, StaleRequestError

#: Default replay window: how long a nonce is remembered and how old an
#: envelope may be.
DEFAULT_WINDOW_S = 30.0
#: Default tolerated forward clock skew.
DEFAULT_SKEW_S = 5.0


@dataclass
class FreshnessEnvelope:
    """One request's freshness claim (see module docstring)."""

    nonce: str
    issued_unix: float
    seq: int = 0
    sender: str = ""

    def as_header_fields(self) -> dict:
        """The wire representation merged into a frame header."""
        return {"nonce": self.nonce, "issued_unix": self.issued_unix,
                "seq": self.seq, "sender": self.sender}

    @classmethod
    def from_header(cls, header: dict) -> Optional["FreshnessEnvelope"]:
        """Parse the envelope out of a frame header (None if absent)."""
        nonce = header.get("nonce")
        if not nonce:
            return None
        return cls(nonce=str(nonce),
                   issued_unix=float(header.get("issued_unix", 0.0)),
                   seq=int(header.get("seq", 0)),
                   sender=str(header.get("sender", "")))


class EnvelopeMinter:
    """Per-sender envelope factory: fresh nonce, current time, strictly
    increasing sequence numbers."""

    def __init__(self, sender: str = ""):
        self.sender = sender
        self._lock = threading.Lock()
        self._seq = 0

    def mint(self) -> FreshnessEnvelope:
        with self._lock:
            self._seq += 1
            seq = self._seq
        return FreshnessEnvelope(nonce=secrets.token_hex(8),
                                 issued_unix=time.time(), seq=seq,
                                 sender=self.sender)


class ReplayGuard:
    """Bounded-window replay/reorder/staleness detector (thread-safe)."""

    def __init__(self, window_s: float = DEFAULT_WINDOW_S,
                 skew_s: float = DEFAULT_SKEW_S,
                 max_nonces: int = 65536, enforce_sequence: bool = True,
                 clock=time.time):
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        self.window_s = window_s
        self.skew_s = skew_s
        self.max_nonces = max_nonces
        self.enforce_sequence = enforce_sequence
        self._clock = clock
        self._lock = threading.Lock()
        self._nonces: Dict[str, float] = {}        # nonce -> expiry
        self._watermarks: Dict[str, int] = {}      # sender -> highest seq
        self.checked = 0
        self.rejected: Dict[str, int] = {
            "nonce-reuse": 0, "sequence-reorder": 0, "stale": 0}

    # ------------------------------------------------------------------ #

    def check(self, envelope: FreshnessEnvelope) -> None:
        """Admit one envelope or raise the matching typed error."""
        now = self._clock()
        with self._lock:
            self.checked += 1
            self._prune(now)
            age = now - envelope.issued_unix
            if age > self.window_s or age < -self.skew_s:
                self.rejected["stale"] += 1
                raise StaleRequestError(age, self.window_s)
            if envelope.nonce in self._nonces:
                self.rejected["nonce-reuse"] += 1
                raise ReplayError("nonce-reuse", nonce=envelope.nonce,
                                  sender=envelope.sender)
            if self.enforce_sequence and envelope.sender:
                watermark = self._watermarks.get(envelope.sender)
                if watermark is not None and envelope.seq <= watermark:
                    self.rejected["sequence-reorder"] += 1
                    raise ReplayError("sequence-reorder",
                                      nonce=envelope.nonce,
                                      sender=envelope.sender)
                self._watermarks[envelope.sender] = envelope.seq
            self._nonces[envelope.nonce] = now + self.window_s
            if len(self._nonces) > self.max_nonces:
                self._evict_oldest()

    def _prune(self, now: float) -> None:
        if len(self._nonces) < 64:
            for nonce, expiry in list(self._nonces.items()):
                if expiry <= now:
                    del self._nonces[nonce]
            return
        # Larger sets: one pass, rebuilt dict (cheaper than del-in-loop).
        self._nonces = {nonce: expiry
                        for nonce, expiry in self._nonces.items()
                        if expiry > now}

    def _evict_oldest(self) -> None:
        overflow = len(self._nonces) - self.max_nonces
        for nonce in sorted(self._nonces, key=self._nonces.get)[:overflow]:
            del self._nonces[nonce]

    # ------------------------------------------------------------------ #

    def seen(self, nonce: str) -> bool:
        with self._lock:
            return nonce in self._nonces

    def stats(self) -> dict:
        with self._lock:
            return {"checked": self.checked,
                    "tracked_nonces": len(self._nonces),
                    "rejected": dict(self.rejected)}
