"""``python -m repro.trust`` — trust-layer CLI.

Two modes:

* ``--rebuild-check`` — the reproducibility gate: compile the serving
  workload mix twice into two fresh cache directories and prove the
  manifests' deterministic content digests are bit-identical.  Exit 0
  iff every digest matches.
* ``--verify DIR`` — read-only audit of an existing artifact directory
  against its signed manifest (nothing is quarantined).  Exit 0 iff no
  artifact is tampered.
"""

from __future__ import annotations

import argparse
import json
import sys


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.trust",
        description="Artifact-integrity tooling: reproducible-rebuild "
                    "gate and manifest audits.")
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--rebuild-check", action="store_true",
                      help="cold-rebuild the compile cache twice and "
                           "prove content digests are bit-identical")
    mode.add_argument("--verify", metavar="DIR",
                      help="audit DIR against its signed MANIFEST.json")
    parser.add_argument("--scale", default="small",
                        choices=("small", "paper"),
                        help="workload mix scale (default: small)")
    parser.add_argument("--machine", default="cinnamon_4",
                        help="machine config to compile for")
    parser.add_argument("--mix", default="",
                        help="reweight mix classes, e.g. bootstrap=2")
    parser.add_argument("--reference", metavar="JSON",
                        help="committed digest map to also compare "
                             "against (from a prior --json run)")
    parser.add_argument("--json", metavar="OUT", dest="json_out",
                        help="write the full report as JSON")
    args = parser.parse_args(argv)

    if args.verify:
        from .rebuild import verify_cache_dir

        report = verify_cache_dir(args.verify)
        ok = not report["tampered"]
        print(f"verify {args.verify}: "
              f"{len(report['verified'])} verified, "
              f"{len(report['tampered'])} tampered, "
              f"{len(report['missing'])} missing")
        for name in report["tampered"]:
            print(f"  TAMPERED {name}")
    else:
        from ..serve.loadgen import parse_mix_weights
        from ..workloads.serving import serving_mix
        from .rebuild import rebuild_check

        mix = serving_mix(args.scale,
                          weights=parse_mix_weights(args.mix) or None)
        reference = None
        if args.reference:
            with open(args.reference) as handle:
                doc = json.load(handle)
            reference = doc.get("warm", doc)
        report = rebuild_check(mix, machine=args.machine,
                               reference=reference)
        ok = report["ok"]
        print(f"rebuild-check ({args.scale}/{args.machine}): "
              f"{report['artifacts']} artifacts, "
              f"{len(report['mismatched'])} mismatched"
              + (f", {len(report['reference_drift'])} drifted from "
                 f"reference" if reference is not None else ""))
        for key in report["mismatched"]:
            print(f"  MISMATCH {key}")
        for key in report.get("reference_drift", ()):
            print(f"  DRIFT {key}")
        print("REPRODUCIBLE" if ok else "NOT REPRODUCIBLE")

    if args.json_out:
        with open(args.json_out, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)

    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
