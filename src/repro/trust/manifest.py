"""Signed per-directory artifact manifests.

One :class:`ArtifactManifest` guards one directory of on-disk artifacts
(the compile cache's pickles, a checkpoint store's ``CNCK`` blobs).  The
manifest file (``MANIFEST.json``) maps artifact name to

* ``sha256`` — hash of the exact file bytes (tamper detection), and
* ``digest`` — an optional caller-supplied *content* digest that is
  deterministic across rebuilds (the reproducibility gate compares
  these; wall-clock compile timings inside a pickle make the raw file
  hash non-reproducible),

and is itself signed: an HMAC-SHA256 over the canonical JSON of the
entries, keyed by the deployment's trust key (``CINNAMON_TRUST_KEY`` or
an explicit ``key=``).  A manifest whose signature does not verify is
quarantined wholesale — every entry in it is untrusted.

Concurrency: updates happen under the same cross-process ``flock``
discipline as the cache index (:class:`~repro.runtime.locking.FileLock`
on ``.manifest.lock``), so cluster workers sharing one cache directory
cannot lose each other's rows.  Verification is lock-free (reads one
atomic snapshot).

Write ordering contract: artifact files are ``os.replace``d *before*
their manifest row lands.  A reader that finds a file with no manifest
row therefore treats it as *unrecorded* (a plain cache miss — a writer
may be mid-update), while a row whose hash mismatches the file is
*tampering* and quarantines the file.
"""

from __future__ import annotations

import hashlib
import hmac
import json
import os
import tempfile
import time
from pathlib import Path
from typing import Dict, Optional

from .errors import ManifestSignatureError, TamperDetectedError

#: Name of the signed per-directory manifest.
MANIFEST_FILENAME = "MANIFEST.json"
#: Lock file guarding manifest read-modify-write cycles across processes.
MANIFEST_LOCK_FILENAME = ".manifest.lock"
#: Subdirectory tampered artifacts are moved into (never deleted: they
#: are evidence).
QUARANTINE_DIRNAME = "quarantine"

#: Environment variable carrying the deployment's manifest-signing key.
TRUST_KEY_ENV = "CINNAMON_TRUST_KEY"

#: Manifest document layout version.
MANIFEST_SCHEMA_VERSION = 1

#: Fallback signing key for deployments that have not provisioned one.
#: It still turns accidental corruption and casual tampering into loud
#: failures; real deployments must set ``CINNAMON_TRUST_KEY`` (see
#: docs/trust.md for the threat model).
_DEFAULT_KEY = b"cinnamon-dev-trust-key"


def resolve_trust_key(key=None) -> bytes:
    """The manifest-signing key: explicit ``key`` > environment >
    built-in development default."""
    if key is not None:
        return key.encode("utf-8") if isinstance(key, str) else bytes(key)
    env = os.environ.get(TRUST_KEY_ENV)
    if env:
        return env.encode("utf-8")
    return _DEFAULT_KEY


def sha256_file(path) -> str:
    """Streaming SHA-256 of a file's bytes (hex digest)."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def sign_entries(entries: dict, key: bytes,
                 schema: int = MANIFEST_SCHEMA_VERSION) -> str:
    """HMAC-SHA256 over the canonical JSON of ``(schema, entries)``."""
    blob = json.dumps({"schema": schema, "entries": entries},
                      sort_keys=True, separators=(",", ":"))
    return hmac.new(key, blob.encode("utf-8"), hashlib.sha256).hexdigest()


class ArtifactManifest:
    """Signed hash manifest of one artifact directory (see module doc).

    ``on_tamper`` (optional) is called with a
    :class:`~repro.trust.errors.TamperDetectedError` every time this
    manifest detects tampering — the cache layer uses it to bump the
    ``trust_tamper_detected_total`` counter and journal a ``kind:
    "trust"`` row without the manifest importing any of that machinery.
    """

    def __init__(self, directory, key=None, target: str = "cache",
                 on_tamper=None):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.key = resolve_trust_key(key)
        self.target = target
        self.on_tamper = on_tamper
        # Imported here, not at module scope: runtime.cache imports this
        # module, so a top-level import of repro.runtime would be circular.
        from ..runtime.locking import FileLock
        self._lock = FileLock(self.directory / MANIFEST_LOCK_FILENAME)

    # ------------------------------------------------------------------ #
    # Paths

    @property
    def path(self) -> Path:
        return self.directory / MANIFEST_FILENAME

    @property
    def quarantine_dir(self) -> Path:
        return self.directory / QUARANTINE_DIRNAME

    # ------------------------------------------------------------------ #
    # Load / store

    def entries(self) -> Dict[str, dict]:
        """The verified manifest entries (empty if absent).

        An unverifiable signature is treated as tampering with the
        manifest itself: the file is quarantined and an empty manifest
        takes its place (every artifact becomes unrecorded, i.e. a cache
        miss — fail closed, not open).
        """
        try:
            return self._read_verified()
        except ManifestSignatureError:
            self._report(TamperDetectedError(
                self.target, MANIFEST_FILENAME, expected="valid-hmac",
                actual="bad-hmac"))
            with self._lock:
                self._quarantine_file(self.path)
                self._write(dict())
            return {}

    def _read_verified(self) -> Dict[str, dict]:
        try:
            doc = json.loads(self.path.read_text())
        except FileNotFoundError:
            return {}
        except (OSError, ValueError) as exc:
            raise ManifestSignatureError(
                f"unreadable manifest {self.path}: {exc}") from exc
        if not isinstance(doc, dict):
            raise ManifestSignatureError("manifest is not a JSON object")
        entries = doc.get("entries")
        if not isinstance(entries, dict):
            raise ManifestSignatureError("manifest has no entries map")
        schema = doc.get("schema", MANIFEST_SCHEMA_VERSION)
        expected = sign_entries(entries, self.key, schema=schema)
        if not hmac.compare_digest(str(doc.get("sig", "")), expected):
            raise ManifestSignatureError(
                f"manifest signature mismatch in {self.directory}")
        return entries

    def _write(self, entries: Dict[str, dict]) -> None:
        """Atomically replace the manifest (caller holds the flock)."""
        doc = {
            "schema": MANIFEST_SCHEMA_VERSION,
            "entries": entries,
            "sig": sign_entries(entries, self.key),
        }
        fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(doc, handle, sort_keys=True, indent=1)
            os.replace(tmp, self.path)
        except Exception:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------ #
    # Recording

    def record(self, name: str, *, sha256: Optional[str] = None,
               path=None, digest: Optional[str] = None,
               size: Optional[int] = None) -> dict:
        """Record (or refresh) one artifact row and re-sign.

        Pass either the precomputed ``sha256`` of the file bytes or a
        ``path`` to hash.  ``digest`` is the deterministic content
        digest compared by ``--rebuild-check``.
        """
        if sha256 is None:
            if path is None:
                raise ValueError("record() needs sha256 or path")
            sha256 = sha256_file(path)
            if size is None:
                size = os.path.getsize(path)
        entry = {"sha256": sha256, "recorded_unix": time.time()}
        if digest is not None:
            entry["digest"] = digest
        if size is not None:
            entry["size"] = int(size)
        with self._lock:
            entries = self.entries()
            entries[name] = entry
            self._write(entries)
        return entry

    def forget(self, name: str) -> None:
        with self._lock:
            entries = self.entries()
            if entries.pop(name, None) is not None:
                self._write(entries)

    def clear(self) -> None:
        with self._lock:
            self._write({})

    # ------------------------------------------------------------------ #
    # Verification

    def verify_bytes(self, name: str, data: bytes) -> bool:
        """Verify in-memory artifact bytes against the manifest.

        Returns ``True`` when the entry exists and matches, ``False``
        when the artifact is *unrecorded* (plain miss), and raises
        :class:`TamperDetectedError` on a hash mismatch.
        """
        entry = self.entries().get(name)
        if entry is None:
            return False
        actual = hashlib.sha256(data).hexdigest()
        if not hmac.compare_digest(entry["sha256"], actual):
            error = TamperDetectedError(self.target, name,
                                        expected=entry["sha256"],
                                        actual=actual)
            self._report(error)
            raise error
        return True

    def verify_file(self, name: str, path) -> bool:
        """Like :meth:`verify_bytes` for an on-disk file (streaming)."""
        entry = self.entries().get(name)
        if entry is None:
            return False
        actual = sha256_file(path)
        if not hmac.compare_digest(entry["sha256"], actual):
            error = TamperDetectedError(self.target, name,
                                        expected=entry["sha256"],
                                        actual=actual)
            self._report(error)
            raise error
        return True

    def verify_directory(self) -> dict:
        """Audit every recorded artifact that exists on disk.

        Returns ``{"verified": [...], "tampered": [...], "missing":
        [...]}`` without quarantining anything — the CLI's read-only
        audit mode.
        """
        report = {"verified": [], "tampered": [], "missing": []}
        for name, entry in sorted(self.entries().items()):
            path = self.directory / name
            if not path.exists():
                report["missing"].append(name)
                continue
            if hmac.compare_digest(entry["sha256"], sha256_file(path)):
                report["verified"].append(name)
            else:
                report["tampered"].append(name)
        return report

    # ------------------------------------------------------------------ #
    # Quarantine

    def quarantine(self, name: str, path=None) -> Optional[Path]:
        """Move a tampered artifact into ``quarantine/`` (evidence, not
        deletion) and drop its manifest row.  Returns the new path, or
        ``None`` if the file was already gone."""
        path = Path(path) if path is not None else self.directory / name
        with self._lock:
            entries = self.entries()
            if entries.pop(name, None) is not None:
                self._write(entries)
            return self._quarantine_file(path)

    def _quarantine_file(self, path: Path) -> Optional[Path]:
        if not path.exists():
            return None
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        stamp = int(time.time() * 1e6)
        dest = self.quarantine_dir / f"{path.name}.{stamp}"
        try:
            os.replace(path, dest)
        except OSError:
            return None
        return dest

    def _report(self, error: TamperDetectedError) -> None:
        if self.on_tamper is not None:
            try:
                self.on_tamper(error)
            except Exception:  # pragma: no cover - observer must not mask
                pass

    # ------------------------------------------------------------------ #

    def digests(self) -> Dict[str, str]:
        """name -> deterministic content digest (reproducibility view)."""
        return {name: entry["digest"]
                for name, entry in self.entries().items()
                if "digest" in entry}

    def __len__(self) -> int:
        return len(self.entries())

    def __contains__(self, name: str) -> bool:
        return name in self.entries()
