"""repro.trust: artifact integrity, key lifecycle, replay protection.

The trust layer answers "can I run what I just loaded, with the key the
request named, for a request I haven't already served?" across every
place this repo persists or ships state:

* :mod:`~repro.trust.manifest` — signed per-directory hash manifests
  guarding the compile cache's pickles and checkpoint blobs; tampered
  files degrade to a cache miss and are quarantined as evidence;
* :mod:`~repro.trust.keyvault` — versioned multi-tenant evaluation-key
  lifecycle (issue / rotate / revoke) with signed, secret-free key
  manifests the cluster router replicates to workers;
* :mod:`~repro.trust.freshness` — nonce + timestamp + sequence
  envelopes and the bounded-window :class:`ReplayGuard` that rejects
  replayed, reordered, or stale requests;
* :mod:`~repro.trust.rebuild` — the reproducibility gate behind
  ``python -m repro.trust --rebuild-check``.

Every rejection is a typed exception from :mod:`~repro.trust.errors`,
traced as a ``kind: "trust"`` journal row, and counted in
``trust_*_total`` metrics — see docs/trust.md for the threat model.

Exports resolve lazily (PEP 562), matching :mod:`repro.cluster`.
"""

_LAZY_ATTRS = {
    "ArtifactManifest": ("repro.trust.manifest", "ArtifactManifest"),
    "EnvelopeMinter": ("repro.trust.freshness", "EnvelopeMinter"),
    "FreshnessEnvelope": ("repro.trust.freshness", "FreshnessEnvelope"),
    "FreshnessError": ("repro.trust.errors", "FreshnessError"),
    "KeyRecord": ("repro.trust.keyvault", "KeyRecord"),
    "KeyVault": ("repro.trust.keyvault", "KeyVault"),
    "KeyVaultError": ("repro.trust.errors", "KeyVaultError"),
    "ManifestSignatureError": ("repro.trust.errors",
                               "ManifestSignatureError"),
    "ReplayError": ("repro.trust.errors", "ReplayError"),
    "ReplayGuard": ("repro.trust.freshness", "ReplayGuard"),
    "StaleKeyError": ("repro.trust.errors", "StaleKeyError"),
    "StaleRequestError": ("repro.trust.errors", "StaleRequestError"),
    "TamperDetectedError": ("repro.trust.errors", "TamperDetectedError"),
    "TrustError": ("repro.trust.errors", "TrustError"),
    "UnknownKeyError": ("repro.trust.errors", "UnknownKeyError"),
    "artifact_digest": ("repro.trust.rebuild", "artifact_digest"),
    "rebuild_check": ("repro.trust.rebuild", "rebuild_check"),
    "resolve_trust_key": ("repro.trust.manifest", "resolve_trust_key"),
    "sha256_file": ("repro.trust.manifest", "sha256_file"),
}


def __getattr__(name):
    try:
        module_name, attr = _LAZY_ATTRS[name]
    except KeyError:
        raise AttributeError(
            f"module 'repro.trust' has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_name), attr)
    globals()[name] = value
    return value


__all__ = sorted(_LAZY_ATTRS)
