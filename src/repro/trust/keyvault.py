"""Multi-tenant evaluation-key lifecycle: versioning, rotation, staleness.

A production encrypted-AI service holds *public* key material per tenant
— the encryption key and the digit-decomposition evaluation keys that
:mod:`repro.fhe.keys` generates — and has to answer three lifecycle
questions the functional library does not:

* **Which version is live?**  Tenants rotate keys (compromise, policy,
  parameter change); requests pinned to an old version must be rejected
  with a typed :class:`~repro.trust.errors.StaleKeyError`, not silently
  served under retired material.
* **Who else needs to know?**  Every cluster worker validating requests
  needs the same view; the vault exports a *signed key manifest*
  (versions, ids, status, fingerprints — never secret material) that the
  router replicates to workers at hello time and on rotation.
* **What exactly was used?**  Each record carries a key fingerprint so
  audits can tie a served request to the precise key generation.

The vault itself is in-memory (key generation is deterministic from the
per-version seed via :class:`~repro.fhe.keys.KeyChain`); persistence and
distribution happen through the signed manifest.
"""

from __future__ import annotations

import hashlib
import hmac
import json
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .errors import (KeyVaultError, ManifestSignatureError, StaleKeyError,
                     UnknownKeyError)
from .manifest import resolve_trust_key

#: Key-manifest document layout version.
KEY_MANIFEST_SCHEMA_VERSION = 1

#: Lifecycle states of one key version.
ACTIVE = "active"
RETIRED = "retired"      # rotated out; rejected once past the grace depth
REVOKED = "revoked"      # compromised; rejected everywhere, immediately


@dataclass
class KeyRecord:
    """Metadata of one (tenant, version) key generation — no secrets."""

    tenant: str
    version: int
    key_id: str                       # short stable id (audit handle)
    fingerprint: str                  # sha256 over the generation inputs
    status: str = ACTIVE
    created_unix: float = field(default_factory=time.time)

    def as_dict(self) -> dict:
        return {
            "tenant": self.tenant, "version": self.version,
            "key_id": self.key_id, "fingerprint": self.fingerprint,
            "status": self.status, "created_unix": self.created_unix,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "KeyRecord":
        return cls(tenant=doc["tenant"], version=int(doc["version"]),
                   key_id=doc["key_id"], fingerprint=doc["fingerprint"],
                   status=doc.get("status", ACTIVE),
                   created_unix=doc.get("created_unix", 0.0))


def _key_fingerprint(tenant: str, version: int, seed: int,
                     params_repr: str) -> str:
    blob = json.dumps([tenant, version, seed, params_repr],
                      separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class KeyVault:
    """Versioned multi-tenant key registry (see module docstring).

    ``grace_versions`` is how many *retired* generations behind the
    active one remain acceptable (0 = a rotation instantly invalidates
    the old version).  ``params`` (a CKKS/arch parameter set) enables
    :meth:`keychain` to materialize actual key material; a metadata-only
    vault (a worker holding a replicated manifest) works without it.
    """

    def __init__(self, params=None, signing_key=None,
                 grace_versions: int = 0, seed: int = 2025,
                 on_event=None):
        self.params = params
        self.key = resolve_trust_key(signing_key)
        self.grace_versions = grace_versions
        self.on_event = on_event      # callable(event:str, record) | None
        self._seed = seed
        self._lock = threading.RLock()
        self._records: Dict[str, List[KeyRecord]] = {}
        self._chains: Dict[tuple, object] = {}

    # ------------------------------------------------------------------ #
    # Issuance / rotation

    def issue(self, tenant: str) -> KeyRecord:
        """Issue version 1 for a new tenant (idempotent: returns the
        active record if the tenant already has keys)."""
        with self._lock:
            chain = self._records.get(tenant)
            if chain:
                return self.active(tenant)
            return self._mint(tenant, version=1)

    def rotate(self, tenant: str) -> KeyRecord:
        """Retire the tenant's active version and mint the next one."""
        with self._lock:
            if tenant not in self._records:
                raise UnknownKeyError(tenant)
            current = self.active(tenant)
            current.status = RETIRED
            record = self._mint(tenant, version=current.version + 1)
        self._emit("rotation", record)
        return record

    def revoke(self, tenant: str, version: int) -> KeyRecord:
        """Hard-kill one version (compromise response): rejected
        everywhere immediately, grace does not apply."""
        with self._lock:
            record = self._find(tenant, version)
            if record is None:
                raise UnknownKeyError(tenant, version)
            record.status = REVOKED
        self._emit("revocation", record)
        return record

    def _mint(self, tenant: str, version: int) -> KeyRecord:
        seed = self._derive_seed(tenant, version)
        record = KeyRecord(
            tenant=tenant, version=version,
            key_id=hashlib.sha256(
                f"{tenant}:{version}:{seed}".encode()).hexdigest()[:16],
            fingerprint=_key_fingerprint(tenant, version, seed,
                                         repr(self.params)))
        self._records.setdefault(tenant, []).append(record)
        return record

    def _derive_seed(self, tenant: str, version: int) -> int:
        blob = f"{self._seed}:{tenant}:{version}".encode("utf-8")
        return int.from_bytes(hashlib.sha256(blob).digest()[:8], "big")

    # ------------------------------------------------------------------ #
    # Lookup / validation

    def tenants(self) -> List[str]:
        with self._lock:
            return sorted(self._records)

    def _find(self, tenant: str, version: int) -> Optional[KeyRecord]:
        for record in self._records.get(tenant, ()):
            if record.version == version:
                return record
        return None

    def active(self, tenant: str) -> KeyRecord:
        """The tenant's newest non-revoked record."""
        with self._lock:
            for record in reversed(self._records.get(tenant, [])):
                if record.status != REVOKED:
                    return record
        raise UnknownKeyError(tenant)

    def active_version(self, tenant: str) -> int:
        return self.active(tenant).version

    def validate(self, tenant: str, version: Optional[int]) -> KeyRecord:
        """Accept or reject one request's key reference.

        ``version=None`` means "whatever is active" and always passes
        for a known tenant.  Raises :class:`UnknownKeyError` for never-
        issued material and :class:`StaleKeyError` for revoked versions
        or retirements beyond ``grace_versions``.
        """
        with self._lock:
            if tenant not in self._records:
                raise UnknownKeyError(tenant)
            current = self.active(tenant)
            if version is None:
                return current
            record = self._find(tenant, version)
            if record is None:
                raise UnknownKeyError(tenant, version)
            if record.status == REVOKED:
                raise StaleKeyError(tenant, version, current.version,
                                    status=REVOKED)
            behind = current.version - record.version
            if record.status == RETIRED and behind > self.grace_versions:
                raise StaleKeyError(tenant, version, current.version)
            return record

    # ------------------------------------------------------------------ #
    # Key material

    def keychain(self, tenant: str, version: Optional[int] = None):
        """The :class:`~repro.fhe.keys.KeyChain` of one validated
        (tenant, version) — generated on first use from the per-version
        seed, cached after (evaluation keys are expensive)."""
        if self.params is None:
            raise KeyVaultError(
                "this vault holds key metadata only (no params): it can "
                "validate versions but not materialize key material")
        record = self.validate(tenant, version)
        cache_key = (tenant, record.version)
        with self._lock:
            chain = self._chains.get(cache_key)
            if chain is None:
                from ..fhe.keys import KeyChain

                chain = KeyChain(self.params,
                                 seed=self._derive_seed(tenant,
                                                        record.version))
                chain.key_id = record.key_id
                chain.key_version = record.version
                self._chains[cache_key] = chain
        return chain

    # ------------------------------------------------------------------ #
    # Signed manifest (replication across workers)

    def manifest(self) -> dict:
        """Signed, secret-free snapshot of every tenant's key records."""
        with self._lock:
            records = [r.as_dict()
                       for chain in self._records.values()
                       for r in chain]
        records.sort(key=lambda d: (d["tenant"], d["version"]))
        doc = {"schema": KEY_MANIFEST_SCHEMA_VERSION,
               "grace_versions": self.grace_versions,
               "records": records}
        doc["sig"] = self._sign(doc)
        return doc

    def install_manifest(self, doc: dict) -> int:
        """Adopt a replicated manifest (verify-then-install).

        Replaces this vault's records wholesale — the manifest is the
        router's authoritative view.  Returns the record count.  Raises
        :class:`ManifestSignatureError` on a bad signature.
        """
        expected = self._sign(doc)
        if not hmac.compare_digest(str(doc.get("sig", "")), expected):
            raise ManifestSignatureError("key manifest signature mismatch")
        records: Dict[str, List[KeyRecord]] = {}
        for entry in doc.get("records", ()):
            record = KeyRecord.from_dict(entry)
            records.setdefault(record.tenant, []).append(record)
        for chain in records.values():
            chain.sort(key=lambda r: r.version)
        with self._lock:
            self._records = records
            self.grace_versions = int(
                doc.get("grace_versions", self.grace_versions))
        return sum(len(chain) for chain in records.values())

    def _sign(self, doc: dict) -> str:
        payload = {k: v for k, v in doc.items() if k != "sig"}
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hmac.new(self.key, blob.encode("utf-8"),
                        hashlib.sha256).hexdigest()

    # ------------------------------------------------------------------ #

    def counts(self) -> dict:
        """Small stats payload for worker heartbeats/tests."""
        with self._lock:
            return {
                "tenants": len(self._records),
                "versions": sum(len(c) for c in self._records.values()),
                "active": sum(
                    1 for c in self._records.values()
                    for r in c if r.status == ACTIVE),
            }

    def _emit(self, event: str, record: KeyRecord) -> None:
        if self.on_event is not None:
            try:
                self.on_event(event, record)
            except Exception:  # pragma: no cover - observer must not mask
                pass
