"""Typed errors of the trust layer.

Every rejection the trust layer makes — a tampered artifact, a stale or
revoked evaluation key, a replayed or reordered request — surfaces as
one of these, never as a hang, a bare ``Exception``, or a silent
re-execution.  Callers (the serving router, the cache load path, the
checkpoint store) catch the *typed* class, convert it into a terminal
request status or a cache miss, and record a ``kind: "trust"`` trace
row plus a metrics counter.
"""

from __future__ import annotations


class TrustError(RuntimeError):
    """Base class of every trust-layer rejection."""


class TamperDetectedError(TrustError):
    """An artifact's content hash does not match its signed manifest."""

    def __init__(self, target: str, name: str, expected: str = "",
                 actual: str = ""):
        self.target = target        # "cache" | "checkpoint" | "manifest"
        self.name = name            # artifact key / file name
        self.expected = expected
        self.actual = actual
        detail = ""
        if expected or actual:
            detail = (f" (manifest sha256 {expected[:12]}…, "
                      f"file {actual[:12]}…)")
        super().__init__(
            f"tampered {target} artifact {name!r}{detail}")


class ManifestSignatureError(TrustError):
    """A manifest's HMAC signature failed verification — the manifest
    itself (not just one artifact) is untrusted."""


class KeyVaultError(TrustError):
    """Base class of key-lifecycle rejections."""


class UnknownKeyError(KeyVaultError):
    """The referenced tenant or key version was never issued."""

    def __init__(self, tenant: str, version=None):
        self.tenant = tenant
        self.version = version
        what = (f"key version {version} of tenant {tenant!r}"
                if version is not None else f"tenant {tenant!r}")
        super().__init__(f"unknown {what}")


class StaleKeyError(KeyVaultError):
    """The referenced evaluation/public key version has been rotated
    out (or explicitly revoked) and may no longer authorize work."""

    def __init__(self, tenant: str, version: int, active: int,
                 status: str = "retired"):
        self.tenant = tenant
        self.version = version
        self.active = active
        self.status = status
        super().__init__(
            f"{status} key version {version} of tenant {tenant!r} "
            f"rejected (active version is {active})")


class FreshnessError(TrustError):
    """Base class of request-freshness rejections."""


class ReplayError(FreshnessError):
    """A request envelope's nonce was already consumed (replay) or its
    sequence number ran backwards (reorder)."""

    def __init__(self, reason: str, nonce: str = "", sender: str = ""):
        self.reason = reason        # "nonce-reuse" | "sequence-reorder"
        self.nonce = nonce
        self.sender = sender
        super().__init__(
            f"replayed request rejected ({reason}, nonce={nonce!r})")


class StaleRequestError(FreshnessError):
    """A request envelope's timestamp falls outside the replay window
    (too old to vouch for, or too far in the future to be honest)."""

    def __init__(self, age_s: float, window_s: float):
        self.age_s = age_s
        self.window_s = window_s
        direction = "old" if age_s >= 0 else "far in the future"
        super().__init__(
            f"request envelope is {abs(age_s):.1f}s {direction} "
            f"(replay window {window_s:.1f}s)")
