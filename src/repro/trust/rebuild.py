"""Reproducibility gate: prove a cold cache rebuild is bit-identical.

The compile cache's on-disk pickles are not byte-reproducible — they
embed wall-clock pass timings — so the signed manifest records, next to
each file hash, a *content digest*: a SHA-256 over the deterministic
substance of the artifact (program structure, resolved options, IR
counters, and the full register-allocated instruction streams).  Two
compiles of the same request must produce identical digests, or the
toolchain is nondeterministic — the bitrot/reproducibility posture of
the dstack attestation checklist (ROADMAP item 4).

:func:`rebuild_check` compiles a workload mix twice into two *fresh*
cache directories with two fresh sessions and diffs the manifests'
digest maps.  ``python -m repro.trust --rebuild-check`` wraps it.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Optional

from ..runtime.fingerprint import (_canonical, options_signature,
                                   params_signature, program_signature)


def artifact_digest(compiled) -> str:
    """Deterministic content digest of one compiled artifact.

    Everything that affects execution is covered (program DAG, options,
    IR counters, per-chip instruction streams); wall-clock timings and
    memory addresses are excluded by construction.
    """
    stats = getattr(compiled, "compile_stats", None)
    isa = getattr(compiled, "isa", None)
    program = getattr(compiled, "ct_program", None)
    params = getattr(compiled, "params", None)
    options = getattr(compiled, "options", None)
    streams = {}
    if isa is not None:
        streams = {
            str(chip): [[ins.opcode, ins.dest, list(ins.srcs),
                         _canonical(ins.attrs)]
                        for ins in isa.streams[chip]]
            for chip in sorted(isa.streams)
        }
    payload = {
        "name": getattr(compiled, "name", type(compiled).__name__),
        "program": (program_signature(program)
                    if program is not None else None),
        "params": (params_signature(params)
                   if params is not None else None),
        "options": (options_signature(options)
                    if options is not None else _canonical(options)),
        "counters": dict(getattr(stats, "counters", {}) or {}),
        "streams": streams,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _compile_mix(mix, machine, cache_dir, simulate: bool = False) -> dict:
    """Compile every workload of ``mix`` into a fresh session bound to
    ``cache_dir``; returns {fingerprint-key: content-digest}."""
    from ..runtime.session import CinnamonSession

    session = CinnamonSession(cache_dir=cache_dir)
    digests: Dict[str, str] = {}
    for name, entry in sorted(mix.items()):
        compiled = session.compile(entry.build(), entry.params,
                                   machine=machine, job=name)
        digests[compiled.cache_key] = artifact_digest(compiled)
    return digests


def rebuild_check(mix, machine="cinnamon_4", *, workdir=None,
                  reference: Optional[Dict[str, str]] = None) -> dict:
    """Compile ``mix`` twice (cold caches both times) and diff digests.

    Returns a report dict with ``ok``, the per-run digest maps, and the
    keys that diverged.  ``reference`` (optional) additionally compares
    the warm run against a committed digest map — the "bit-identical to
    the committed run" gate.
    """
    import tempfile

    with tempfile.TemporaryDirectory(
            prefix="cinnamon-trust-", dir=workdir) as tmp:
        warm = _compile_mix(mix, machine, f"{tmp}/warm")
        cold = _compile_mix(mix, machine, f"{tmp}/cold")
    mismatched = sorted(
        key for key in set(warm) | set(cold)
        if warm.get(key) != cold.get(key))
    report = {
        "ok": not mismatched,
        "machine": str(machine),
        "workloads": sorted(mix),
        "artifacts": len(warm),
        "warm": warm,
        "cold": cold,
        "mismatched": mismatched,
    }
    if reference is not None:
        drifted = sorted(
            key for key in set(reference) | set(warm)
            if reference.get(key) != warm.get(key))
        report["reference_drift"] = drifted
        report["ok"] = report["ok"] and not drifted
    return report


def verify_cache_dir(cache_dir, key=None) -> dict:
    """Read-only audit of an existing cache directory's manifest."""
    from .manifest import ArtifactManifest

    manifest = ArtifactManifest(cache_dir, key=key, target="cache")
    return manifest.verify_directory()
