"""Cached, instrumented compile-and-run runtime for Cinnamon.

The scale-out serving layer the ROADMAP points at needs compilation to be
a *service*: artifacts reused across calls and processes, batches of
independent jobs compiled/simulated concurrently, and every run leaving a
structured trace.  This package provides exactly that:

* :class:`CinnamonSession` — content-addressed compile cache (memory LRU
  + optional on-disk versioned pickles), memoized simulations, a
  ``concurrent.futures`` batch worker pool, and JSON trace export;
* :class:`CompileJob` / :class:`JobResult` — the batch interface;
* :func:`fingerprint` — the content hash of a compile request;
* :data:`CACHE_SCHEMA_VERSION` — bump to invalidate on-disk artifacts.

The :func:`repro.compile` facade is a thin wrapper over
:func:`default_session`.
"""

from .cache import CacheStats, CompileCache, DISK_HIT, MEMORY_HIT, MISS
from .fingerprint import (
    CACHE_SCHEMA_VERSION,
    fingerprint,
    options_signature,
    params_signature,
    program_signature,
)
from .session import (
    CinnamonSession,
    CompileJob,
    JobResult,
    compile_program,
    default_session,
    resolve_request_options,
)
from .trace import TRACE_SCHEMA_VERSION, TraceRecorder

__all__ = [
    "CinnamonSession",
    "CompileJob",
    "JobResult",
    "CompileCache",
    "CacheStats",
    "TraceRecorder",
    "fingerprint",
    "program_signature",
    "params_signature",
    "options_signature",
    "compile_program",
    "default_session",
    "resolve_request_options",
    "CACHE_SCHEMA_VERSION",
    "TRACE_SCHEMA_VERSION",
    "MISS",
    "MEMORY_HIT",
    "DISK_HIT",
]
