"""Advisory cross-process file locks for shared on-disk state.

The on-disk compile cache and the tuning DB are shared by every process
of a :mod:`repro.cluster` deployment (router, N workers, plus any CLI
run pointed at the same ``cache_dir``).  Individual artifact writes are
already torn-read-safe (write-to-temp + ``os.replace``), but
read-modify-write sequences — the cache's index file, the tuning DB's
merge-on-save — need mutual exclusion *across processes*, which a
``threading`` lock cannot provide.

:class:`FileLock` wraps ``fcntl.flock`` on POSIX (one lock file per
protected resource; the lock is tied to the open file description, so it
also excludes threads of the same process).  On platforms without
``fcntl`` it degrades to an ``O_EXCL`` spin-lock file.  Locks are
advisory: every writer must go through the same :class:`FileLock` path.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

try:  # POSIX
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None


class FileLockTimeout(TimeoutError):
    """The lock could not be acquired within the configured timeout."""


class FileLock:
    """Advisory exclusive lock on ``path`` (a dedicated lock file).

    Usable as a context manager::

        with FileLock(cache_dir / ".lock"):
            ...  # read-modify-write shared state

    Each ``acquire`` opens its own file descriptor, so concurrent users
    of one :class:`FileLock` instance (or of distinct instances on the
    same path, in any process) all exclude each other.
    """

    def __init__(self, path, timeout_s: float = 30.0,
                 poll_s: float = 0.005):
        self.path = Path(path)
        self.timeout_s = timeout_s
        self.poll_s = poll_s
        self._fd: int | None = None

    # ------------------------------------------------------------------ #

    def acquire(self) -> "FileLock":
        deadline = time.monotonic() + self.timeout_s
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if fcntl is not None:
            fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
            while True:
                try:
                    fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                    self._fd = fd
                    return self
                except OSError:
                    if time.monotonic() >= deadline:
                        os.close(fd)
                        raise FileLockTimeout(
                            f"could not lock {self.path} within "
                            f"{self.timeout_s}s")
                    time.sleep(self.poll_s)
        # O_EXCL fallback: create-or-spin on a sentinel file.
        sentinel = self.path.with_suffix(self.path.suffix + ".excl")
        while True:  # pragma: no cover - exercised only without fcntl
            try:
                self._fd = os.open(sentinel,
                                   os.O_CREAT | os.O_EXCL | os.O_RDWR)
                self._sentinel = sentinel
                return self
            except FileExistsError:
                if time.monotonic() >= deadline:
                    raise FileLockTimeout(
                        f"could not lock {self.path} within "
                        f"{self.timeout_s}s")
                time.sleep(self.poll_s)

    def release(self) -> None:
        fd, self._fd = self._fd, None
        if fd is None:
            return
        if fcntl is not None:
            try:
                fcntl.flock(fd, fcntl.LOCK_UN)
            finally:
                os.close(fd)
        else:  # pragma: no cover - non-POSIX
            os.close(fd)
            try:
                os.unlink(self._sentinel)
            except OSError:
                pass

    @property
    def held(self) -> bool:
        return self._fd is not None

    def __enter__(self) -> "FileLock":
        return self.acquire()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()
