"""Structured run traces for the runtime session.

One :class:`TraceRecorder` accumulates a job entry per compile/simulate
the session performs and renders them as a single JSON document:

.. code-block:: text

    {
      "schema": 1,
      "created_unix": 1700000000.0,
      "cache": {"memory_hits": 3, "disk_hits": 1, "misses": 2, ...},
      "jobs": [
        {
          "job": "bootstrap-4",        # caller-supplied label
          "kind": "compile",
          "cache": "miss" | "memory" | "disk",
          "key": "<sha256 fingerprint>",
          "seconds": 1.42,             # wall time inside the session call
          "compile": {                 # null on cache hits: no passes ran
            "passes": [{"name": "keyswitch", "seconds": 0.01}, ...],
            "counters": {"ct_ops": 9, ..., "isa_instructions": 1234},
            "total_seconds": 1.40
          }
        },
        {
          "job": "bootstrap-4",
          "kind": "simulate",
          "cache": "miss" | "memory",
          "machine": "Cinnamon-4",
          "tag": "link256.0",
          "seconds": 0.31,
          "simulate": { ... SimulationResult.as_dict() ... }
        },
        {
          "job": "req-17",              # one serving-layer request
          "kind": "serve",
          "status": "ok" | "failed" | "timeout" | "rejected",
          "machine": "Cinnamon-4",
          "shard": 2,                   # which session shard executed it
          "attempts": 2,                # 1 = no retries
          "batch_size": 5,              # size of the coalesced batch
          "cache": "miss" | "memory" | "disk" | null,
          "seconds": 0.48               # end-to-end (queue + execute)
        },
        {
          "job": "bootstrap-12",        # one machine-level recovery
          "kind": "recovery",
          "fault": "chip_crash" | "link_sever" | "watchdog",
          "chip": 3,                    # the die/link that failed
          "cycle": 48210,               # simulated cycle of the failure
          "machine_from": "Cinnamon-12",
          "machine_to": "Cinnamon-8",   # degraded-mode target
          "checkpoint_cycle": 40000,    # restart point (0 = from scratch)
          "lost_cycles": 8210,          # work beyond the last checkpoint
          "detection_s": 0.04,          # wall time to surface the fault
          "recompile_s": 0.85,          # degraded re-partitioning compile
          "replay_s": 0.31              # re-execution on the survivors
        },
        {
          "job": "tune-bootstrap",      # one autotuning run (repro.tune)
          "kind": "tune",
          "workload": "bootstrap",
          "machine": "Cinnamon-4",
          "strategy": "halving",
          "goal": "cycles",
          "budget": 8,                  # candidate evaluations allowed
          "candidates": 8,              # candidates actually tried
          "pruned": 4,                  # dropped at a low-fidelity rung
          "rungs": 2,                   # fidelity levels visited
          "default_cycles": 405368,     # the stock CompilerOptions config
          "best_cycles": 327000,
          "best_config": {"num_digits": 2, ...},
          "cache_hits": 3,              # compile cache hits during the run
          "seconds": 12.8,
          "trials": [                   # compact per-candidate log
            {"config": {...}, "cycles": 327000, "rung": 1,
             "pruned": false, "exact": true}
          ]
        }
      ]
    }

The ``simulate`` payload follows the stable metrics schema of
:meth:`repro.sim.simulator.SimulationResult.as_dict` (per-FU busy cycles
and utilization, HBM/network bytes, per-chip cycles, per-link occupancy).
``serve`` entries are appended by :class:`repro.serve.CinnamonServer`
(schema 2); ``recovery`` entries by the fault-tolerance layer
(:mod:`repro.resilience`, schema 3); ``trust`` entries (schema 7) by
the integrity layer (:mod:`repro.trust`) — e.g. ``{"kind": "trust",
"event": "tamper_detected", "target": "cache", "name": "<key>.pkl"}``.

Since schema 5, any entry recorded while a :mod:`repro.obs` span is
active additionally carries ``trace_id`` and ``span_id`` fields, so the
``serve``/``compile``/``simulate``/``recovery`` rows of one request are
joinable (``python -m repro.obs`` does exactly that).
"""

from __future__ import annotations

import json
import threading
import time
from typing import Dict, List, Optional

from ..obs.metrics import CYCLE_BUCKETS, default_registry
from ..obs.tracing import current_span

#: Version of the overall trace document layout.
#: 2: added ``kind == "serve"`` entries (the repro.serve request log).
#: 3: added ``kind == "recovery"`` entries (machine-level fault recovery)
#:    and an optional ``error`` field on simulate entries.
#: 4: added ``kind == "tune"`` entries (repro.tune autotuning runs:
#:    candidates tried, cycles, pruned-at-rung).
#: 5: cross-layer observability (repro.obs): every entry carries
#:    ``trace_id``/``span_id`` when recorded under an active span, so
#:    serve/compile/simulate/recovery rows of one request are joinable;
#:    serve entries gain a ``queue_s``/``batch_s``/``execute_s`` latency
#:    split.
#: 6: added ``kind == "cluster"`` entries (repro.cluster membership and
#:    failover events: worker spawn/exit/kill, drain, requeue-on-death,
#:    autoscale decisions) plus ``worker`` attribution on rows absorbed
#:    from worker-process journals into the router's merged journal.
#: 7: added ``kind == "trust"`` entries (repro.trust security events:
#:    tampered artifacts detected+quarantined, stale/revoked key
#:    rejections, replayed or reordered request envelopes, key
#:    rotations and manifest replications).
#: 8: live telemetry (repro.obs.live): added ``kind == "alert"`` entries
#:    (SLO burn-rate alerts: which objective, severity, burn rate over
#:    which long/short window pair, bad fraction vs. error budget);
#:    serve entries gain ``tenant`` and an optional per-request ``cost``
#:    rollup (``sim_cycles``/``bootstraps``/``bytes``/``compile_s``)
#:    feeding the ``cluster_tenant_*`` attribution counters.
TRACE_SCHEMA_VERSION = 8


class TraceRecorder:
    """Thread-safe accumulator of per-job trace entries.

    Besides journaling, every ``record_*`` feeds the process-global
    :func:`repro.obs.metrics.default_registry` — cache hit/miss counters,
    per-pass compile-time histograms, simulated cycles per workload, and
    recovery counts used to exist only as trace rows; now they are also
    scrapeable.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._jobs: List[dict] = []
        self._listeners: List = []
        self.created_unix = time.time()

    # ------------------------------------------------------------------ #

    def add_listener(self, fn) -> None:
        """Register ``fn(row_dict)`` to observe every appended/absorbed
        row — the live flight recorder's tap.  Listener errors never
        break the recording path."""
        with self._lock:
            self._listeners.append(fn)

    def _notify(self, rows) -> None:
        with self._lock:
            listeners = list(self._listeners)
        for fn in listeners:
            for row in rows:
                try:
                    fn(row)
                except Exception:   # pragma: no cover - defensive
                    pass

    def record_compile(self, *, job: str, key: str, cache: str,
                       seconds: float,
                       compile_stats: Optional[dict]) -> dict:
        entry = {
            "job": job,
            "kind": "compile",
            "cache": cache,
            "key": key,
            "seconds": seconds,
            "compile": compile_stats,
        }
        self._append(entry)
        registry = default_registry()
        registry.counter(
            "runtime_compile_requests_total",
            "Compile requests by cache outcome.",
            labels={"cache": cache}).inc()
        registry.histogram(
            "runtime_compile_seconds",
            "Wall time of one compile call (hits included).").observe(seconds)
        for timing in (compile_stats or {}).get("passes", ()):
            registry.histogram(
                "runtime_compile_pass_seconds",
                "Wall time per compiler pass (cache misses only).",
                labels={"pass": timing["name"]}).observe(timing["seconds"])
        return entry

    def record_simulate(self, *, job: str, machine: str, tag: str,
                        cache: str, seconds: float,
                        result: Optional[dict],
                        error: Optional[str] = None) -> dict:
        entry = {
            "job": job,
            "kind": "simulate",
            "cache": cache,
            "machine": machine,
            "tag": tag,
            "seconds": seconds,
            "simulate": result,
        }
        if error is not None:
            entry["error"] = error
        self._append(entry)
        registry = default_registry()
        registry.counter(
            "runtime_simulations_total", "Simulations by cache outcome.",
            labels={"cache": cache}).inc()
        if result is not None and "cycles" in result:
            registry.histogram(
                "runtime_simulated_cycles",
                "Simulated cycles per workload run.",
                labels={"workload": job, "machine": machine},
                buckets=CYCLE_BUCKETS).observe(result["cycles"])
        return entry

    def record_recovery(self, *, job: str, fault: str, chip: Optional[int],
                        cycle: int, machine_from: str, machine_to: str,
                        checkpoint_cycle: int = 0, lost_cycles: int = 0,
                        detection_s: float = 0.0, recompile_s: float = 0.0,
                        replay_s: Optional[float] = None) -> dict:
        """One machine-level fault recovery (schema 3): which fault hit,
        where execution restarted from, and where the wall time went
        (detect -> degraded recompile -> replay on the survivors)."""
        entry = {
            "job": job,
            "kind": "recovery",
            "fault": fault,
            "chip": chip,
            "cycle": cycle,
            "machine_from": machine_from,
            "machine_to": machine_to,
            "checkpoint_cycle": checkpoint_cycle,
            "lost_cycles": lost_cycles,
            "detection_s": detection_s,
            "recompile_s": recompile_s,
            "replay_s": replay_s,
        }
        self._append(entry)
        default_registry().counter(
            "runtime_recoveries_total",
            "Degraded-mode recoveries by fault kind.",
            labels={"fault": fault}).inc()
        return entry

    def record_tune(self, *, job: str, workload: str, machine: str,
                    strategy: str, goal: str, budget: int, candidates: int,
                    pruned: int, rungs: int, default_cycles: int,
                    best_cycles: int, best_config: dict, cache_hits: int,
                    seconds: float,
                    trials: Optional[List[dict]] = None) -> dict:
        """One autotuning run (schema 4): what was searched, what each
        candidate cost, which rung pruned it, and the winning config."""
        entry = {
            "job": job,
            "kind": "tune",
            "workload": workload,
            "machine": machine,
            "strategy": strategy,
            "goal": goal,
            "budget": budget,
            "candidates": candidates,
            "pruned": pruned,
            "rungs": rungs,
            "default_cycles": default_cycles,
            "best_cycles": best_cycles,
            "best_config": dict(best_config),
            "cache_hits": cache_hits,
            "seconds": seconds,
            "trials": list(trials or []),
        }
        self._append(entry)
        default_registry().counter(
            "runtime_tune_runs_total", "Autotuning runs recorded.",
            labels={"strategy": strategy}).inc()
        return entry

    def record_serve(self, *, job: str, status: str, machine: str,
                     shard: Optional[int], attempts: int, batch_size: int,
                     cache: Optional[str], seconds: float,
                     queue_s: float = 0.0, batch_s: float = 0.0,
                     execute_s: float = 0.0, tenant: str = "default",
                     cost: Optional[dict] = None) -> dict:
        """One serving-layer request outcome (see :mod:`repro.serve`).

        Schema 5 splits the wall time: ``queue_s`` (admission queue),
        ``batch_s`` (coalescing window), ``execute_s`` (inside the
        shard); ``seconds`` stays end-to-end.  Schema 8 adds ``tenant``
        and the per-request ``cost`` rollup (``sim_cycles`` /
        ``bootstraps`` / ``bytes`` / ``compile_s``) so offline journal
        replay reconstructs the same ``cluster_tenant_*`` attribution
        the live pipeline maintains.
        """
        entry = {
            "job": job,
            "kind": "serve",
            "status": status,
            "machine": machine,
            "shard": shard,
            "attempts": attempts,
            "batch_size": batch_size,
            "cache": cache,
            "seconds": seconds,
            "queue_s": queue_s,
            "batch_s": batch_s,
            "execute_s": execute_s,
            "tenant": tenant,
        }
        if cost is not None:
            entry["cost"] = dict(cost)
        self._append(entry)
        return entry

    def record_alert(self, *, slo: str, severity: str, burn_rate: float,
                     long_window_s: float, short_window_s: float,
                     bad_fraction: float, objective: float,
                     threshold: float, message: str = "") -> dict:
        """One SLO burn-rate alert (schema 8): which objective breached,
        at what severity, the burn rate over the fired long/short window
        pair, and the observed bad fraction vs. the error budget."""
        entry = {
            "job": slo,
            "kind": "alert",
            "slo": slo,
            "severity": severity,
            "burn_rate": burn_rate,
            "long_window_s": long_window_s,
            "short_window_s": short_window_s,
            "bad_fraction": bad_fraction,
            "objective": objective,
            "threshold": threshold,
            "message": message,
        }
        self._append(entry)
        default_registry().counter(
            "obs_slo_alerts_total", "SLO burn-rate alerts fired.",
            labels={"slo": slo, "severity": severity}).inc()
        return entry

    def record_cluster(self, *, event: str, worker: Optional[str] = None,
                       detail: Optional[dict] = None) -> dict:
        """One cluster-control-plane event (schema 6): membership changes
        (``worker_spawned``/``worker_exit``), failure handling
        (``worker_lost``/``requeued``), and autoscale decisions
        (``scale_up``/``scale_down``)."""
        entry = {
            "job": worker or "cluster",
            "kind": "cluster",
            "event": event,
            "worker": worker,
        }
        if detail:
            entry.update(detail)
        self._append(entry)
        default_registry().counter(
            "cluster_events_total", "Cluster control-plane events by kind.",
            labels={"event": event}).inc()
        return entry

    def record_trust(self, *, event: str, target: str = "",
                     job: Optional[str] = None,
                     detail: Optional[dict] = None) -> dict:
        """One trust-layer security event (schema 7).

        ``event`` is the decision (``tamper_detected``, ``stale_key``,
        ``replay_rejected``, ``stale_request``, ``key_rotation``,
        ``keys_replicated``); ``target`` names what it hit (``cache``,
        ``checkpoint``, a tenant, a frame kind).
        """
        entry = {
            "job": job or target or "trust",
            "kind": "trust",
            "event": event,
            "target": target,
        }
        if detail:
            entry.update(detail)
        self._append(entry)
        registry = default_registry()
        registry.counter(
            "trust_events_total", "Trust-layer events by kind.",
            labels={"event": event}).inc()
        if event == "tamper_detected":
            registry.counter(
                "trust_tamper_detected_total",
                "Artifacts whose bytes mismatched their signed manifest.",
                labels={"target": target or "unknown"}).inc()
        elif event in ("replay_rejected", "stale_request"):
            registry.counter(
                "trust_replay_rejected_total",
                "Requests rejected by the replay/freshness guard.",
                labels={"reason": (detail or {}).get("reason", event)}).inc()
        elif event == "stale_key":
            registry.counter(
                "trust_stale_key_rejections_total",
                "Requests rejected for stale/revoked/unknown keys.").inc()
        return entry

    def absorb(self, rows, worker: Optional[str] = None) -> None:
        """Merge pre-stamped journal rows (from a worker process) into
        this recorder.  Rows keep their own ``trace_id``/``span_id`` —
        they were recorded under the request's propagated span in the
        worker — and gain a ``worker`` attribution (schema 6)."""
        stamped = []
        with self._lock:
            for row in rows:
                row = dict(row)
                if worker is not None:
                    row.setdefault("worker", worker)
                self._jobs.append(row)
                stamped.append(row)
        self._notify(stamped)

    def _append(self, entry: dict) -> None:
        # Stamp the active repro.obs span (if any) so rows from every
        # layer of one request join on trace_id (schema 5).
        span = current_span()
        if span is not None:
            entry.setdefault("trace_id", span.trace_id)
            entry.setdefault("span_id", span.span_id)
        with self._lock:
            self._jobs.append(entry)
        self._notify((entry,))

    # ------------------------------------------------------------------ #

    @property
    def jobs(self) -> List[dict]:
        with self._lock:
            return list(self._jobs)

    def clear(self) -> None:
        with self._lock:
            self._jobs.clear()

    def document(self, cache_stats: Dict[str, int] = None) -> dict:
        """The merged trace document for the whole session so far."""
        return {
            "schema": TRACE_SCHEMA_VERSION,
            "created_unix": self.created_unix,
            "cache": dict(cache_stats or {}),
            "jobs": self.jobs,
        }

    def to_json(self, cache_stats: Dict[str, int] = None,
                indent: int = 2) -> str:
        return json.dumps(self.document(cache_stats), indent=indent,
                          sort_keys=False)
