"""Two-level artifact cache for compiled programs.

In-memory layer: an LRU keyed by content fingerprint (compiled bootstraps
run to ~1 GB of Python objects, so the default capacity is small).  All
public methods are thread-safe: ``run_batch`` worker threads and the
serving layer's shard pool hit one cache instance concurrently.

On-disk layer: one versioned pickle per fingerprint under ``cache_dir``.
Each file carries ``{"schema", "key", "compiled"}``; entries whose schema
version differs from the running code's (or whose key does not match the
filename, e.g. after a hash-algorithm change) are treated as misses and
deleted, so bumping :data:`~repro.runtime.fingerprint.CACHE_SCHEMA_VERSION`
invalidates every stale artifact without manual cleanup.

The disk layer is safe for concurrent *processes*, not just threads — a
:mod:`repro.cluster` deployment points every worker at one ``cache_dir``:

* artifact files are written to a temp file and ``os.replace``d, so a
  concurrent reader sees either the old artifact or the new one, never a
  torn pickle;
* the directory's ``index.json`` (key -> stored-at/size metadata, the
  cross-process listing used by :meth:`CompileCache.disk_entries`) is
  only ever updated under an advisory ``flock``
  (:class:`~repro.runtime.locking.FileLock` on ``.index.lock``), as is
  the multi-file delete of ``invalidate()``.

Integrity (:mod:`repro.trust`): every stored artifact is recorded in a
signed per-directory :class:`~repro.trust.manifest.ArtifactManifest`
(file-bytes sha256 + deterministic content digest), and every disk load
verifies the bytes against that manifest *before* unpickling.  A
recorded-but-mismatched file is tampering: it degrades to a cache miss,
the file moves to ``quarantine/`` as evidence, ``stats.tampered`` /
``stats.quarantined`` bump, and the ``on_tamper`` hook fires (the
session uses it to journal a ``kind: "trust"`` row and bump
``trust_tamper_detected_total``).  A file with *no* manifest row is
merely unrecorded — a concurrent writer may be mid-store (the manifest
row lands after the artifact file by contract) — and is treated as a
plain miss without quarantine; crucially it is still never unpickled,
so deleting the manifest cannot re-open the unpickle-untrusted-bytes
path it exists to close.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Tuple

from ..core.compiler import CompiledProgram
from ..trust.errors import TamperDetectedError
from ..trust.manifest import ArtifactManifest
from .fingerprint import CACHE_SCHEMA_VERSION
from .locking import FileLock

#: Name of the per-directory index of on-disk artifacts.
INDEX_FILENAME = "index.json"
#: Lock file guarding index read-modify-write cycles across processes.
INDEX_LOCK_FILENAME = ".index.lock"

#: Where a compile was served from (also the trace's ``cache`` field).
MISS = "miss"
MEMORY_HIT = "memory"
DISK_HIT = "disk"


@dataclass
class CacheStats:
    """Hit/miss counters for one cache instance."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    invalidated: int = 0  # on-disk entries dropped for schema/key mismatch
    tampered: int = 0     # manifest hash mismatches caught before unpickle
    quarantined: int = 0  # tampered files moved into quarantine/

    def as_dict(self) -> dict:
        return {f: getattr(self, f) for f in (
            "memory_hits", "disk_hits", "misses", "stores", "evictions",
            "invalidated", "tampered", "quarantined")}


@dataclass
class CompileCache:
    """LRU memory cache with an optional write-through disk layer."""

    capacity: Optional[int] = None   # None = unbounded memory cache
    cache_dir: Optional[Path] = None  # None = memory-only
    schema_version: Optional[int] = None
    stats: CacheStats = field(default_factory=CacheStats)
    trust_key: Optional[bytes] = None  # manifest signing key override
    #: Called with each TamperDetectedError after stats are bumped; the
    #: session points this at its trace recorder (kind:"trust" rows).
    on_tamper: Optional[object] = None

    def __post_init__(self):
        self._memory: "OrderedDict[str, CompiledProgram]" = OrderedDict()
        # Guards the OrderedDict and the stats counters: get/put/invalidate
        # are called concurrently from run_batch workers and serve shards.
        self._lock = threading.RLock()
        if self.schema_version is None:
            self.schema_version = CACHE_SCHEMA_VERSION
        self._index_lock: Optional[FileLock] = None
        self._manifest: Optional[ArtifactManifest] = None
        if self.cache_dir is not None:
            self.cache_dir = Path(self.cache_dir)
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            self._index_lock = FileLock(self.cache_dir / INDEX_LOCK_FILENAME)
            self._manifest = ArtifactManifest(
                self.cache_dir, key=self.trust_key, target="cache",
                on_tamper=self._note_tamper)

    # ------------------------------------------------------------------ #

    def get(self, key: str) -> Tuple[Optional[CompiledProgram], str]:
        """Look up ``key``; returns ``(compiled | None, source)`` where
        ``source`` is ``"memory"``, ``"disk"``, or ``"miss"``."""
        with self._lock:
            if key in self._memory:
                self._memory.move_to_end(key)
                self.stats.memory_hits += 1
                return self._memory[key], MEMORY_HIT
            compiled = self._disk_load(key)
            if compiled is not None:
                self.stats.disk_hits += 1
                self._remember(key, compiled)
                return compiled, DISK_HIT
            self.stats.misses += 1
            return None, MISS

    def put(self, key: str, compiled: CompiledProgram) -> None:
        with self._lock:
            self.stats.stores += 1
            self._remember(key, compiled)
            self._disk_store(key, compiled)

    def invalidate(self, key: Optional[str] = None) -> None:
        """Drop one entry (or everything, with no key) from both layers."""
        with self._lock:
            if key is None:
                self._memory.clear()
                if self.cache_dir is not None:
                    # Multi-file delete: exclude concurrent writers so a
                    # clear cannot interleave with a store and leave the
                    # index claiming artifacts the sweep just removed.
                    with self._index_lock:
                        for path in self.cache_dir.glob("*.pkl"):
                            path.unlink(missing_ok=True)
                        self._write_index({})
                        self._manifest.clear()
                return
            self._memory.pop(key, None)
            if self.cache_dir is not None:
                with self._index_lock:
                    self._path(key).unlink(missing_ok=True)
                    index = self._read_index()
                    if index.pop(key, None) is not None:
                        self._write_index(index)
                    self._manifest.forget(self._path(key).name)

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._memory or (
                self.cache_dir is not None and self._path(key).exists())

    # ------------------------------------------------------------------ #

    def _remember(self, key: str, compiled: CompiledProgram) -> None:
        self._memory[key] = compiled
        self._memory.move_to_end(key)
        while self.capacity is not None and len(self._memory) > self.capacity:
            self._memory.popitem(last=False)
            self.stats.evictions += 1

    def _path(self, key: str) -> Path:
        return self.cache_dir / f"{key}.pkl"

    def _note_tamper(self, error: TamperDetectedError) -> None:
        """Manifest tamper callback: count, then forward to the session
        (or server) hook that journals the ``kind:"trust"`` row."""
        self.stats.tampered += 1
        if self.on_tamper is not None:
            self.on_tamper(error)

    def _disk_load(self, key: str) -> Optional[CompiledProgram]:
        if self.cache_dir is None:
            return None
        path = self._path(key)
        if not path.exists():
            return None
        # The (file bytes, manifest row) pair is read under the same
        # cross-process flock every mutator holds, so a racing writer's
        # half-applied update can never masquerade as tampering.
        with self._index_lock:
            try:
                data = path.read_bytes()
            except OSError:
                return None
            # Verify-before-unpickle: untrusted bytes never reach pickle.
            try:
                recorded = self._manifest.verify_bytes(path.name, data)
            except TamperDetectedError:
                # _note_tamper already counted and reported; keep the
                # file as evidence (quarantine/), drop its index row, and
                # degrade to a miss.
                if self._manifest.quarantine(path.name,
                                             path=path) is not None:
                    self.stats.quarantined += 1
                index = self._read_index()
                if index.pop(key, None) is not None:
                    self._write_index(index)
                return None
        if not recorded:
            # No manifest row: a concurrent writer mid-store, or a
            # pre-trust cache directory.  Not tampering — but also not
            # verifiable, so it stays a plain miss.
            return None
        try:
            payload = pickle.loads(data)
        except Exception:
            payload = None
        if (not isinstance(payload, dict)
                or payload.get("schema") != self.schema_version
                or payload.get("key") != key):
            self.stats.invalidated += 1
            with self._index_lock:
                path.unlink(missing_ok=True)
                index = self._read_index()
                if index.pop(key, None) is not None:
                    self._write_index(index)
            self._manifest.forget(path.name)
            return None
        return payload["compiled"]

    def _disk_store(self, key: str, compiled: CompiledProgram) -> None:
        if self.cache_dir is None:
            return
        payload = {
            "schema": self.schema_version,
            "key": key,
            "compiled": compiled,
        }
        data = pickle.dumps(payload, pickle.HIGHEST_PROTOCOL)
        from ..trust.rebuild import artifact_digest

        digest = artifact_digest(compiled)
        # Write-then-rename so concurrent readers never see a torn pickle.
        fd, tmp = tempfile.mkstemp(dir=self.cache_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
        except Exception:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        # Rename + manifest row + index row commit as one unit under the
        # cross-process flock: two workers racing on the same key must
        # never leave worker A's file paired with worker B's manifest
        # row (a reader would see that as tampering), and workers on
        # different keys must not lose each other's index rows to a
        # last-writer-wins overwrite.  The artifact file still lands
        # before its manifest row (the write-ordering contract).
        with self._index_lock:
            os.replace(tmp, self._path(key))
            self._manifest.record(
                self._path(key).name,
                sha256=hashlib.sha256(data).hexdigest(),
                digest=digest, size=len(data))
            index = self._read_index()
            index[key] = {
                "schema": self.schema_version,
                "size": len(data),
                "stored_unix": time.time(),
            }
            self._write_index(index)

    @property
    def manifest(self) -> Optional[ArtifactManifest]:
        """The signed artifact manifest (None for memory-only caches)."""
        return self._manifest

    # ------------------------------------------------------------------ #
    # Cross-process index

    def disk_entries(self) -> dict:
        """The on-disk index: key -> {schema, size, stored_unix}.

        A cross-process view — entries written by *other* processes
        sharing this ``cache_dir`` are visible here without having been
        loaded into this instance's memory layer.
        """
        if self.cache_dir is None:
            return {}
        with self._index_lock:
            return self._read_index()

    def _index_path(self) -> Path:
        return self.cache_dir / INDEX_FILENAME

    def _read_index(self) -> dict:
        """Load the index (caller holds the index flock).  A missing or
        corrupt index is an empty one — artifact files remain loadable
        either way; the index is metadata, not a source of truth."""
        try:
            doc = json.loads(self._index_path().read_text())
        except (OSError, ValueError):
            return {}
        entries = doc.get("entries") if isinstance(doc, dict) else None
        return dict(entries) if isinstance(entries, dict) else {}

    def _write_index(self, entries: dict) -> None:
        """Atomically replace the index (caller holds the index flock)."""
        doc = {"schema": self.schema_version, "entries": entries}
        fd, tmp = tempfile.mkstemp(dir=self.cache_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(doc, handle, sort_keys=True)
            os.replace(tmp, self._index_path())
        except Exception:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
