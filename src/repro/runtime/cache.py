"""Two-level artifact cache for compiled programs.

In-memory layer: an LRU keyed by content fingerprint (compiled bootstraps
run to ~1 GB of Python objects, so the default capacity is small).  All
public methods are thread-safe: ``run_batch`` worker threads and the
serving layer's shard pool hit one cache instance concurrently.

On-disk layer: one versioned pickle per fingerprint under ``cache_dir``.
Each file carries ``{"schema", "key", "compiled"}``; entries whose schema
version differs from the running code's (or whose key does not match the
filename, e.g. after a hash-algorithm change) are treated as misses and
deleted, so bumping :data:`~repro.runtime.fingerprint.CACHE_SCHEMA_VERSION`
invalidates every stale artifact without manual cleanup.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Tuple

from ..core.compiler import CompiledProgram
from .fingerprint import CACHE_SCHEMA_VERSION

#: Where a compile was served from (also the trace's ``cache`` field).
MISS = "miss"
MEMORY_HIT = "memory"
DISK_HIT = "disk"


@dataclass
class CacheStats:
    """Hit/miss counters for one cache instance."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    invalidated: int = 0  # on-disk entries dropped for schema/key mismatch

    def as_dict(self) -> dict:
        return {f: getattr(self, f) for f in (
            "memory_hits", "disk_hits", "misses", "stores", "evictions",
            "invalidated")}


@dataclass
class CompileCache:
    """LRU memory cache with an optional write-through disk layer."""

    capacity: Optional[int] = None   # None = unbounded memory cache
    cache_dir: Optional[Path] = None  # None = memory-only
    schema_version: Optional[int] = None
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self):
        self._memory: "OrderedDict[str, CompiledProgram]" = OrderedDict()
        # Guards the OrderedDict and the stats counters: get/put/invalidate
        # are called concurrently from run_batch workers and serve shards.
        self._lock = threading.RLock()
        if self.schema_version is None:
            self.schema_version = CACHE_SCHEMA_VERSION
        if self.cache_dir is not None:
            self.cache_dir = Path(self.cache_dir)
            self.cache_dir.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------ #

    def get(self, key: str) -> Tuple[Optional[CompiledProgram], str]:
        """Look up ``key``; returns ``(compiled | None, source)`` where
        ``source`` is ``"memory"``, ``"disk"``, or ``"miss"``."""
        with self._lock:
            if key in self._memory:
                self._memory.move_to_end(key)
                self.stats.memory_hits += 1
                return self._memory[key], MEMORY_HIT
            compiled = self._disk_load(key)
            if compiled is not None:
                self.stats.disk_hits += 1
                self._remember(key, compiled)
                return compiled, DISK_HIT
            self.stats.misses += 1
            return None, MISS

    def put(self, key: str, compiled: CompiledProgram) -> None:
        with self._lock:
            self.stats.stores += 1
            self._remember(key, compiled)
            self._disk_store(key, compiled)

    def invalidate(self, key: Optional[str] = None) -> None:
        """Drop one entry (or everything, with no key) from both layers."""
        with self._lock:
            if key is None:
                self._memory.clear()
                if self.cache_dir is not None:
                    for path in self.cache_dir.glob("*.pkl"):
                        path.unlink(missing_ok=True)
                return
            self._memory.pop(key, None)
            if self.cache_dir is not None:
                self._path(key).unlink(missing_ok=True)

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._memory or (
                self.cache_dir is not None and self._path(key).exists())

    # ------------------------------------------------------------------ #

    def _remember(self, key: str, compiled: CompiledProgram) -> None:
        self._memory[key] = compiled
        self._memory.move_to_end(key)
        while self.capacity is not None and len(self._memory) > self.capacity:
            self._memory.popitem(last=False)
            self.stats.evictions += 1

    def _path(self, key: str) -> Path:
        return self.cache_dir / f"{key}.pkl"

    def _disk_load(self, key: str) -> Optional[CompiledProgram]:
        if self.cache_dir is None:
            return None
        path = self._path(key)
        if not path.exists():
            return None
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
        except Exception:
            payload = None
        if (not isinstance(payload, dict)
                or payload.get("schema") != self.schema_version
                or payload.get("key") != key):
            self.stats.invalidated += 1
            path.unlink(missing_ok=True)
            return None
        return payload["compiled"]

    def _disk_store(self, key: str, compiled: CompiledProgram) -> None:
        if self.cache_dir is None:
            return
        payload = {
            "schema": self.schema_version,
            "key": key,
            "compiled": compiled,
        }
        # Write-then-rename so concurrent readers never see a torn pickle.
        fd, tmp = tempfile.mkstemp(dir=self.cache_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(payload, handle, pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, self._path(key))
        except Exception:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
