"""Content hashing of ``(program, params, options)`` compile requests.

The runtime cache is *content*-addressed: two structurally identical
:class:`CinnamonProgram` DAGs hash the same regardless of object identity,
so rebuilding a workload generator and recompiling is a cache hit.  The
fingerprint covers everything that can change the emitted ISA:

* the full ciphertext-level DAG (opcodes, operand edges, levels, streams,
  attrs) plus input/output/plaintext bindings and stream count;
* the parameter set (CKKS prime chain or architectural shape);
* every :class:`CompilerOptions` field (machine layout, keyswitch policy,
  register file size, bootstrap plan, optimization switches);
* ``emit_isa`` and the cache schema version.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import fields, is_dataclass

from ..core.compiler import CompilerOptions
from ..core.dsl.program import CinnamonProgram

#: Bump whenever the pickled artifact layout or the meaning of the
#: fingerprint changes; on-disk entries written under a different version
#: are ignored (and lazily rewritten).
#: 2: the trust layer (repro.trust) — disk loads verify against the
#:    signed MANIFEST.json before unpickling, so pre-trust cache
#:    directories (no manifest rows) must re-compile, not half-load.
CACHE_SCHEMA_VERSION = 2


def _canonical(value):
    """Reduce ``value`` to JSON-serializable canonical form."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    if is_dataclass(value) and not isinstance(value, type):
        return {
            "__dataclass__": type(value).__name__,
            **{f.name: _canonical(getattr(value, f.name))
               for f in fields(value)},
        }
    # Last resort: repr.  Frozen dataclasses and numbers never reach this.
    return {"__repr__": repr(value), "__type__": type(value).__name__}


def program_signature(program: CinnamonProgram) -> dict:
    """Canonical structural description of a captured program."""
    return {
        "name": program.name,
        "input_level": program.input_level,
        "bootstrap_output_level": program.bootstrap_output_level,
        "auto_bootstrap": program.auto_bootstrap,
        "num_streams": program.num_streams,
        "inputs": _canonical(program.inputs),
        "outputs": _canonical(program.outputs),
        "plaintexts": _canonical(program.plaintexts),
        "ops": [
            [op.id, op.opcode, list(op.inputs), op.level, op.stream,
             _canonical(op.attrs)]
            for op in program.ops
        ],
    }


def options_signature(options: CompilerOptions) -> dict:
    """Canonical description of compiler options (plan by value)."""
    return _canonical(options)


def params_signature(params) -> dict:
    """Canonical description of CKKS/arch parameters."""
    sig = _canonical(params)
    if isinstance(sig, dict):
        sig.setdefault("__type__", type(params).__name__)
    return {"type": type(params).__name__, "value": sig}


def fingerprint(program: CinnamonProgram, params,
                options: CompilerOptions, emit_isa: bool = True,
                schema_version: int = None) -> str:
    """SHA-256 content hash of one compile request (hex digest)."""
    payload = {
        "schema": (CACHE_SCHEMA_VERSION if schema_version is None
                   else schema_version),
        "program": program_signature(program),
        "params": params_signature(params),
        "options": options_signature(options),
        "emit_isa": bool(emit_isa),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()
