"""The cached, instrumented compile-and-run session.

:class:`CinnamonSession` is the runtime entry point the ROADMAP's serving
work builds on: it content-hashes every ``(program, params, options)``
compile request, serves repeats from an in-memory LRU (optionally backed
by on-disk versioned pickles), memoizes simulation results per machine,
runs batches of independent jobs on a ``concurrent.futures`` worker pool,
and records a structured JSON trace of everything it did — per-pass
compile timings on misses, per-FU/HBM/network utilization per simulation.

    session = CinnamonSession(cache_dir=".cinnamon-cache")
    compiled = session.compile(program, params, machine="cinnamon_4")
    result = session.simulate(compiled, "cinnamon_4")
    session.export_trace("trace.json")

The module-level :func:`default_session` powers the :func:`repro.compile`
facade, so even one-liner users get in-memory caching for free.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.compiler import (
    CompiledProgram,
    CompilerDriver,
    CompilerOptions,
)
from ..core.dsl.program import CinnamonProgram
from ..obs.tracing import NULL_SPAN, Span, tracer
from ..sim.config import MachineConfig, resolve_machine
from ..sim.simulator import SimulationResult, SimulatorEngine
from .cache import MEMORY_HIT, MISS, CacheStats, CompileCache
from .fingerprint import fingerprint
from .trace import TraceRecorder


@dataclass
class CompileJob:
    """One unit of batch work for :meth:`CinnamonSession.run_batch`.

    ``machine`` drives the compile layout; ``sim_machine`` (defaulting to
    ``machine``) is what the result is simulated on when ``simulate`` is
    set.  ``name`` labels the job in the merged trace.
    """

    program: CinnamonProgram
    params: object
    machine: object = None
    options: Optional[CompilerOptions] = None
    emit_isa: bool = True
    simulate: bool = True
    sim_machine: object = None
    tag: str = ""
    name: Optional[str] = None
    #: Machine faults to inject into the simulation (uncached when set).
    fault_schedule: object = None
    #: Wall-clock budget for this job's simulation (overrides the
    #: session-wide watchdog).
    watchdog_s: Optional[float] = None
    #: Simulated-cycle cap: stop the simulation at this frontier and
    #: return a truncated result (the autotuner's low-fidelity rungs).
    max_cycles: Optional[int] = None
    #: Parent :class:`repro.obs.tracing.Span` to execute under.  The
    #: batch pool runs jobs on worker threads where ``contextvars`` do
    #: not follow; the span rides the job across the boundary and is
    #: re-activated inside :meth:`CinnamonSession.run`.
    span: object = None

    @property
    def label(self) -> str:
        return self.name or self.program.name


@dataclass
class JobResult:
    """What one batch job produced."""

    job: str
    key: str
    cache: str                      # where the compile came from
    compiled: CompiledProgram
    result: Optional[SimulationResult] = None


def resolve_request_options(machine, options: Optional[CompilerOptions],
                            overrides: Optional[dict] = None
                            ) -> CompilerOptions:
    """Merge ``machine``/``overrides`` into :class:`CompilerOptions`.

    Module-level so the serving layer can fingerprint a request *before*
    it reaches a session and be guaranteed the same cache key the session
    will compute when it executes the job.
    """
    overrides = dict(overrides or {})
    if options is None:
        if machine is not None:
            overrides["machine"] = machine
        return CompilerOptions(**overrides)
    if machine is not None:
        overrides["machine"] = machine
    return replace(options, **overrides) if overrides else options


def _add_pass_spans(parent, compile_stats, build_started: float) -> None:
    """Synthesize one child span per compiler pass under ``parent``.

    The compiler pipeline is not span-aware; its :class:`CompileStats`
    already carries exact per-pass wall times, so the spans are rebuilt
    from those timings laid end to end from the moment the driver
    started (passes run sequentially, so the offsets are exact).
    """
    tr = tracer()
    if parent is NULL_SPAN or not tr.enabled or compile_stats is None:
        return
    offset = build_started
    for timing in compile_stats.passes:
        child = Span(f"pass:{timing.name}", kind="pass",
                     trace_id=parent.trace_id, parent_id=parent.span_id,
                     start_s=offset,
                     attrs={"seconds": timing.seconds})
        child.finish(offset + timing.seconds)
        tr.add_span(child)
        offset += timing.seconds


class CinnamonSession:
    """Cached + instrumented facade over the compiler and simulator.

    ``capacity`` bounds the in-memory LRU (``None`` = unbounded; compiled
    bootstraps are ~1 GB each, so long-lived sessions should bound it);
    ``cache_dir`` enables the on-disk layer; ``max_workers`` sizes the
    default batch worker pool.
    """

    def __init__(self, cache_dir=None, capacity: Optional[int] = None,
                 max_workers: Optional[int] = None,
                 schema_version: Optional[int] = None,
                 watchdog_s: Optional[float] = None):
        self._cache = CompileCache(capacity=capacity, cache_dir=cache_dir,
                                   schema_version=schema_version)
        self._sim_cache: Dict[Tuple, SimulationResult] = {}
        #: Memoized per-FU timelines (repro.obs): keyed like the sim
        #: cache, so a cache-hit simulation can still attach the exact
        #: functional-unit occupancy timeline to its span.
        self._fu_timelines: Dict[Tuple, list] = {}
        self._recorder = TraceRecorder()
        # Disk-cache tamper detections journal a kind:"trust" row (and
        # bump trust_tamper_detected_total) through this session.
        self._cache.on_tamper = self._record_tamper
        self._lock = threading.Lock()
        self._inflight: Dict[str, threading.Event] = {}
        self.max_workers = max_workers
        self.schema_version = self._cache.schema_version
        #: Default wall-clock budget per simulation; a hung run raises
        #: :class:`repro.resilience.WatchdogTimeout` instead of wedging
        #: the worker thread.
        self.watchdog_s = watchdog_s

    def _record_tamper(self, error) -> None:
        """Cache on_tamper hook: one journal row + counter per detection."""
        self._recorder.record_trust(
            event="tamper_detected", target=error.target,
            detail={"name": error.name})

    # ------------------------------------------------------------------ #
    # Compilation

    def _resolve_options(self, machine, options: Optional[CompilerOptions],
                         overrides: dict) -> CompilerOptions:
        return resolve_request_options(machine, options, overrides)

    def compile(self, program: CinnamonProgram, params, machine=None,
                options: CompilerOptions = None, emit_isa: bool = True,
                job: str = None, **overrides) -> CompiledProgram:
        """Compile ``program`` (cached by content) and trace the call.

        ``machine``/``**overrides`` build or refine the
        :class:`CompilerOptions`; an explicit ``options`` wins for fields
        not overridden.  Returns the cached artifact when an identical
        request (same program structure, params, options, schema version)
        was compiled before — by this session or, with ``cache_dir``, by
        any previous process sharing the directory.
        """
        compiled, _entry = self._compile(program, params, machine, options,
                                         emit_isa, job, overrides)
        return compiled

    def _compile(self, program, params, machine, options, emit_isa, job,
                 overrides) -> Tuple[CompiledProgram, dict]:
        opts = self._resolve_options(machine, options, overrides)
        key = fingerprint(program, params, opts, emit_isa,
                          schema_version=self.schema_version)
        label = job or program.name
        tr = tracer()
        with tr.start_span(f"compile:{label}", kind="compile",
                           attrs={"key": key}) as span:
            started = time.perf_counter()
            while True:
                with tr.start_span("cache-lookup", kind="cache") as lookup:
                    with self._lock:
                        compiled, source = self._cache.get(key)
                        if compiled is None and key not in self._inflight:
                            self._inflight[key] = threading.Event()
                            lookup.set_attr("outcome", MISS)
                            break
                        waiter = self._inflight.get(key)
                    lookup.set_attr("outcome", source if compiled is not None
                                    else "inflight-wait")
                if compiled is not None:
                    compiled.cache_key = key
                    span.set_attr("cache", source)
                    entry = self._recorder.record_compile(
                        job=label, key=key, cache=source,
                        seconds=time.perf_counter() - started,
                        compile_stats=None)
                    return compiled, entry
                # Another thread is compiling the same key: wait, then retry.
                waiter.wait()

            build_started = time.perf_counter()
            try:
                compiled = CompilerDriver(params, opts).compile(
                    program, emit_isa=emit_isa)
                compiled.cache_key = key
                with self._lock:
                    self._cache.put(key, compiled)
            finally:
                with self._lock:
                    self._inflight.pop(key).set()
            span.set_attr("cache", MISS)
            _add_pass_spans(span, compiled.compile_stats, build_started)
            entry = self._recorder.record_compile(
                job=label, key=key, cache=MISS,
                seconds=time.perf_counter() - started,
                compile_stats=compiled.compile_stats.as_dict())
            return compiled, entry

    # ------------------------------------------------------------------ #
    # Simulation

    def simulate(self, compiled: CompiledProgram, machine=None,
                 tag: str = "", job: str = None, *,
                 fault_schedule=None, checkpoint_interval: int = None,
                 checkpoint_hook=None, resume_from=None,
                 watchdog_s: Optional[float] = None,
                 max_cycles: Optional[int] = None) -> SimulationResult:
        """Cycle-simulate ``compiled`` on ``machine``, memoized per
        (artifact, machine, tag).

        The keyword-only arguments thread the fault-tolerance machinery
        (:mod:`repro.resilience`) through the session: ``fault_schedule``
        injects machine faults, ``checkpoint_interval``/``checkpoint_hook``
        stream :class:`~repro.sim.simulator.SimulationSnapshot` objects
        out mid-run, ``resume_from`` restarts from such a snapshot, and
        ``watchdog_s`` (defaulting to the session-wide budget) bounds the
        wall time.  Only clean, from-scratch runs hit the memo cache —
        faulted or resumed simulations are never cached, because their
        result depends on state outside the cache key.

        ``max_cycles`` caps the simulated cycle frontier: the run stops
        there and returns a ``truncated=True`` partial result.  Truncated
        runs are deterministic, so they memoize like clean runs (the cap
        is part of the memo key).
        """
        resolved = resolve_machine(
            machine if machine is not None
            else (compiled.options.machine or compiled.options.num_chips))
        token = compiled.cache_key or id(compiled)
        key = (token, resolved.name, repr(resolved.chip), tag, max_cycles)
        label = job or compiled.name
        deadline = watchdog_s if watchdog_s is not None else self.watchdog_s
        perturbed = (bool(fault_schedule) or resume_from is not None
                     or checkpoint_hook is not None
                     or checkpoint_interval is not None)
        with tracer().start_span(
                f"simulate:{label}", kind="simulate",
                attrs={"machine": resolved.name, "tag": tag}) as span:
            started = time.perf_counter()
            if not perturbed:
                with self._lock:
                    result = self._sim_cache.get(key)
                if result is not None:
                    # Memo hits keep their simulate span (joins the
                    # trace) but no FU timeline: re-attaching the same
                    # lanes to every hit would bloat exports N-fold.
                    span.set_attr("cache", MEMORY_HIT)
                    span.set_attr("cycles", result.cycles)
                    self._recorder.record_simulate(
                        job=label, machine=resolved.name, tag=tag,
                        cache=MEMORY_HIT,
                        seconds=time.perf_counter() - started,
                        result=None)
                    return result
            try:
                result = SimulatorEngine(resolved).run(
                    compiled.isa, fault_schedule=fault_schedule,
                    checkpoint_interval=checkpoint_interval,
                    checkpoint_hook=checkpoint_hook, resume_from=resume_from,
                    deadline_s=deadline, max_cycles=max_cycles)
            except Exception as exc:
                self._recorder.record_simulate(
                    job=label, machine=resolved.name, tag=tag, cache=MISS,
                    seconds=time.perf_counter() - started, result=None,
                    error=f"{type(exc).__name__}: {exc}")
                raise
            if not perturbed:
                with self._lock:
                    self._sim_cache[key] = result
            span.set_attr("cache", MISS)
            span.set_attr("cycles", result.cycles)
            self._attach_fu_timeline(span, compiled, resolved, key, result,
                                     perturbed)
            self._recorder.record_simulate(
                job=label, machine=resolved.name, tag=tag, cache=MISS,
                seconds=time.perf_counter() - started,
                result=result.as_dict())
            return result

    #: Cap on per-chip events captured into a span's FU timeline and on
    #: memoized timelines kept alive (each entry is a list of small
    #: dataclasses; 64 artifacts bound the obs overhead).  The per-chip
    #: cap keeps one merged Chrome trace of a whole loadgen run in the
    #: tens of megabytes, not hundreds.
    FU_TIMELINE_LIMIT_PER_CHIP = 2500
    FU_TIMELINE_CACHE_ENTRIES = 64

    def _attach_fu_timeline(self, span, compiled, resolved, key, result,
                            perturbed: bool) -> None:
        """Capture the per-functional-unit cycle timeline onto a fresh
        ``simulate`` span (only when ``repro.obs`` tracing is enabled
        with timeline capture on).  The timeline is derived by
        :class:`~repro.sim.trace.TracingSimulator` from the same ISA +
        machine the engine just ran."""
        tr = tracer()
        if span is NULL_SPAN or not (tr.enabled and tr.capture_fu_timeline):
            return
        if getattr(compiled, "isa", None) is None or perturbed:
            return
        with self._lock:
            events = self._fu_timelines.get(key)
        if events is None:
            from ..sim.trace import TracingSimulator

            events = TracingSimulator(resolved).timeline(
                compiled.isa,
                limit_per_chip=self.FU_TIMELINE_LIMIT_PER_CHIP)
            with self._lock:
                if len(self._fu_timelines) < self.FU_TIMELINE_CACHE_ENTRIES:
                    self._fu_timelines[key] = events
        span.sim_events = events
        span.sim_cycles = max(1, result.cycles)

    def record_recovery(self, **kwargs) -> dict:
        """Append a machine-level recovery event to the run trace (see
        :meth:`repro.runtime.trace.TraceRecorder.record_recovery`)."""
        return self._recorder.record_recovery(**kwargs)

    def record_trust(self, **kwargs) -> dict:
        """Append a trust event (tamper/replay/stale-key) to the run
        trace (see :meth:`repro.runtime.trace.TraceRecorder.record_trust`)."""
        return self._recorder.record_trust(**kwargs)

    def record_tune(self, **kwargs) -> dict:
        """Append an autotuning run to the run trace (see
        :meth:`repro.runtime.trace.TraceRecorder.record_tune`)."""
        return self._recorder.record_tune(**kwargs)

    # ------------------------------------------------------------------ #
    # Batch execution

    def run(self, job: CompileJob) -> JobResult:
        """Compile (and optionally simulate) one job.

        When the job carries a :mod:`repro.obs` span, it is re-activated
        here so the compile/simulate child spans (and their journal
        rows) join the originating request's trace even though this runs
        on a worker-pool thread.
        """
        with tracer().use_span(job.span):
            compiled, entry = self._compile(
                job.program, job.params, job.machine, job.options,
                job.emit_isa, job.label, {})
            result = None
            if job.simulate and job.emit_isa:
                result = self.simulate(
                    compiled, job.sim_machine or job.machine, tag=job.tag,
                    job=job.label, fault_schedule=job.fault_schedule,
                    watchdog_s=job.watchdog_s, max_cycles=job.max_cycles)
            return JobResult(job=job.label, key=compiled.cache_key,
                             cache=entry["cache"], compiled=compiled,
                             result=result)

    def run_batch(self, jobs: Sequence[CompileJob],
                  max_workers: int = None) -> List[JobResult]:
        """Run independent jobs concurrently on a worker pool.

        Results come back in input order.  Identical in-flight compile
        requests are coalesced (the second worker waits for the first's
        artifact instead of recompiling).
        """
        jobs = list(jobs)
        if not jobs:
            return []
        workers = max_workers or self.max_workers or min(4, len(jobs))
        if workers <= 1:
            return [self.run(job) for job in jobs]
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(self.run, jobs))

    # ------------------------------------------------------------------ #
    # Observability + cache management

    @property
    def cache_stats(self) -> CacheStats:
        return self._cache.stats

    def trace(self) -> dict:
        """The merged trace document (all jobs so far)."""
        return self._recorder.document(self._cache.stats.as_dict())

    def trace_json(self, indent: int = 2) -> str:
        return self._recorder.to_json(self._cache.stats.as_dict(),
                                      indent=indent)

    def export_trace(self, path) -> Path:
        """Write the merged trace JSON to ``path``; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.trace_json())
        return path

    def clear_trace(self) -> None:
        self._recorder.clear()

    def invalidate(self, key: Optional[str] = None) -> None:
        """Drop one compile artifact (or all of them) plus stale sims."""
        with self._lock:
            self._cache.invalidate(key)
            if key is None:
                self._sim_cache.clear()
            else:
                self._sim_cache = {
                    k: v for k, v in self._sim_cache.items() if k[0] != key
                }


# ---------------------------------------------------------------------- #
# The default session behind `repro.compile()`.

_DEFAULT_SESSION: Optional[CinnamonSession] = None
_DEFAULT_LOCK = threading.Lock()

#: Memory budget of the implicit facade session: enough for a couple of
#: bootstrap-sized artifacts without letting a long process grow unbounded.
_DEFAULT_CAPACITY = 4


def default_session() -> CinnamonSession:
    """The process-wide session used by :func:`repro.compile`."""
    global _DEFAULT_SESSION
    with _DEFAULT_LOCK:
        if _DEFAULT_SESSION is None:
            _DEFAULT_SESSION = CinnamonSession(capacity=_DEFAULT_CAPACITY)
        return _DEFAULT_SESSION


def compile_program(program: CinnamonProgram, params, machine=None,
                    session: CinnamonSession = None, tune=None,
                    **options) -> CompiledProgram:
    """Implementation of the :func:`repro.compile` facade.

    ``tune`` consults the persisted :class:`~repro.tune.TuningDB`:
    ``"db"``/``True`` applies an existing tuned config when one matches
    this (program, params, machine) and falls through otherwise;
    ``"quick"``/``"full"`` additionally run a budget-8/32 successive-
    halving search on a DB miss before compiling with the winner.
    """
    sess = session or default_session()
    if tune:
        from ..tune import apply_tuning  # lazy: tune imports this module

        explicit = options.pop("options", None)
        overrides = {k: v for k, v in options.items()
                     if k not in ("emit_isa", "job")}
        base = sess._resolve_options(machine, explicit, overrides)
        tuned = apply_tuning(program, params, machine, base, tune,
                             session=sess)
        if tuned is not None:
            passthrough = {k: options[k] for k in ("emit_isa", "job")
                           if k in options}
            return sess.compile(program, params, options=tuned,
                                **passthrough)
        options = dict(options)
        if explicit is not None:
            options["options"] = explicit
    return sess.compile(program, params, machine=machine, **options)
