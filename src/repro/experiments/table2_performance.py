"""Table 2: execution time of all four benchmarks on every configuration.

Bootstrap is cycle-simulated directly; ResNet-20, HELR, and BERT compose
per-kernel simulations through :class:`repro.workloads.compose
.WorkloadTimer` (DESIGN.md section 7).  Reported numbers for CraterLake /
CiFHER / ARK / the 48-core CPU come from the paper verbatim (they are the
comparison's constants, exactly as in the original evaluation).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict

from ..sim.config import CINNAMON_4, CINNAMON_8, CINNAMON_12, CINNAMON_M
from ..workloads import baselines, bert_schedule, helr_schedule, \
    resnet20_schedule
from .common import compile_bootstrap, simulate, workload_timer

MACHINES = {
    "Cinnamon-M": CINNAMON_M,
    "Cinnamon-4": CINNAMON_4,
    "Cinnamon-8": CINNAMON_8,
    "Cinnamon-12": CINNAMON_12,
}

BASELINE_SYSTEMS = ("CraterLake", "CiFHER", "ARK", "CPU")


def _bootstrap_seconds(machine_name: str) -> float:
    machine = MACHINES[machine_name]
    if machine.num_chips == 1:
        compiled = compile_bootstrap(1, registers_per_chip=machine.chip.registers)
        return simulate(compiled, machine).seconds
    # Table 2 reports single-bootstrap latency: limb-level parallelism
    # spread across the whole machine (the same semantics as Figure 14),
    # which is what yields the paper's modest 8/12-chip gains.
    compiled = compile_bootstrap(machine.num_chips)
    return simulate(compiled, machine).seconds


@lru_cache(maxsize=None)
def _workload_estimates(fast: bool):
    timer = workload_timer()
    schedules = [resnet20_schedule(), helr_schedule()]
    if not fast:
        schedules.append(bert_schedule())
    else:
        schedules.append(bert_schedule(num_layers=12))  # schedule is cheap;
        # the kernels are shared with bootstrap/matmul caches anyway.
    out = {}
    for schedule in schedules:
        for name, machine in MACHINES.items():
            est = timer.estimate(schedule, machine)
            out[(schedule.name, name)] = est
    return out


def run(fast: bool = True) -> Dict[str, Dict[str, float]]:
    """Returns ``{benchmark: {system: seconds}}`` (None = not reported)."""
    table: Dict[str, Dict[str, float]] = {}
    bootstrap_row = {}
    for name in MACHINES:
        bootstrap_row[name] = _bootstrap_seconds(name)
    for system in BASELINE_SYSTEMS:
        bootstrap_row[system] = baselines.reported_seconds("bootstrap", system)
    table["bootstrap"] = bootstrap_row

    estimates = _workload_estimates(fast)
    for benchmark in ("resnet20", "helr", "bert-base-128"):
        row = {}
        for name in MACHINES:
            row[name] = estimates[(benchmark, name)].seconds
        for system in BASELINE_SYSTEMS:
            row[system] = baselines.reported_seconds(benchmark, system)
        table[benchmark] = row
    return table


def utilization_data(fast: bool = True) -> Dict[str, Dict[str, float]]:
    """Per-benchmark utilization on Cinnamon-4 plus BERT on 8/12 (Fig 15)."""
    estimates = _workload_estimates(fast)
    out = {}
    boot = simulate(compile_bootstrap(4), MACHINES["Cinnamon-4"])
    out["bootstrap/Cinnamon-4"] = boot.utilization()
    for benchmark in ("resnet20", "helr", "bert-base-128"):
        out[f"{benchmark}/Cinnamon-4"] = \
            estimates[(benchmark, "Cinnamon-4")].utilization()
    for machine in ("Cinnamon-8", "Cinnamon-12"):
        out[f"bert-base-128/{machine}"] = \
            estimates[("bert-base-128", machine)].utilization()
    return out


def format_result(table: Dict[str, Dict[str, float]]) -> str:
    systems = list(MACHINES) + list(BASELINE_SYSTEMS)
    lines = ["Table 2: execution time (ms; CPU column in seconds)", ""]
    lines.append(f"{'benchmark':14s}" + "".join(f"{s:>13s}" for s in systems))
    for benchmark, row in table.items():
        cells = []
        for system in systems:
            value = row.get(system)
            if value is None:
                cells.append(f"{'-':>13s}")
            elif system == "CPU":
                cells.append(f"{value:>12.1f}s")
            else:
                cells.append(f"{value * 1e3:>12.2f} ")
        lines.append(f"{benchmark:14s}" + "".join(cells))
    return "\n".join(lines)
