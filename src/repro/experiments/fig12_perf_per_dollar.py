"""Figure 12: relative performance-per-dollar.

Combines Table 2 execution times with Table 3 yield-normalized tape-out
costs.  The paper's headline: Cinnamon-4 delivers ~5x the perf-per-dollar
of monolithic designs (CraterLake) and ~2.7x of chiplet designs (CiFHER)
on bootstrap and the small models; for BERT every Cinnamon configuration
beats the monolithic Cinnamon-M.
"""

from __future__ import annotations

from typing import Dict

from ..arch.cost import performance_per_dollar
from ..arch.yield_model import TABLE3_TAPEOUT_COST
from . import table2_performance

# System -> (cost key in Table 3, system cost multiplier).  Cinnamon-8/12
# deploy 2x/3x the silicon of the 4-chip baseline system.
COST_KEY = {
    "Cinnamon-M": ("Cinnamon-M", 1.0),
    "Cinnamon-4": ("Cinnamon", 1.0),
    "Cinnamon-8": ("Cinnamon", 2.0),
    "Cinnamon-12": ("Cinnamon", 3.0),
    "CraterLake": ("CraterLake", 1.0),
    "CiFHER": ("CiFHER", 1.0),
    "ARK": ("ARK", 1.0),
}


def run(fast: bool = True) -> Dict[str, Dict[str, float]]:
    table = table2_performance.run(fast=fast)
    out: Dict[str, Dict[str, float]] = {}
    for benchmark, row in table.items():
        times = {
            system: seconds
            for system, seconds in row.items()
            if system in COST_KEY and seconds is not None
        }
        costs = {
            system: TABLE3_TAPEOUT_COST[COST_KEY[system][0]]
            * COST_KEY[system][1]
            for system in times
        }
        baseline = "CraterLake" if "CraterLake" in times else "Cinnamon-M"
        out[benchmark] = performance_per_dollar(times, costs, baseline)
    return out


def format_result(result: Dict[str, Dict[str, float]]) -> str:
    lines = ["Figure 12: relative performance-per-dollar", ""]
    for benchmark, row in result.items():
        lines.append(benchmark)
        for system, rel in sorted(row.items(), key=lambda kv: -kv[1]):
            lines.append(f"  {system:12s} {rel:>8.2f}x")
    return "\n".join(lines)
