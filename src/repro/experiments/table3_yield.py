"""Table 3: manufacturing yield and tape-out cost of FHE architectures."""

from __future__ import annotations

from typing import Dict

from ..arch.yield_model import ACCELERATOR_DIES, TABLE3_TAPEOUT_COST, YieldModel

# Published yield column for shape comparison.
PAPER_YIELD_PCT = {
    "ARK": 48.0,
    "CiFHER": 90.0,
    "CraterLake": 44.0,
    "Cinnamon-M": 31.0,
    "Cinnamon": 66.0,
}


def run(fast: bool = True) -> Dict[str, dict]:
    table = YieldModel().table()
    for name, row in table.items():
        row["tapeout_cost"] = TABLE3_TAPEOUT_COST[name]
        row["paper_yield_pct"] = PAPER_YIELD_PCT[name]
        row["chips_per_system"] = ACCELERATOR_DIES[name].chips_per_system
    return table


def format_result(result: Dict[str, dict]) -> str:
    lines = ["Table 3: yield and estimated tape-out cost", ""]
    lines.append(f"{'design':12s} {'mm^2':>8s} {'node':>5s} {'yield%':>7s} "
                 f"{'(paper)':>8s} {'$/mm^2':>7s} {'NRE $':>8s}")
    for name, row in result.items():
        lines.append(
            f"{name:12s} {row['area_mm2']:>8.1f} {row['process']:>5s} "
            f"{row['yield_pct']:>7.1f} {row['paper_yield_pct']:>8.1f} "
            f"{row['price_per_mm2']:>7.0f} {row['tapeout_cost']:>8.1e}"
        )
    return "\n".join(lines)
