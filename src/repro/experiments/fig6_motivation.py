"""Figure 6: parallel bootstraps vs cache capacity and compute.

The motivation study (Section 3.1): a *single* chip with 1 TB/s HBM runs
1..8 bootstraps; on-chip cache is swept from 64 MB to 2 GB and compute
from 4 to 8 clusters.  Expected shape:

* small caches degrade linearly with bootstrap count (metadata — shared
  plaintext matrices and evaluation keys — spills and re-streams);
* ~1 GB fits the shared metadata, so parallel bootstraps stop paying for
  it (5.6x at 8 bootstraps going 256 MB -> 1 GB, vs 1.28x for one);
* beyond the cache sweet spot, extra compute gives further speedups.

Register-file capacity doubles as the cache here: Belady allocation with a
larger file keeps the shared metadata resident across bootstraps.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..sim.config import CINNAMON_1
from .common import compile_bootstrap, simulate

CACHES_MB = (64, 128, 256, 1024, 2048)
BOOTSTRAPS = (1, 2, 4, 8)
CLUSTERS = (4, 8)
LIMB_MB = 0.25  # one N=64K limb register


def run(fast: bool = True) -> Dict[Tuple[int, int, int], float]:
    """Returns ``{(bootstraps, cache_mb, clusters): milliseconds}``."""
    caches = (64, 256, 1024) if fast else CACHES_MB
    bootstraps = (1, 2) if fast else BOOTSTRAPS
    clusters = CLUSTERS
    out: Dict[Tuple[int, int, int], float] = {}
    for count in bootstraps:
        for cache_mb in caches:
            registers = max(32, int(cache_mb / LIMB_MB))
            compiled = compile_bootstrap(
                1, num_streams=count, chips_per_stream=1,
                registers_per_chip=registers)
            for n_clusters in clusters:
                machine = CINNAMON_1.scaled(
                    clusters=n_clusters,
                    register_file_mb=float(cache_mb),
                    hbm_gbps=1024.0,  # the study's 1 TB/s single chip
                )
                result = simulate(compiled, machine,
                                  tag=f"fig6-{cache_mb}-{n_clusters}")
                out[(count, cache_mb, n_clusters)] = result.milliseconds
    return out


def format_result(result) -> str:
    lines = ["Figure 6: bootstraps x cache x compute on one chip (ms)", ""]
    keys = sorted(result)
    for key in keys:
        count, cache, clusters = key
        lines.append(
            f"  {count} bootstrap(s), {cache:>5d} MB, {clusters} clusters: "
            f"{result[key]:8.2f} ms"
        )
    return "\n".join(lines)
