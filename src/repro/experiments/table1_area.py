"""Table 1: component-wise area breakdown of a Cinnamon chip."""

from __future__ import annotations

from typing import Dict

from ..arch.area import (
    CINNAMON_AREA,
    TABLE1_COMPONENTS,
    TABLE1_FU_TOTAL,
    TABLE1_TOTAL,
    craterlake_bcu_comparison,
)


def run(fast: bool = True) -> Dict[str, object]:
    model = CINNAMON_AREA
    return {
        "components_mm2": dict(TABLE1_COMPONENTS),
        "fu_total_mm2": model.functional_unit_area(),
        "breakdown": model.breakdown(),
        "total_mm2": model.total_area(),
        "paper_fu_total_mm2": TABLE1_FU_TOTAL,
        "paper_total_mm2": TABLE1_TOTAL,
        "bcu_comparison": craterlake_bcu_comparison(),
    }


def format_result(result: Dict[str, object]) -> str:
    lines = ["Table 1: Cinnamon chip area breakdown (mm^2, 22nm)", ""]
    for name, area in result["components_mm2"].items():
        lines.append(f"  {name:14s} {area:8.2f}")
    lines.append(f"  {'FU total':14s} {result['fu_total_mm2']:8.2f} "
                 f"(paper {result['paper_fu_total_mm2']:.2f})")
    for name, area in result["breakdown"].items():
        lines.append(f"  {name:14s} {area:8.2f}")
    lines.append(f"  {'TOTAL':14s} {result['total_mm2']:8.2f} "
                 f"(paper {result['paper_total_mm2']:.2f})")
    bcu = result["bcu_comparison"]
    lines.append("")
    lines.append("Section 4.7 BCU comparison (per cluster):")
    for design, row in bcu.items():
        lines.append(
            f"  {design:11s} multipliers={row['multipliers']:>6.0f} "
            f"buffers={row['buffer_mb']:.2f} MB ports={row['buffer_ports']}"
        )
    return "\n".join(lines)
