"""Command-line experiment runner.

    python -m repro.experiments list
    python -m repro.experiments table1 table3
    python -m repro.experiments fig13 --full
    python -m repro.experiments all
"""

from __future__ import annotations

import argparse
import sys
import time

from . import ALL_EXPERIMENTS

# Rough fast-mode wall times, to set expectations in `list`.
_COSTS = {
    "fig1": "instant", "table1": "instant", "table3": "instant",
    "fig11": "minutes", "fig12": "minutes", "fig15": "minutes",
    "table2": "minutes", "fig13": "~15 min", "fig14": "~15 min",
    "fig16": "~10 min", "fig6": "~20 min",
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate tables/figures of the Cinnamon paper.")
    parser.add_argument("names", nargs="+",
                        help="experiment names (see `list`), or `all`")
    parser.add_argument("--full", action="store_true",
                        help="run full published sweep grids (slow)")
    parser.add_argument("--tuned", action="store_true",
                        help="use autotuned configs from the tuning DB "
                             "where the experiment supports them (fig16)")
    args = parser.parse_args(argv)

    if args.names == ["list"]:
        for name in sorted(ALL_EXPERIMENTS):
            doc = ALL_EXPERIMENTS[name].__doc__.strip().splitlines()[0]
            print(f"  {name:8s} [{_COSTS.get(name, '?'):8s}] {doc}")
        return 0

    names = sorted(ALL_EXPERIMENTS) if args.names == ["all"] else args.names
    for name in names:
        if name not in ALL_EXPERIMENTS:
            print(f"unknown experiment {name!r}; try `list`", file=sys.stderr)
            return 2
        module = ALL_EXPERIMENTS[name]
        kwargs = {}
        if args.tuned:
            import inspect

            if "tuned" in inspect.signature(module.run).parameters:
                kwargs["tuned"] = True
            else:
                print(f"[{name}: --tuned not supported, using defaults]")
        start = time.perf_counter()
        result = module.run(fast=not args.full, **kwargs)
        elapsed = time.perf_counter() - start
        print(module.format_result(result))
        print(f"[{name}: {elapsed:.1f}s]")
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
