"""Experiment harnesses: one module per table/figure of the paper.

Every module exposes ``run(fast=True)`` returning the rows/series of its
table or figure, and ``format_result(result)`` rendering them as text.
``fast=True`` trims sweep points so the whole suite stays tractable on a
laptop; ``fast=False`` runs the full published grid.  The benchmark
harnesses under ``benchmarks/`` call these entry points.
"""

from . import (
    fig1_scaling,
    fig6_motivation,
    table1_area,
    table2_performance,
    table3_yield,
    fig11_speedup,
    fig12_perf_per_dollar,
    fig13_keyswitch,
    fig14_bootstrap_scaling,
    fig15_utilization,
    fig16_sensitivity,
)

ALL_EXPERIMENTS = {
    "fig1": fig1_scaling,
    "fig6": fig6_motivation,
    "table1": table1_area,
    "table2": table2_performance,
    "table3": table3_yield,
    "fig11": fig11_speedup,
    "fig12": fig12_perf_per_dollar,
    "fig13": fig13_keyswitch,
    "fig14": fig14_bootstrap_scaling,
    "fig15": fig15_utilization,
    "fig16": fig16_sensitivity,
}

__all__ = ["ALL_EXPERIMENTS"] + [f"fig{n}" for n in
                                 (1, 6, 11, 12, 13, 14, 15, 16)] + [
    "table1_area", "table2_performance", "table3_yield",
]
