"""Shared infrastructure for the experiment harnesses.

Compilation dominates experiment wall time, so every harness routes
through one process-wide :class:`repro.runtime.CinnamonSession`: compiled
programs and simulation results are cached by content, Table 2's results
feed Figures 11, 12, and 15 without re-simulation, and the session's
merged JSON trace (per-pass compile timings, per-FU utilization) can be
exported for any experiment run via :func:`export_trace`.
"""

from __future__ import annotations

from ..core.compiler import CompiledProgram, CompilerOptions
from ..core.ir.bootstrap_graph import BOOTSTRAP_13, BootstrapPlan
from ..fhe.params import ArchParams
from ..runtime import CinnamonSession
from ..sim.config import MachineConfig, resolve_machine
from ..sim.simulator import SimulationResult
from ..workloads.bootstrap import bootstrap_program
from ..workloads.compose import WorkloadTimer

# Compiled bootstrap programs run to ~1 GB of Python objects each, so the
# session's in-memory LRU is small; simulation results are tiny and cached
# unboundedly inside the session.
_SESSION = CinnamonSession(capacity=2)
_TIMER = WorkloadTimer()


def session() -> CinnamonSession:
    """The shared experiment session (cache + trace recorder)."""
    return _SESSION


def workload_timer() -> WorkloadTimer:
    return _TIMER


def export_trace(path) -> object:
    """Write the merged trace of every experiment run so far to ``path``."""
    return _SESSION.export_trace(path)


def compile_bootstrap(
    num_chips: int,
    plan: BootstrapPlan = BOOTSTRAP_13,
    num_streams: int = 1,
    chips_per_stream: int = None,
    keyswitch_policy: str = "cinnamon",
    enable_batching: bool = True,
    registers_per_chip: int = 224,
    num_digits: int = None,
) -> CompiledProgram:
    """Compile (with caching) a bootstrap program for a machine layout."""
    params = ArchParams(max_level=plan.top_level)
    program = bootstrap_program(plan, num_streams=num_streams)
    options = CompilerOptions(
        num_chips=num_chips,
        chips_per_stream=chips_per_stream,
        keyswitch_policy=keyswitch_policy,
        enable_batching=enable_batching,
        registers_per_chip=registers_per_chip,
        num_digits=num_digits,
        bootstrap_plan=plan,
    )
    compiled = _SESSION.compile(
        program, params, options=options,
        job=f"bootstrap-{plan.name}-c{num_chips}s{num_streams}")
    # Summarize and release the limb IR: only its statistics are needed
    # after code generation, and it is the largest object in memory.
    compiled.summarize_comm(release=True)
    return compiled


def simulate(compiled: CompiledProgram, machine: MachineConfig,
             tag: str = "") -> SimulationResult:
    return _SESSION.simulate(compiled, resolve_machine(machine), tag=tag)


def geomean(values) -> float:
    import math

    values = list(values)
    return math.exp(sum(math.log(v) for v in values) / len(values))
