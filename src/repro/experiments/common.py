"""Shared infrastructure for the experiment harnesses.

Compilation dominates experiment wall time, so compiled programs and
simulation results are cached process-wide; Table 2's results feed Figures
11, 12, and 15 without re-simulation.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Tuple

from ..core.compiler import CinnamonCompiler, CompiledProgram, CompilerOptions
from ..core.ir.bootstrap_graph import BOOTSTRAP_13, BootstrapPlan
from ..fhe.params import ArchParams
from ..sim.config import MachineConfig
from ..sim.simulator import CycleSimulator, SimulationResult
from ..workloads.bootstrap import bootstrap_program
from ..workloads.compose import WorkloadTimer

# Compiled bootstrap programs run to ~1 GB of Python objects each, so the
# cache is a small LRU; simulation results are tiny and cached unboundedly.
_COMPILE_CACHE: "OrderedDict[Tuple, CompiledProgram]" = OrderedDict()
_COMPILE_CACHE_CAPACITY = 2
_SIM_CACHE: Dict[Tuple, SimulationResult] = {}
_TIMER = WorkloadTimer()


def workload_timer() -> WorkloadTimer:
    return _TIMER


def compile_bootstrap(
    num_chips: int,
    plan: BootstrapPlan = BOOTSTRAP_13,
    num_streams: int = 1,
    chips_per_stream: int = None,
    keyswitch_policy: str = "cinnamon",
    enable_batching: bool = True,
    registers_per_chip: int = 224,
) -> CompiledProgram:
    """Compile (with caching) a bootstrap program for a machine layout."""
    key = (num_chips, plan.name, num_streams, chips_per_stream,
           keyswitch_policy, enable_batching, registers_per_chip)
    if key in _COMPILE_CACHE:
        _COMPILE_CACHE.move_to_end(key)
        return _COMPILE_CACHE[key]
    params = ArchParams(max_level=plan.top_level)
    program = bootstrap_program(plan, num_streams=num_streams)
    options = CompilerOptions(
        num_chips=num_chips,
        chips_per_stream=chips_per_stream,
        keyswitch_policy=keyswitch_policy,
        enable_batching=enable_batching,
        registers_per_chip=registers_per_chip,
        bootstrap_plan=plan,
    )
    compiled = CinnamonCompiler(params, options).compile(program)
    compiled.cache_token = key
    # Summarize and release the limb IR: only its statistics are needed
    # after code generation, and it is the largest object in memory.
    lp = compiled.limb_program
    compiled.comm_summary = {
        "broadcast_events": lp.comm_events("broadcast"),
        "aggregate_events": lp.comm_events("aggregate"),
        "comm_limbs": lp.comm_limbs(),
        "limb_ops": len(lp.ops),
    }
    lp.ops = []
    lp.domains = {}
    _COMPILE_CACHE[key] = compiled
    while len(_COMPILE_CACHE) > _COMPILE_CACHE_CAPACITY:
        _COMPILE_CACHE.popitem(last=False)
    return compiled


def simulate(compiled: CompiledProgram, machine: MachineConfig,
             tag: str = "") -> SimulationResult:
    token = getattr(compiled, "cache_token", None) or id(compiled)
    key = (token, machine.name, repr(machine.chip), tag)
    if key in _SIM_CACHE:
        return _SIM_CACHE[key]
    result = CycleSimulator(machine).run(compiled.isa)
    _SIM_CACHE[key] = result
    return result


def geomean(values) -> float:
    import math

    values = list(values)
    return math.exp(sum(math.log(v) for v in values) / len(values))
