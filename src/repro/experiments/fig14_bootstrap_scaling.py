"""Figure 14 / Section 7.5: Bootstrap-13 vs Bootstrap-21 scaling.

Speedup of each bootstrap variant on Cinnamon-4/8/12 over the single-chip
sequential run of the same variant.  The deeper Bootstrap-21 keeps scaling
to 8/12 chips (it has ~2x the compute to parallelize) while Bootstrap-13
flattens — the paper's argument that limb-level parallelism opens the
bootstrap frequency/cost trade-off.
"""

from __future__ import annotations

from typing import Dict

from ..core.ir.bootstrap_graph import BOOTSTRAP_13, BOOTSTRAP_21
from ..sim.config import CINNAMON_1, config_for
from .common import compile_bootstrap, simulate

CHIP_COUNTS = (4, 8, 12)


def run(fast: bool = True) -> Dict[str, Dict[int, float]]:
    """Single-bootstrap *latency* speedup: one ciphertext, limb-level
    parallelism spread across the whole machine.  (Independent-stream
    throughput would scale trivially; the figure is about how far one
    refresh can be parallelized.)"""
    chip_counts = (4, 8) if fast else CHIP_COUNTS
    out: Dict[str, Dict[int, float]] = {}
    for plan in (BOOTSTRAP_13, BOOTSTRAP_21):
        baseline = simulate(compile_bootstrap(1, plan=plan), CINNAMON_1)
        speedups = {}
        for chips in chip_counts:
            compiled = compile_bootstrap(chips, plan=plan)
            result = simulate(compiled, config_for(chips))
            speedups[chips] = baseline.cycles / result.cycles
        out[plan.name] = speedups
    return out


def format_result(result: Dict[str, Dict[int, float]]) -> str:
    lines = ["Figure 14: bootstrap variants, speedup over 1 chip", ""]
    for plan, row in result.items():
        cells = "  ".join(f"{c} chips: {s:.2f}x" for c, s in sorted(row.items()))
        lines.append(f"  {plan:14s} {cells}")
    return "\n".join(lines)
