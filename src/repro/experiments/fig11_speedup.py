"""Figure 11: speedup of every architecture normalized to the CPU.

All compiles/simulations behind Table 2 flow through the shared runtime
session (:func:`repro.experiments.common.session`); pass ``trace_path``
to dump that session's merged JSON trace — per-pass compile timings and
per-FU utilization for every kernel this figure touched — next to the
figure data.
"""

from __future__ import annotations

from typing import Dict

from . import table2_performance
from .common import export_trace


def run(fast: bool = True,
        trace_path: str = None) -> Dict[str, Dict[str, float]]:
    table = table2_performance.run(fast=fast)
    if trace_path:
        export_trace(trace_path)
    speedups: Dict[str, Dict[str, float]] = {}
    for benchmark, row in table.items():
        cpu = row["CPU"]
        speedups[benchmark] = {
            system: (cpu / seconds) if seconds else None
            for system, seconds in row.items()
            if system != "CPU" and seconds is not None
        }
    return speedups


def headline_bert_speedup(fast: bool = True) -> float:
    """The abstract's 36,600x claim: BERT on Cinnamon-12 vs the CPU."""
    return run(fast=fast)["bert-base-128"]["Cinnamon-12"]


def format_result(result: Dict[str, Dict[str, float]]) -> str:
    lines = ["Figure 11: speedup over the 48-core CPU (log scale)", ""]
    for benchmark, row in result.items():
        lines.append(benchmark)
        for system, speedup in row.items():
            lines.append(f"  {system:12s} {speedup:>12.0f}x")
    return "\n".join(lines)
