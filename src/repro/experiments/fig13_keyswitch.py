"""Figure 13 + Section 7.4: keyswitching techniques on Cinnamon-4.

Bootstrap speedups over a single-chip *Sequential* baseline for:

* ``CiFHER``                      — broadcast-everywhere keyswitching;
* ``Input Broadcast``             — Cinnamon algorithm #1, no batching;
* ``Input Broadcast + Pass``      — with the compiler's reorder/batch pass;
* ``Cinnamon Keyswitch + Pass``   — pass selects IB or output aggregation;
* ``+ Program Parallelism``       — plus two streams of two chips each;

each at 256 / 512 / 1024 GB/s link bandwidth.  Also computes Section 7.4's
communication comparison (broadcast/aggregation events and data volume,
Cinnamon vs CiFHER with batching).
"""

from __future__ import annotations

from typing import Dict

from ..sim.config import resolve_machine
from .common import compile_bootstrap, simulate

# Reference usage of the unified machine spec: names resolve through
# resolve_machine(), the same helper the compiler options accept.
CINNAMON_1 = resolve_machine("cinnamon_1")
CINNAMON_4 = resolve_machine("cinnamon_4")

CONFIGS = (
    ("CiFHER", dict(keyswitch_policy="cifher", enable_batching=False)),
    ("Input Broadcast", dict(keyswitch_policy="input_broadcast",
                             enable_batching=False)),
    ("Input Broadcast + Pass", dict(keyswitch_policy="input_broadcast",
                                    enable_batching=True)),
    ("Cinnamon Keyswitch + Pass", dict(keyswitch_policy="cinnamon",
                                       enable_batching=True)),
    ("Cinnamon Keyswitch + Pass + Program Parallelism",
     dict(keyswitch_policy="cinnamon", enable_batching=True,
          num_streams=2, chips_per_stream=2)),
)

LINK_GBPS = (256.0, 512.0, 1024.0)


def run(fast: bool = True) -> Dict[str, object]:
    baseline = simulate(compile_bootstrap(1), CINNAMON_1)
    link_points = (LINK_GBPS[0], LINK_GBPS[1]) if fast else LINK_GBPS
    configs = CONFIGS if not fast else CONFIGS
    speedups: Dict[str, Dict[float, float]] = {}
    comm: Dict[str, dict] = {}
    for label, options in configs:
        compiled = compile_bootstrap(4, **options)
        comm[label] = compiled.comm_summary.as_dict()
        comm[label]["pass_reduction"] = compiled.pass_stats.reduction
        streams = options.get("num_streams", 1)
        speedups[label] = {}
        for gbps in link_points:
            machine = CINNAMON_4.scaled(link_gbps=gbps)
            result = simulate(compiled, machine, tag=f"link{gbps}")
            # Program-parallel configs complete `streams` bootstraps per
            # run; speedup is per-bootstrap throughput.
            speedups[label][gbps] = streams * baseline.cycles / result.cycles
    return {
        "baseline_ms": baseline.milliseconds,
        "speedup_over_sequential": speedups,
        "communication": comm,
    }


def section_7_4_comparison(result: Dict[str, object]) -> Dict[str, float]:
    """Cinnamon vs CiFHER (both with batching where applicable)."""
    comm = result["communication"]
    cif = comm["CiFHER"]
    cin = comm["Cinnamon Keyswitch + Pass"]
    speed = result["speedup_over_sequential"]
    first_link = sorted(speed["CiFHER"])[0]
    return {
        "comm_reduction":
            cif["comm_limbs"] / max(1, cin["comm_limbs"]),
        "speedup_vs_cifher":
            speed["Cinnamon Keyswitch + Pass"][first_link]
            / speed["CiFHER"][first_link],
        "speedup_vs_cifher_with_program_parallelism":
            speed["Cinnamon Keyswitch + Pass + Program Parallelism"][first_link]
            / speed["CiFHER"][first_link],
    }


def format_result(result: Dict[str, object]) -> str:
    lines = [
        "Figure 13: keyswitching techniques, bootstrap on Cinnamon-4",
        f"(sequential single-chip baseline: {result['baseline_ms']:.2f} ms)",
        "",
    ]
    for label, by_link in result["speedup_over_sequential"].items():
        cells = "  ".join(f"{gbps:.0f}GB/s: {s:.2f}x"
                          for gbps, s in sorted(by_link.items()))
        lines.append(f"  {label:50s} {cells}")
    lines.append("")
    lines.append("Communication per bootstrap:")
    for label, row in result["communication"].items():
        lines.append(
            f"  {label:50s} bcast={row['broadcast_events']:>5d} "
            f"aggr={row['aggregate_events']:>3d} limbs={row['comm_limbs']:>6d}"
        )
    return "\n".join(lines)
