"""Figure 15: compute / memory-bandwidth / network utilization.

Cinnamon-4 across all four benchmarks (averaged), plus BERT on Cinnamon-8
and Cinnamon-12 — where compute and memory utilization start dropping as
the serial program sections stop scaling (Section 7.6).
"""

from __future__ import annotations

from typing import Dict

from . import table2_performance


def run(fast: bool = True) -> Dict[str, Dict[str, float]]:
    return table2_performance.utilization_data(fast=fast)


def format_result(result: Dict[str, Dict[str, float]]) -> str:
    lines = ["Figure 15: utilization", ""]
    lines.append(f"{'benchmark/machine':30s} {'compute':>8s} {'memory':>8s} "
                 f"{'network':>8s}")
    for key, row in result.items():
        lines.append(
            f"{key:30s} {row['compute']:>8.2f} {row['memory']:>8.2f} "
            f"{row['network']:>8.2f}"
        )
    return "\n".join(lines)
