"""Figure 1: growth of ML models vs on-chip cache of FHE architectures.

A data figure: model parameter counts explode across years while FHE
accelerators' on-chip caches plateau in the hundreds of megabytes.  The
series below are curated from the cited literature; ``run`` also appends
the equivalent *cache demand* of encrypting each model's activations
(ciphertext expansion at N = 64K), making the divergence quantitative.
"""

from __future__ import annotations

from typing import Dict

# (year, parameters)
ML_MODELS = {
    "ResNet-20": (2016, 0.27e6),
    "ResNet-50": (2016, 25.6e6),
    "BERT-Base": (2018, 110e6),
    "BERT-Large": (2018, 340e6),
    "GPT-2": (2019, 1.5e9),
    "GPT-3": (2020, 175e9),
    "PaLM": (2022, 540e9),
}

# (year, on-chip cache MB)
FHE_ACCELERATORS = {
    "F1": (2021, 64),
    "BTS": (2022, 512),
    "CraterLake": (2022, 256),
    "ARK": (2022, 512),
    "SHARP": (2023, 198),
    "CiFHER (package)": (2024, 368),
    "Cinnamon (per chip)": (2025, 56),
}

CIPHERTEXT_MB = 20.0  # one fresh N=64K ciphertext (Section 3.2)
SLOTS_PER_CIPHERTEXT = 32768


def run(fast: bool = True) -> Dict[str, dict]:
    models = {
        name: {
            "year": year,
            "parameters": params,
            "activation_ciphertexts": max(1, int(params // SLOTS_PER_CIPHERTEXT)),
            "encrypted_mb": max(1, int(params // SLOTS_PER_CIPHERTEXT))
            * CIPHERTEXT_MB,
        }
        for name, (year, params) in ML_MODELS.items()
    }
    accelerators = {
        name: {"year": year, "cache_mb": cache}
        for name, (year, cache) in FHE_ACCELERATORS.items()
    }
    return {"models": models, "accelerators": accelerators}


def format_result(result: Dict[str, dict]) -> str:
    lines = ["Figure 1: model growth vs FHE accelerator caches", ""]
    lines.append(f"{'model':24s} {'year':>5s} {'params':>10s} {'enc. MB':>12s}")
    for name, row in result["models"].items():
        lines.append(
            f"{name:24s} {row['year']:>5d} {row['parameters']:>10.2e} "
            f"{row['encrypted_mb']:>12.0f}"
        )
    lines.append("")
    lines.append(f"{'accelerator':24s} {'year':>5s} {'cache MB':>9s}")
    for name, row in result["accelerators"].items():
        lines.append(f"{name:24s} {row['year']:>5d} {row['cache_mb']:>9d}")
    return "\n".join(lines)
