"""Figure 16: sensitivity to halving/doubling machine resources.

For each resource (register file, link bandwidth, memory bandwidth, vector
width), the bootstrap benchmark is re-run on Cinnamon-4 with that resource
halved and doubled; Figure 16 reports the speedup relative to the default
configuration.  (The paper sweeps Cinnamon-4 over the geomean of all four
benchmarks and 8/12 over BERT; since all workload kernels are bootstrap-
dominated, the bootstrap sweep carries the shape.  ``fast=False`` also
sweeps Cinnamon-8/12.)

Expected shape: halving any resource costs ~20-40%, doubling buys only
~2-20% — the chips are balanced (Section 7.6).
"""

from __future__ import annotations

from typing import Dict

from ..sim.config import CINNAMON_4, config_for
from .common import compile_bootstrap, simulate

RESOURCES = ("register_file", "link_bandwidth", "memory_bandwidth",
             "vector_width")
FACTORS = (0.5, 2.0)


def _machine_with(machine, resource: str, factor: float):
    chip = machine.chip
    if resource == "register_file":
        return machine.scaled(register_file_mb=chip.register_file_mb * factor)
    if resource == "link_bandwidth":
        return machine.scaled(link_gbps=chip.link_gbps * factor)
    if resource == "memory_bandwidth":
        return machine.scaled(hbm_gbps=chip.hbm_gbps * factor)
    if resource == "vector_width":
        return machine.scaled(
            lanes_per_cluster=int(chip.lanes_per_cluster * factor))
    raise ValueError(f"unknown resource {resource!r}")


def run(fast: bool = True) -> Dict[str, Dict[str, Dict[float, float]]]:
    machines = {"Cinnamon-4": CINNAMON_4}
    if not fast:
        machines["Cinnamon-8"] = config_for(8)
        machines["Cinnamon-12"] = config_for(12)
    out: Dict[str, Dict[str, Dict[float, float]]] = {}
    for name, machine in machines.items():
        streams = max(1, machine.num_chips // 4)
        compiled = compile_bootstrap(
            machine.num_chips, num_streams=streams,
            chips_per_stream=min(4, machine.num_chips))
        base = simulate(compiled, machine)
        rows: Dict[str, Dict[float, float]] = {}
        for resource in RESOURCES:
            rows[resource] = {}
            for factor in FACTORS:
                if resource == "register_file":
                    # Register-file size changes what the compiler can hold
                    # resident: recompile with the scaled register count.
                    scaled_machine = _machine_with(machine, resource, factor)
                    scaled_compiled = compile_bootstrap(
                        machine.num_chips, num_streams=streams,
                        chips_per_stream=min(4, machine.num_chips),
                        registers_per_chip=max(32, int(224 * factor)))
                    result = simulate(scaled_compiled, scaled_machine,
                                      tag=f"rf{factor}")
                else:
                    scaled_machine = _machine_with(machine, resource, factor)
                    result = simulate(compiled, scaled_machine,
                                      tag=f"{resource}{factor}")
                rows[resource][factor] = base.cycles / result.cycles
        out[name] = rows
    return out


def format_result(result) -> str:
    lines = ["Figure 16: sensitivity (speedup vs default; 1.0 = no change)",
             ""]
    for machine, rows in result.items():
        lines.append(machine)
        for resource, by_factor in rows.items():
            cells = "  ".join(f"x{f}: {s:.2f}" for f, s in sorted(by_factor.items()))
            lines.append(f"  {resource:18s} {cells}")
    return "\n".join(lines)
