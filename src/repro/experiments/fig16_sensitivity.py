"""Figure 16: sensitivity to halving/doubling machine resources.

For each resource (register file, link bandwidth, memory bandwidth, vector
width), the bootstrap benchmark is re-run on Cinnamon-4 with that resource
halved and doubled; Figure 16 reports the speedup relative to the default
configuration.  (The paper sweeps Cinnamon-4 over the geomean of all four
benchmarks and 8/12 over BERT; since all workload kernels are bootstrap-
dominated, the bootstrap sweep carries the shape.  ``fast=False`` also
sweeps Cinnamon-8/12.)

``tuned=True`` (CLI: ``--tuned``) re-runs the sweep from the autotuned
baseline instead of the stock configuration: the best Cinnamon-4
bootstrap config persisted in the :class:`repro.tune.TuningDB` (a quick
budget-8 search fills the DB on a miss).  The report then also shows
default vs tuned cycles, and every speedup is relative to the *tuned*
baseline.

Expected shape: halving any resource costs ~20-40%, doubling buys only
~2-20% — the chips are balanced (Section 7.6).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..sim.config import CINNAMON_4, config_for, machine_with
from .common import compile_bootstrap, session, simulate

RESOURCES = ("register_file", "link_bandwidth", "memory_bandwidth",
             "vector_width")
FACTORS = (0.5, 2.0)

# Backwards-compatible alias: the private helper graduated to
# repro.sim.config.machine_with so the autotuner can share it.
_machine_with = machine_with


def _tuned_config(machine_name: str) -> Optional[dict]:
    """The tuning DB's best bootstrap config for ``machine_name``.

    Quick-tunes (budget 8, successive halving) through the shared
    experiment session to fill the DB on a Cinnamon-4 miss; other
    machines just fall back to the stock configuration.
    """
    from ..tune import QUICK_BUDGET, Tuner, TuningDB, default_db_path, \
        get_workload, tuning_key

    workload = get_workload("bootstrap", "paper")
    program, params, base_options = workload.materialize()
    db = TuningDB(default_db_path())
    key = tuning_key(program, params, machine_name, "cycles")
    entry = db.get(key)
    if entry is None:
        if machine_name != CINNAMON_4.name:
            return None
        tuner = Tuner(session=session(), db=db)
        report = tuner.tune_program(
            program, params, machine_name, base_options=base_options,
            workload_name=workload.name, strategy="halving",
            budget=QUICK_BUDGET)
        entry = db.get(report.db_key)
    return entry


def run(fast: bool = True, tuned: bool = False
        ) -> Dict[str, Dict[str, Dict[float, float]]]:
    machines = {"Cinnamon-4": CINNAMON_4}
    if not fast:
        machines["Cinnamon-8"] = config_for(8)
        machines["Cinnamon-12"] = config_for(12)
    out: Dict[str, Dict[str, Dict[float, float]]] = {}
    for name, machine in machines.items():
        streams = max(1, machine.num_chips // 4)
        layout = dict(num_streams=streams,
                      chips_per_stream=min(4, machine.num_chips))
        registers = 224
        if tuned:
            entry = _tuned_config(name)
            if entry is not None:
                cfg = dict(entry["assignment"])
                layout.update(
                    chips_per_stream=cfg.get("chips_per_stream",
                                             layout["chips_per_stream"]),
                    keyswitch_policy=cfg.get("keyswitch_policy",
                                             "cinnamon"),
                    enable_batching=cfg.get("enable_batching", True),
                    num_digits=cfg.get("num_digits"),
                )
                registers = cfg.get("registers_per_chip", registers)
                layout["registers_per_chip"] = registers
                baseline = out.setdefault("__tuning__", {})
                baseline[name] = {
                    "default_cycles": entry["default_cycles"],
                    "tuned_cycles": entry["cycles"],
                    "config": cfg,
                }
        compiled = compile_bootstrap(machine.num_chips, **layout)
        base = simulate(compiled, machine,
                        tag="tuned" if tuned else "")
        rows: Dict[str, Dict[float, float]] = {}
        for resource in RESOURCES:
            rows[resource] = {}
            for factor in FACTORS:
                scaled_machine = machine_with(machine, resource, factor)
                if resource == "register_file":
                    # Register-file size changes what the compiler can hold
                    # resident: recompile with the scaled register count.
                    scaled_layout = dict(
                        layout,
                        registers_per_chip=max(32, int(registers * factor)))
                    scaled_compiled = compile_bootstrap(machine.num_chips,
                                                        **scaled_layout)
                    result = simulate(scaled_compiled, scaled_machine,
                                      tag=f"rf{factor}")
                else:
                    result = simulate(compiled, scaled_machine,
                                      tag=f"{resource}{factor}")
                rows[resource][factor] = base.cycles / result.cycles
        out[name] = rows
    return out


def format_result(result) -> str:
    tuning = result.get("__tuning__")
    title = "Figure 16: sensitivity (speedup vs {} config; 1.0 = no change)"
    lines = [title.format("tuned" if tuning else "default"), ""]
    if tuning:
        for machine, info in tuning.items():
            ratio = info["default_cycles"] / max(1, info["tuned_cycles"])
            cfg = "  ".join(f"{k}={v}" for k, v in
                            sorted(info["config"].items()))
            lines.append(
                f"{machine} tuned baseline: {info['tuned_cycles']:,.0f} "
                f"cycles vs default {info['default_cycles']:,.0f} "
                f"({ratio:.2f}x)")
            lines.append(f"  config: {cfg}")
        lines.append("")
    for machine, rows in result.items():
        if machine == "__tuning__":
            continue
        lines.append(machine)
        for resource, by_factor in rows.items():
            cells = "  ".join(f"x{f}: {s:.2f}" for f, s in sorted(by_factor.items()))
            lines.append(f"  {resource:18s} {cells}")
    return "\n".join(lines)
