"""The Cinnamon framework core: DSL, compiler IRs, ISA, and emulator.

This subpackage is the paper's primary contribution, reimplemented:

* :mod:`repro.core.dsl` — the Python-embedded DSL with concurrent
  execution streams (program-level parallelism).
* :mod:`repro.core.ir` — the polynomial-level IR, the keyswitch compiler
  pass (algorithm selection + communication batching), and the limb-level
  IR with modular limb partitioning across chips.
* :mod:`repro.core.isa` — the Cinnamon vector ISA (one register = one
  limb), Belady's-MIN register allocation, per-chip code generation, and a
  functional CPU emulator used to validate compiled programs against the
  :mod:`repro.fhe` evaluator.
"""

from .dsl import CinnamonProgram, StreamPool
from .compiler import (
    CinnamonCompiler,
    CompiledProgram,
    CompilerDriver,
    CompilerOptions,
    CompileStats,
    CommSummary,
    PassTiming,
)
from .ir.passes import (
    KEYSWITCH_POLICIES,
    KS_CIFHER,
    KS_CINNAMON,
    KS_INPUT_BROADCAST,
    KS_SEQUENTIAL,
    normalize_keyswitch_policy,
)

__all__ = [
    "CinnamonProgram",
    "StreamPool",
    "CinnamonCompiler",
    "CompilerDriver",
    "CompilerOptions",
    "CompiledProgram",
    "CompileStats",
    "CommSummary",
    "PassTiming",
    "KEYSWITCH_POLICIES",
    "KS_CINNAMON",
    "KS_INPUT_BROADCAST",
    "KS_CIFHER",
    "KS_SEQUENTIAL",
    "normalize_keyswitch_policy",
]
