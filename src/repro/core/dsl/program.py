"""Program capture for the Cinnamon DSL.

A :class:`CinnamonProgram` records ciphertext-level operations into a DAG as
ordinary Python code executes — handles overload the arithmetic operators,
so FHE programs read like numpy code (Figure 7 step 1 of the paper):

    prog = CinnamonProgram("dot", level=8)
    a = prog.input("a")
    b = prog.input("b")
    c = a * b
    for r in (1, 2, 4):
        c = c + c.rotate(r)
    prog.output("c", c)

Each operation records the *stream* it belongs to (see
:mod:`repro.core.dsl.streams`); the compiler places streams on chip groups.
Levels are tracked statically: they determine limb counts, digit structure,
and therefore everything the limb IR and the simulator see.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

# Ciphertext-level opcodes.
INPUT = "input"
OUTPUT = "output"
ADD = "add"
SUB = "sub"
NEGATE = "negate"
MUL = "mul"                # ct x ct: tensor + relinearize + rescale
MUL_PLAIN = "mul_plain"    # ct x pt: multiply + rescale
ADD_PLAIN = "add_plain"
ROTATE = "rotate"
CONJUGATE = "conjugate"
RESCALE = "rescale"        # explicit extra rescale (rarely needed)
BOOTSTRAP = "bootstrap"

_LEVEL_CONSUMING = {MUL, MUL_PLAIN, RESCALE}
# auto_bootstrap refreshes operands at or below this level.
_LOW_WATERMARK = 2


@dataclass(slots=True)
class CtOp:
    """One node of the ciphertext-level DAG."""

    id: int
    opcode: str
    inputs: Tuple[int, ...]
    level: int  # level of the result
    stream: int
    attrs: dict = field(default_factory=dict)

    def __repr__(self):
        ins = ",".join(f"%{i}" for i in self.inputs)
        return f"%{self.id} = {self.opcode}({ins}) L{self.level} s{self.stream}"


class CiphertextHandle:
    """A ciphertext value inside a captured program."""

    __slots__ = ("program", "op_id", "level")

    def __init__(self, program: "CinnamonProgram", op_id: int, level: int):
        self.program = program
        self.op_id = op_id
        self.level = level

    # -- operator sugar -------------------------------------------------- #

    def _emit(self, opcode, others=(), level=None, **attrs):
        return self.program._record(opcode, (self,) + tuple(others),
                                    level=level, **attrs)

    def __add__(self, other):
        if isinstance(other, PlaintextHandle):
            return self._emit(ADD_PLAIN, attrs_pt=None, plaintext=other.name)
        if isinstance(other, (int, float, complex)):
            return self._emit(ADD_PLAIN, constant=other)
        return self._emit(ADD, (other,))

    __radd__ = __add__

    def __sub__(self, other):
        if isinstance(other, (int, float, complex)):
            return self._emit(ADD_PLAIN, constant=-other)
        return self._emit(SUB, (other,))

    def __neg__(self):
        return self._emit(NEGATE)

    def __mul__(self, other):
        if isinstance(other, PlaintextHandle):
            return self._emit(MUL_PLAIN, plaintext=other.name)
        if isinstance(other, (int, float, complex)):
            return self._emit(MUL_PLAIN, constant=other)
        return self._emit(MUL, (other,))

    __rmul__ = __mul__

    def rotate(self, amount: int) -> "CiphertextHandle":
        """Cyclically shift slots left by ``amount``."""
        return self._emit(ROTATE, rotation=int(amount))

    def conjugate(self) -> "CiphertextHandle":
        return self._emit(CONJUGATE)

    def rescale(self) -> "CiphertextHandle":
        return self._emit(RESCALE)

    def bootstrap(self) -> "CiphertextHandle":
        """Refresh the multiplicative budget (expanded by the compiler)."""
        return self._emit(BOOTSTRAP)

    def __repr__(self):
        return f"<ct %{self.op_id} L{self.level}>"


class PlaintextHandle:
    """A named plaintext operand; values are bound at emulation time."""

    __slots__ = ("name", "level")

    def __init__(self, name: str, level: Optional[int] = None):
        self.name = name
        self.level = level

    def __repr__(self):
        return f"<pt {self.name}>"


class CinnamonProgram:
    """A captured ciphertext-level FHE program."""

    def __init__(self, name: str, level: int, bootstrap_output_level: int = None,
                 auto_bootstrap: bool = False):
        """``level`` is the level of fresh inputs; ``bootstrap_output_level``
        is the level ciphertexts re-enter computation with after a
        bootstrap (the paper's ``l_eff + 1``; defaults to ``level``).

        With ``auto_bootstrap``, operands whose budget would be exhausted
        are refreshed automatically (DaCapo-style bootstrap placement,
        the trade-off Section 7.5 points to): programs can be written
        depth-obliviously and the recorder inserts ``bootstrap`` ops where
        needed.
        """
        if level < 1:
            raise ValueError("input level must be >= 1")
        self.name = name
        self.input_level = level
        self.bootstrap_output_level = bootstrap_output_level or level
        self.auto_bootstrap = auto_bootstrap
        self.ops: List[CtOp] = []
        self.inputs: Dict[str, int] = {}
        self.outputs: Dict[str, int] = {}
        self.plaintexts: Dict[str, Optional[int]] = {}
        self.num_streams = 1
        self._current_stream = 0

    # ------------------------------------------------------------------ #
    # Recording

    def _record(self, opcode: str, operands: Sequence[CiphertextHandle] = (),
                level: int = None, **attrs) -> CiphertextHandle:
        for operand in operands:
            if operand.program is not self:
                raise ValueError("cannot mix handles from different programs")
        if level is None:
            level = self._result_level(opcode, operands, attrs)
        if level < 1 and self.auto_bootstrap and opcode != BOOTSTRAP:
            # Refresh the shallowest operands until the op has budget.
            operands = tuple(
                op.bootstrap() if op.level <= _LOW_WATERMARK else op
                for op in operands
            )
            level = self._result_level(opcode, operands, attrs)
        if level < 1:
            raise ValueError(
                f"multiplicative budget exhausted at op {len(self.ops)} "
                f"({opcode}); insert a bootstrap"
            )
        if "plaintext" in attrs and attrs["plaintext"] is not None:
            self.plaintexts.setdefault(attrs["plaintext"], level)
        attrs = {k: v for k, v in attrs.items() if v is not None and k != "attrs_pt"}
        op = CtOp(
            id=len(self.ops),
            opcode=opcode,
            inputs=tuple(o.op_id for o in operands),
            level=level,
            stream=self._current_stream,
            attrs=attrs,
        )
        self.ops.append(op)
        return CiphertextHandle(self, op.id, level)

    def _result_level(self, opcode, operands, attrs) -> int:
        if opcode == INPUT:
            return attrs.get("level") or self.input_level
        if opcode == BOOTSTRAP:
            return self.bootstrap_output_level
        base = min(o.level for o in operands)
        if opcode in _LEVEL_CONSUMING:
            return base - 1
        return base

    # ------------------------------------------------------------------ #
    # Program interface

    def input(self, name: str, level: int = None) -> CiphertextHandle:
        if name in self.inputs:
            raise ValueError(f"duplicate input {name!r}")
        handle = self._record(INPUT, level=level or self.input_level, name=name)
        self.inputs[name] = handle.op_id
        return handle

    def plaintext(self, name: str) -> PlaintextHandle:
        """Declare a named plaintext operand (bound at emulation time)."""
        return PlaintextHandle(name)

    def output(self, name: str, value: CiphertextHandle):
        if name in self.outputs:
            raise ValueError(f"duplicate output {name!r}")
        self._record(OUTPUT, (value,), level=value.level, name=name)
        self.outputs[name] = value.op_id

    # ------------------------------------------------------------------ #
    # Introspection

    def op(self, op_id: int) -> CtOp:
        return self.ops[op_id]

    def count(self, opcode: str) -> int:
        return sum(1 for op in self.ops if op.opcode == opcode)

    @property
    def keyswitch_count(self) -> int:
        """Ops that will lower to a keyswitch (mul, rotate, conjugate)."""
        return sum(1 for op in self.ops
                   if op.opcode in (MUL, ROTATE, CONJUGATE))

    def users(self) -> Dict[int, List[int]]:
        """Map op id -> ids of ops consuming its result."""
        table: Dict[int, List[int]] = {op.id: [] for op in self.ops}
        for op in self.ops:
            for src in op.inputs:
                table[src].append(op.id)
        return table

    def __repr__(self):
        return (
            f"CinnamonProgram({self.name!r}, ops={len(self.ops)}, "
            f"streams={self.num_streams})"
        )

    def dump(self) -> str:
        """Readable listing of the captured DAG (for tests and debugging)."""
        return "\n".join(repr(op) for op in self.ops)
