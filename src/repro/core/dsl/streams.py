"""Concurrent execution streams — program-level parallelism.

Streams are the DSL's unit of program-level parallelism (Section 4.2): the
programmer writes a stream function indexed by ``stream_id``, and
:class:`StreamPool` runs it once per stream while tagging every recorded
operation with its stream.  The compiler later places each stream on its
own chip group and parallelizes within the group at the limb level —
composing both forms of parallelism (Figure 7 steps 5-6).

    def stream_fn(stream_id):
        x = prog.input(f"x{stream_id}")
        y = prog.input(f"y{stream_id}")
        prog.output(f"z{stream_id}", x * y)

    StreamPool(prog, num_streams=2, fn=stream_fn)
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable

from .program import CinnamonProgram


@contextmanager
def stream_scope(program: CinnamonProgram, stream_id: int):
    """Tag all operations recorded inside the scope with ``stream_id``."""
    if stream_id < 0:
        raise ValueError("stream id must be non-negative")
    previous = program._current_stream
    program._current_stream = stream_id
    program.num_streams = max(program.num_streams, stream_id + 1)
    try:
        yield
    finally:
        program._current_stream = previous


class StreamPool:
    """Instantiate ``num_streams`` concurrent streams of a stream function.

    Mirrors the paper's ``CinnamonStreamPool``: the function body is traced
    once per stream id.  Capture is sequential (tracing is deterministic);
    *execution* concurrency comes from the compiler's stream placement.
    """

    def __init__(self, program: CinnamonProgram, num_streams: int,
                 fn: Callable[[int], None]):
        if num_streams < 1:
            raise ValueError("need at least one stream")
        self.program = program
        self.num_streams = num_streams
        for stream_id in range(num_streams):
            with stream_scope(program, stream_id):
                fn(stream_id)
