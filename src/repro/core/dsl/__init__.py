"""The Cinnamon DSL: Python-embedded FHE programs with parallel streams."""

from .program import CinnamonProgram, CiphertextHandle, PlaintextHandle
from .streams import StreamPool

__all__ = [
    "CinnamonProgram",
    "CiphertextHandle",
    "PlaintextHandle",
    "StreamPool",
]
