"""Textual encoding of Cinnamon ISA programs.

The paper positions the Cinnamon ISA as a compilation target for external
toolchains (Section 8: "the Cinnamon ISA can serve as a compilation target
for the HEIR framework").  This module gives the ISA a stable textual
form: ``disassemble`` renders an :class:`IsaModule` as one assembly file,
``assemble`` parses it back — a lossless round trip, so instruction
streams can be exchanged with other tools or checked into artifacts.

Format (one instruction per line, per-chip sections)::

    .chip 0
    ld r3 {"symbol": "input:x:0:0", ...}
    vntt r4 r3 {"prime": 268369921, ...}
    col {"cid": 7, "kind": "broadcast", ...}
"""

from __future__ import annotations

import json
from typing import Dict, List

from .codegen import IsaModule
from .instructions import Instruction
from .regalloc import AllocationStats


def _encode_attrs(attrs: dict) -> str:
    def default(value):
        if isinstance(value, tuple):
            return list(value)
        raise TypeError(f"cannot encode {type(value)}")

    return json.dumps(attrs, default=default, sort_keys=True)


def disassemble(module: IsaModule) -> str:
    """Render all chip streams as one assembly text."""
    lines: List[str] = []
    for chip in sorted(module.streams):
        lines.append(f".chip {chip}")
        for ins in module.streams[chip]:
            parts = [ins.opcode]
            if ins.dest is not None:
                parts.append(f"r{ins.dest}")
            parts.extend(f"r{r}" for r in ins.srcs)
            if ins.attrs:
                parts.append(_encode_attrs(ins.attrs))
            lines.append(" ".join(parts))
    return "\n".join(lines) + "\n"

_DEFINING = {
    "vadd", "vsub", "vneg", "vmul", "vmulc", "vntt", "vintt", "vauto",
    "vrsv", "vbcv", "vprng", "ld", "mov", "rcv",
}


def assemble(text: str) -> IsaModule:
    """Parse assembly text back into an :class:`IsaModule`.

    Attribute values survive as JSON types; tuple-valued attributes come
    back as lists (semantically equivalent for the emulator/simulator).
    """
    streams: Dict[int, List[Instruction]] = {}
    current: List[Instruction] = None
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith(".chip"):
            chip = int(line.split()[1])
            current = streams.setdefault(chip, [])
            continue
        if current is None:
            raise ValueError("instruction before any .chip directive")
        attrs = {}
        brace = line.find("{")
        if brace >= 0:
            attrs = json.loads(line[brace:])
            line = line[:brace].strip()
        tokens = line.split()
        opcode = tokens[0]
        regs = [int(t[1:]) for t in tokens[1:]]
        if opcode in _DEFINING and regs:
            dest, srcs = regs[0], tuple(regs[1:])
        else:
            dest, srcs = None, tuple(regs)
        current.append(Instruction(opcode, dest, srcs, attrs))
    return IsaModule(streams, {chip: AllocationStats() for chip in streams})
