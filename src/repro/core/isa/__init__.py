"""The Cinnamon ISA: vector instructions over limbs, codegen, emulation."""

from .instructions import Instruction
from .codegen import generate_isa
from .emulator import IsaEmulator, MemoryImage, build_memory_image

__all__ = [
    "Instruction",
    "generate_isa",
    "IsaEmulator",
    "MemoryImage",
    "build_memory_image",
]
