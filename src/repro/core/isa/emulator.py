"""Functional CPU emulator for the Cinnamon ISA.

The paper built "a CPU emulator for the Cinnamon ISA and used it to run all
the benchmarks" to test compiler correctness (Section 6.2); this module is
that emulator.  It executes the per-chip instruction streams with real
numpy limb data — registers hold limbs, collectives synchronize chips, and
the memory image is built from an actual :class:`repro.fhe.CKKSContext` —
so a compiled program's outputs can be decrypted and compared against the
functional evaluator.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List

import numpy as np

from ...fhe.ciphertext import Ciphertext
from ...fhe.evaluator import CKKSContext
from ...fhe.modmath import UINT, centered, from_signed
from ...fhe.ntt import eval_automorphism, intt, ntt
from ...fhe.polynomial import EVAL, RnsPolynomial
from ..compiler import CompiledProgram
from .instructions import (
    COL, LD, MOV, RCV, SND, ST, VADD, VAUTO, VBCV, VINTT, VMUL, VMULC, VNEG,
    VNTT, VPRNG, VRSV, VSUB,
)


class MemoryImage:
    """Name -> limb array storage shared by all chips (models HBM)."""

    def __init__(self):
        self.data: Dict[str, np.ndarray] = {}

    def __setitem__(self, symbol: str, limb: np.ndarray):
        self.data[symbol] = np.asarray(limb, dtype=UINT)

    def __getitem__(self, symbol: str) -> np.ndarray:
        if symbol not in self.data:
            raise KeyError(f"memory symbol {symbol!r} not populated")
        return self.data[symbol]

    def __contains__(self, symbol):
        return symbol in self.data


def build_memory_image(
    compiled: CompiledProgram,
    context: CKKSContext,
    inputs: Dict[str, Ciphertext],
    plaintexts: Dict[str, np.ndarray] = None,
) -> MemoryImage:
    """Populate HBM for an emulation run.

    * program inputs from the given ciphertexts;
    * evaluation keys from the context's keychain (with the digit
      partitions the compiler chose);
    * plaintext operands encoded at the compiler-inferred scales.
    """
    plaintexts = plaintexts or {}
    params = context.params
    memory = MemoryImage()

    for name, op_id in compiled.ct_program.inputs.items():
        if name not in inputs:
            raise KeyError(f"no ciphertext bound for program input {name!r}")
        ct = inputs[name]
        level = compiled.ct_program.ops[op_id].level
        ct = ct.at_level(level)
        for comp, poly in enumerate(ct.polys):
            poly = poly.to_eval()
            for i in range(poly.level):
                memory[f"input:{name}:{comp}:{i}"] = poly.data[i]

    for key, level, partition_sig in compiled.limb_program.evalkeys:
        if key == "relin":
            purpose = "relin"
        elif key.startswith("galois"):
            purpose = ("galois", int(key[len("galois"):]))
        else:
            raise ValueError(f"unknown evalkey tag {key!r}")
        if partition_sig.startswith("m"):
            n = int(partition_sig[1:])
            partition = tuple(
                tuple(i for i in range(level) if i % n == c) for c in range(n)
            )
        else:
            partition = params.digit_partition(level, int(partition_sig[1:]))
        evk = context.keychain.switching_key(purpose, level, partition)
        for digit_index, (b, a) in enumerate(evk.digits):
            for comp, poly in enumerate((b, a)):
                for pos in range(poly.level):
                    memory[
                        f"evk:{key}:{level}:{partition_sig}:"
                        f"{digit_index}:{comp}:{pos}"
                    ] = poly.data[pos]

    encoder = context.encoder
    for key, definition in compiled.limb_program.plaintext_defs.items():
        level = definition["level"]
        scale = definition["pt_scale"]
        if scale is None:
            scale = params.scale_at_level(level)
        if definition.get("constant") is not None:
            pt = encoder.encode_constant(
                complex(definition["constant"]), scale=scale, level=level)
        else:
            name = definition["plaintext"]
            if name not in plaintexts:
                raise KeyError(f"no values bound for plaintext {name!r}")
            pt = encoder.encode(plaintexts[name], scale=scale, level=level)
        poly = pt.poly.to_eval()
        for i in range(level):
            memory[f"{key}:{i}"] = poly.data[i]
    return memory


class _Chip:
    def __init__(self, chip_id: int, stream: List):
        self.id = chip_id
        self.stream = stream
        self.pc = 0
        self.regs: Dict[int, np.ndarray] = {}

    @property
    def done(self) -> bool:
        return self.pc >= len(self.stream)


class IsaEmulator:
    """Round-robin multi-chip executor with collective synchronization."""

    def __init__(self, compiled: CompiledProgram, memory: MemoryImage):
        if compiled.isa is None:
            raise ValueError("program was compiled without ISA emission")
        self.compiled = compiled
        self.memory = memory
        self.chips = [
            _Chip(c, compiled.isa.streams[c]) for c in sorted(compiled.isa.streams)
        ]
        self.mailbox: Dict[tuple, list] = defaultdict(list)
        self.p2p: Dict[int, np.ndarray] = {}
        self.executed = 0

    # ------------------------------------------------------------------ #

    def run(self) -> None:
        """Execute all chips to completion (raises on deadlock)."""
        while True:
            progress = False
            alldone = True
            for chip in self.chips:
                while not chip.done:
                    if not self._step(chip):
                        break
                    progress = True
                alldone = alldone and chip.done
            if alldone:
                return
            if not progress:
                stuck = [(c.id, c.pc, repr(c.stream[c.pc]))
                         for c in self.chips if not c.done]
                raise RuntimeError(f"emulator deadlock at {stuck}")

    # ------------------------------------------------------------------ #

    def _step(self, chip: _Chip) -> bool:
        """Execute one instruction; returns False if it must block."""
        ins = chip.stream[chip.pc]
        op = ins.opcode
        regs = chip.regs
        attrs = ins.attrs

        if op == RCV:
            key = (attrs["cid"], attrs["tag"])
            arrived = self.mailbox.get(key, [])
            if len(arrived) < attrs["expected"]:
                return False
            if attrs["expected"] == 1:
                value = arrived[0]
            else:
                p = UINT(attrs["prime"])
                acc = np.zeros_like(arrived[0])
                for contribution in arrived:
                    acc = (acc + contribution) % p
                value = acc
            regs[ins.dest] = value.copy()
        elif op == MOV:
            if attrs["key"] not in self.p2p:
                return False
            regs[ins.dest] = self.p2p.pop(attrs["key"])
        elif op == SND:
            self.p2p[attrs["key"]] = regs[ins.srcs[0]].copy()
        elif op == COL:
            for reg, tag in zip(ins.srcs, attrs["tags"]):
                self.mailbox[(attrs["cid"], tag)].append(regs[reg].copy())
        elif op in (LD, VPRNG):
            # vprng regenerates a pseudorandom limb; functionally that is
            # the same data the keychain sampled, so read it from memory.
            regs[ins.dest] = self.memory[attrs["symbol"]].copy()
        elif op == ST:
            self.memory[attrs["symbol"]] = regs[ins.srcs[0]].copy()
        elif op == VADD:
            p = UINT(attrs["prime"])
            regs[ins.dest] = (regs[ins.srcs[0]] + regs[ins.srcs[1]]) % p
        elif op == VSUB:
            p = UINT(attrs["prime"])
            regs[ins.dest] = (regs[ins.srcs[0]] + p - regs[ins.srcs[1]]) % p
        elif op == VNEG:
            p = UINT(attrs["prime"])
            regs[ins.dest] = (p - regs[ins.srcs[0]]) % p
        elif op == VMUL:
            p = UINT(attrs["prime"])
            regs[ins.dest] = (regs[ins.srcs[0]] * regs[ins.srcs[1]]) % p
        elif op == VMULC:
            p = UINT(attrs["prime"])
            regs[ins.dest] = (regs[ins.srcs[0]] * UINT(attrs["scalar"])) % p
        elif op == VNTT:
            regs[ins.dest] = ntt(regs[ins.srcs[0]], attrs["prime"])
        elif op == VINTT:
            regs[ins.dest] = intt(regs[ins.srcs[0]], attrs["prime"])
        elif op == VAUTO:
            regs[ins.dest] = eval_automorphism(
                regs[ins.srcs[0]], attrs["galois"])
        elif op == VRSV:
            signed = centered(regs[ins.srcs[0]], attrs["from_prime"])
            regs[ins.dest] = from_signed(signed, attrs["to_prime"])
        elif op == VBCV:
            target = attrs["target_prime"]
            sources = attrs["source_primes"]
            p = UINT(target)
            acc = np.zeros_like(regs[ins.srcs[0]])
            q_total = 1
            for q in sources:
                q_total *= q
            for reg, q in zip(ins.srcs, sources):
                factor = UINT((q_total // q) % target)
                acc = (acc + regs[reg] * factor) % p
            regs[ins.dest] = acc
        else:
            raise ValueError(f"unknown opcode {op!r}")
        chip.pc += 1
        self.executed += 1
        return True

    # ------------------------------------------------------------------ #

    def output_ciphertext(self, name: str, params) -> Ciphertext:
        """Reassemble a program output from stored limbs."""
        prog = self.compiled.ct_program
        if name not in prog.outputs:
            raise KeyError(f"no program output named {name!r}")
        producer = prog.ops[prog.outputs[name]]
        level = producer.level
        scale = producer.attrs.get("scale", params.scale_at_level(level))
        basis = params.basis_at_level(level)
        polys = []
        for comp in (0, 1):
            data = np.stack([
                self.memory[f"output:{name}:{comp}:{i}"] for i in range(level)
            ])
            polys.append(RnsPolynomial(basis, data, EVAL))
        return Ciphertext(polys, scale)


def emulate(compiled: CompiledProgram, context: CKKSContext,
            inputs: Dict[str, Ciphertext],
            plaintexts: Dict[str, np.ndarray] = None) -> Dict[str, Ciphertext]:
    """Convenience wrapper: build memory, run, collect all outputs."""
    memory = build_memory_image(compiled, context, inputs, plaintexts)
    emulator = IsaEmulator(compiled, memory)
    emulator.run()
    return {
        name: emulator.output_ciphertext(name, context.params)
        for name in compiled.ct_program.outputs
    }
