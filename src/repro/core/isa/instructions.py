"""Cinnamon ISA instruction definitions.

Every register holds one limb: a 28-bit-wide vector of ``N`` elements
(Section 4.6), so all instructions operate on a uniform vector size.
Scalar-operand variants (``vmulc``) avoid expanding scalars to vectors.
Inter-chip communication is exposed as collective instructions (``col`` to
contribute, ``rcv`` to materialize a delivered limb), mirroring the
broadcast/aggregation primitives of the interconnect (Section 4.5).

========  ========================================  =====================
opcode    meaning                                    functional unit
========  ========================================  =====================
vadd      rd <- ra + rb (mod q)                      add
vsub      rd <- ra - rb (mod q)                      add
vneg      rd <- -ra (mod q)                          add
vmul      rd <- ra * rb (mod q)                      multiply
vmulc     rd <- ra * scalar (mod q)                  multiply
vntt      rd <- NTT(ra)                              NTT
vintt     rd <- INTT(ra)                             NTT
vauto     rd <- permute(ra) (eval-domain galois)     transpose/rotation
vrsv      rd <- centered re-reduction q_a -> q_b     RNS resolve + Barrett
vbcv      rd <- base-conversion MAC over srcs        BCU
vprng     rd <- regenerate pseudorandom limb         PRNG
ld        rd <- HBM[symbol]                          memory
st        HBM[symbol] <- ra                          memory
snd/mov   point-to-point limb transfer               network
col       contribute limbs to collective #cid        network
rcv       rd <- limb `tag` from collective #cid      network
========  ========================================  =====================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

VADD = "vadd"
VSUB = "vsub"
VNEG = "vneg"
VMUL = "vmul"
VMULC = "vmulc"
VNTT = "vntt"
VINTT = "vintt"
VAUTO = "vauto"
VRSV = "vrsv"
VBCV = "vbcv"
VPRNG = "vprng"
LD = "ld"
ST = "st"
SND = "snd"
MOV = "mov"
COL = "col"
RCV = "rcv"

COMPUTE = (VADD, VSUB, VNEG, VMUL, VMULC, VNTT, VINTT, VAUTO, VRSV,
           VBCV, VPRNG)
MEMORY = (LD, ST)
NETWORK = (SND, MOV, COL, RCV)


@dataclass(slots=True)
class Instruction:
    """One Cinnamon ISA instruction on one chip.

    ``dest``/``srcs`` are register indices; ``attrs`` carries the limb-op
    metadata (prime, scalar, galois element, symbol, collective info) the
    emulator and simulator need.
    """

    opcode: str
    dest: Optional[int] = None
    srcs: Tuple[int, ...] = ()
    attrs: dict = field(default_factory=dict)

    def __repr__(self):
        d = f"r{self.dest} <- " if self.dest is not None else ""
        s = ",".join(f"r{r}" for r in self.srcs)
        sym = self.attrs.get("symbol")
        extra = f" [{sym}]" if sym else ""
        return f"{self.opcode} {d}{s}{extra}"
