"""Limb IR -> per-chip Cinnamon ISA streams.

The limb IR is already in dependency order (the lowering emits ops
topologically), so code generation is a partitioning problem: route each
limb op to its chip's stream, split point-to-point moves into a send and a
receive, and expand collectives into one ``col`` contribution instruction
per participating chip plus the per-limb ``rcv`` ops the lowering emitted.
Belady's MIN then maps SSA values onto the physical register file,
inserting loads/stores as early as possible (Section 4.4).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Tuple

from ..ir import limb_ir as lir
from .instructions import COL, MOV, RCV, SND, Instruction
from .regalloc import AbstractInstruction, AllocationStats, allocate_registers

_OPCODE_MAP = {
    lir.L_ADD: "vadd",
    lir.L_SUB: "vsub",
    lir.L_NEG: "vneg",
    lir.L_MUL: "vmul",
    lir.L_MULC: "vmulc",
    lir.L_NTT: "vntt",
    lir.L_INTT: "vintt",
    lir.L_AUTO: "vauto",
    lir.L_RSV: "vrsv",
    lir.L_BCONV: "vbcv",
    lir.L_LOAD: "ld",
    lir.L_PRNG: "vprng",
    lir.L_STORE: "st",
}


class IsaModule:
    """Register-allocated per-chip instruction streams."""

    def __init__(self, streams: Dict[int, List[Instruction]],
                 alloc_stats: Dict[int, AllocationStats]):
        self.streams = streams
        self.alloc_stats = alloc_stats

    def __getitem__(self, chip: int) -> List[Instruction]:
        return self.streams[chip]

    def __iter__(self):
        return iter(self.streams)

    @property
    def instruction_count(self) -> int:
        return sum(len(s) for s in self.streams.values())

    def count(self, opcode: str) -> int:
        return sum(
            1 for stream in self.streams.values()
            for ins in stream if ins.opcode == opcode
        )


def generate_isa(limb: lir.LimbProgram, num_chips: int,
                 registers_per_chip: int) -> IsaModule:
    """Generate register-allocated instruction streams, one per chip."""
    abstract: Dict[int, List[AbstractInstruction]] = {
        c: [] for c in range(num_chips)
    }
    load_symbols: Dict[int, Dict[int, str]] = {c: {} for c in range(num_chips)}
    producer_chip: Dict[int, int] = {}

    # Expected contribution counts per (cid, tag) for aggregations.
    expected: Dict[Tuple[int, str], int] = defaultdict(int)
    for op in limb.ops:
        if op.opcode == lir.L_COMM:
            for tag in op.attrs["tags"]:
                expected[(op.attrs["cid"], tag)] += 1

    for op in limb.ops:
        attrs = dict(op.attrs)
        attrs["limb_op"] = op.id
        if op.opcode == lir.L_COMM:
            cid = op.attrs["cid"]
            group = op.attrs["group"]
            tags = op.attrs["tags"]
            # One contribution instruction per participating chip.
            per_chip_sends: Dict[int, List[Tuple[int, str]]] = {
                c: [] for c in group
            }
            for value, tag in zip(op.inputs, tags):
                per_chip_sends[producer_chip[value]].append((value, tag))
            for chip in group:
                sends = per_chip_sends[chip]
                abstract[chip].append(AbstractInstruction(
                    COL,
                    defines=None,
                    uses=tuple(v for v, _ in sends),
                    attrs={
                        "cid": cid,
                        "kind": op.attrs["kind"],
                        "tags": tuple(t for _, t in sends),
                        "group": group,
                        "limb_op": op.id,
                        "bytes": op.attrs["limbs_moved"],
                    },
                ))
            continue
        if op.opcode == lir.L_RECV:
            cid = op.attrs["cid"]
            tag = op.attrs["tag"]
            attrs["expected"] = expected[(cid, tag)]
            abstract[op.chip].append(AbstractInstruction(
                RCV, defines=op.id, uses=(), attrs=attrs))
            producer_chip[op.id] = op.chip
            continue
        if op.opcode == lir.L_MOV:
            src = op.inputs[0]
            src_chip = op.attrs["from_chip"]
            abstract[src_chip].append(AbstractInstruction(
                SND, defines=None, uses=(src,),
                attrs={"key": op.id, "to_chip": op.chip, "limb_op": op.id}))
            abstract[op.chip].append(AbstractInstruction(
                MOV, defines=op.id, uses=(),
                attrs={"key": op.id, "from_chip": src_chip, "limb_op": op.id,
                       "prime": op.attrs.get("prime")}))
            producer_chip[op.id] = op.chip
            continue
        opcode = _OPCODE_MAP[op.opcode]
        defines = None if op.opcode == lir.L_STORE else op.id
        abstract[op.chip].append(AbstractInstruction(
            opcode, defines=defines, uses=tuple(op.inputs), attrs=attrs))
        if op.opcode != lir.L_STORE:
            producer_chip[op.id] = op.chip
        if op.opcode in (lir.L_LOAD, lir.L_PRNG):
            load_symbols[op.chip][op.id] = (opcode, op.attrs["symbol"])

    streams: Dict[int, List[Instruction]] = {}
    stats: Dict[int, AllocationStats] = {}
    for chip, entries in abstract.items():
        if not entries:
            streams[chip] = []
            stats[chip] = AllocationStats()
            continue
        instructions, chip_stats = allocate_registers(
            entries, registers_per_chip, load_symbols[chip])
        streams[chip] = instructions
        stats[chip] = chip_stats
    return IsaModule(streams, stats)
