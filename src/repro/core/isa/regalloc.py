"""Belady's-MIN register allocation (Section 4.4).

The Cinnamon compiler allocates the vector register file with Belady's
optimal replacement policy: when a register is needed, evict the resident
value whose next use is furthest in the future.  Values that came from
memory loads (inputs, evaluation keys, plaintexts) are *rematerialized* by
re-loading their original symbol; computed values are spilled to HBM and
reloaded.  The resulting load/store traffic is what makes the register-file
size sweeps (Figure 6, Figure 16) meaningful.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .instructions import LD, ST, Instruction


@dataclass(slots=True)
class AbstractInstruction:
    """Pre-allocation instruction: SSA value ids instead of registers."""

    opcode: str
    defines: Optional[int] = None
    uses: Tuple[int, ...] = ()
    attrs: dict = field(default_factory=dict)


@dataclass
class AllocationStats:
    spill_stores: int = 0
    reloads: int = 0
    peak_registers: int = 0


def allocate_registers(
    entries: List[AbstractInstruction],
    num_registers: int,
    load_symbols: Dict[int, str],
) -> Tuple[List[Instruction], AllocationStats]:
    """Rewrite one chip's abstract stream with physical registers.

    ``load_symbols`` maps value ids that originated from a load (``ld``)
    or on-chip regeneration (``vprng``) to ``(opcode, symbol)``, enabling
    rematerialization instead of spilling.
    """
    if num_registers < 16:
        raise ValueError("register file too small for keyswitch working sets")

    # Next-use positions per value, in original indices.
    use_positions: Dict[int, List[int]] = defaultdict(list)
    for idx, entry in enumerate(entries):
        for v in entry.uses:
            use_positions[v].append(idx)
    for positions in use_positions.values():
        positions.reverse()  # pop() yields the earliest remaining use

    reg_of: Dict[int, int] = {}
    value_in: Dict[int, int] = {}  # reg -> value
    free = list(range(num_registers - 1, -1, -1))
    spilled: set = set()
    out: List[Instruction] = []
    stats = AllocationStats()

    def next_use(value: int, after: int) -> int:
        positions = use_positions.get(value)
        if not positions:
            return 1 << 60
        for p in reversed(positions):  # positions stored reversed
            if p >= after:
                return p
        return 1 << 60

    def evict(idx: int, pinned: set) -> int:
        victim = None
        victim_use = -1
        for value, reg in reg_of.items():
            if reg in pinned:
                continue
            nu = next_use(value, idx)
            if nu > victim_use:
                victim_use = nu
                victim = value
        if victim is None:
            raise RuntimeError("register pressure exceeds pinned operands")
        reg = reg_of.pop(victim)
        del value_in[reg]
        if victim_use < (1 << 60) and victim not in load_symbols \
                and victim not in spilled:
            out.append(Instruction(ST, None, (reg,),
                                   {"symbol": f"spill:{victim}"}))
            spilled.add(victim)
            stats.spill_stores += 1
        return reg

    def take_register(idx: int, pinned: set) -> int:
        if free:
            return free.pop()
        return evict(idx, pinned)

    def ensure_loaded(value: int, idx: int, pinned: set) -> int:
        if value in reg_of:
            return reg_of[value]
        reg = take_register(idx, pinned)
        if value in load_symbols:
            opcode, symbol = load_symbols[value]
        elif value in spilled:
            opcode, symbol = LD, f"spill:{value}"
        else:
            raise RuntimeError(
                f"value %{value} used before definition on this chip"
            )
        out.append(Instruction(opcode, reg, (), {"symbol": symbol}))
        stats.reloads += 1
        reg_of[value] = reg
        value_in[reg] = value
        return reg

    for idx, entry in enumerate(entries):
        pinned = set()
        src_regs = []
        for v in entry.uses:
            reg = ensure_loaded(v, idx, pinned)
            pinned.add(reg)
            src_regs.append(reg)
        # Consume this use.
        for v in entry.uses:
            positions = use_positions.get(v)
            while positions and positions[-1] <= idx:
                positions.pop()
        dest_reg = None
        if entry.defines is not None:
            dest_reg = take_register(idx, pinned)
            reg_of[entry.defines] = dest_reg
            value_in[dest_reg] = entry.defines
        out.append(Instruction(entry.opcode, dest_reg, tuple(src_regs),
                               dict(entry.attrs)))
        stats.peak_registers = max(stats.peak_registers, len(reg_of))
        # Release values with no remaining uses.  Only this instruction's
        # operands (whose use was just consumed) and a use-less definition
        # can have died, so the check is O(operands), not O(live values).
        candidates = set(entry.uses)
        if entry.defines is not None:
            candidates.add(entry.defines)
        for v in candidates:
            if v in reg_of and not use_positions.get(v):
                reg = reg_of.pop(v)
                del value_in[reg]
                free.append(reg)
    return out, stats
