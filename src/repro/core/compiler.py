"""The Cinnamon compiler driver.

Pipeline (Figure 7):

    DSL program
      -> bootstrap expansion        (ct level; inlines bootstrap op graphs)
      -> keyswitch pass             (pattern detection, algorithm selection)
      -> alignment + scale inference
      -> polynomial IR              (ciphertexts -> component polynomials)
      -> limb IR                    (limb partitioning, keyswitch expansion,
                                     explicit communication)
      -> Cinnamon ISA               (per-chip streams, Belady registers)

Every pass is wall-clock timed and the op counts of each IR level are
recorded into a :class:`CompileStats` attached to the produced
:class:`CompiledProgram` — the observability substrate of the
:mod:`repro.runtime` session traces.

:class:`CompilerDriver` is the implementation; the historical
:class:`CinnamonCompiler` entry point survives as a deprecated thin
wrapper.  New code should go through :func:`repro.compile` or a
:class:`repro.runtime.CinnamonSession`.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .dsl.program import CinnamonProgram
from .ir import ctpasses
from .ir.limb_ir import LimbProgram, lower_to_limb
from .ir.passes import KeyswitchPass, KeyswitchPassStats
from .ir.poly_ir import PolyProgram, lower_to_poly


@dataclass
class CompilerOptions:
    """Machine layout and optimization switches.

    ``machine`` accepts anything :func:`repro.sim.config.resolve_machine`
    understands (a name like ``"cinnamon_4"``, a chip count, or a
    :class:`~repro.sim.config.MachineConfig`); when given it is resolved
    once and overrides ``num_chips`` and ``registers_per_chip``, removing
    the historical duplication between compiler options and ``sim.config``.

    ``num_chips`` is the whole machine; ``chips_per_stream`` carves it into
    stream groups (defaults to an even split across the program's streams).
    ``keyswitch_policy`` and ``enable_batching`` drive the keyswitch pass
    (Section 7.3's configurations).  ``registers_per_chip`` sizes the
    register file for allocation (224 x 256 KB limbs = 56 MB by default).
    """

    num_chips: int = 4
    chips_per_stream: Optional[int] = None
    keyswitch_policy: str = "cinnamon"
    enable_batching: bool = True
    num_digits: Optional[int] = None
    registers_per_chip: int = 224
    bootstrap_plan: object = None  # BootstrapPlan; default chosen per params
    regenerate_evalkeys: bool = True  # PRNG unit regenerates evk 'a' limbs
    enable_optimizations: bool = True  # ct-level CSE + DCE
    machine: object = None  # MachineConfig | name | chip count; see above

    def __post_init__(self):
        from .ir.passes import normalize_keyswitch_policy

        # Canonicalize early so equivalent spellings ("KS_CIFHER",
        # "cifher") produce identical cache fingerprints and a bad policy
        # fails at options construction, not mid-pipeline.
        self.keyswitch_policy = normalize_keyswitch_policy(
            self.keyswitch_policy)
        if self.machine is not None:
            from ..sim.config import resolve_machine

            resolved = resolve_machine(self.machine)
            self.machine = resolved
            self.num_chips = resolved.num_chips
            self.registers_per_chip = resolved.chip.registers

    def with_machine(self, machine) -> "CompilerOptions":
        """These options re-targeted at a different machine.

        Degraded-mode recompilation uses this to keep every optimization
        switch while re-partitioning limbs across the surviving chip
        count; ``num_chips``/``registers_per_chip`` are re-derived from
        the new machine by ``__post_init__``.
        """
        from dataclasses import replace

        return replace(self, machine=machine)


@dataclass
class PassTiming:
    """Wall-clock cost of one compiler pass."""

    name: str
    seconds: float

    def as_dict(self) -> dict:
        return {"name": self.name, "seconds": self.seconds}


@dataclass
class CompileStats:
    """Per-pass timings and IR-size counters for one compilation.

    ``passes`` lists every pipeline stage that actually ran, in order;
    ``counters`` records the op count at each IR level (``ct_ops``,
    ``poly_ops``, ``limb_ops``, ``isa_instructions``, ``keyswitches``).
    """

    passes: List[PassTiming] = field(default_factory=list)
    counters: Dict[str, int] = field(default_factory=dict)
    total_seconds: float = 0.0

    def pass_seconds(self, name: str) -> float:
        return sum(p.seconds for p in self.passes if p.name == name)

    def as_dict(self) -> dict:
        return {
            "passes": [p.as_dict() for p in self.passes],
            "counters": dict(self.counters),
            "total_seconds": self.total_seconds,
        }


@dataclass
class CommSummary:
    """Communication statistics distilled from the limb IR.

    Computed by :meth:`CompiledProgram.summarize_comm`; callers that are
    done with the limb IR release it afterwards (it is by far the largest
    in-memory object of a compilation).
    """

    broadcast_events: int
    aggregate_events: int
    comm_limbs: int
    limb_ops: int

    # Dict-style access kept for callers that treated the summary as a dict.
    def __getitem__(self, key: str):
        return getattr(self, key)

    def keys(self):
        return ("broadcast_events", "aggregate_events", "comm_limbs",
                "limb_ops")

    def as_dict(self) -> dict:
        return {name: getattr(self, name) for name in self.keys()}


@dataclass
class CompiledProgram:
    """Everything the simulator, emulator, and benchmarks consume."""

    name: str
    options: CompilerOptions
    ct_program: CinnamonProgram
    poly_program: PolyProgram
    limb_program: LimbProgram
    isa: object = None  # IsaModule when emit_isa was requested
    pass_stats: Optional[KeyswitchPassStats] = None
    comm_summary: Optional[CommSummary] = None
    compile_stats: Optional[CompileStats] = None
    params: object = None  # CKKSParams/ArchParams used for the compile
    cache_key: Optional[str] = None  # set by the runtime session

    @property
    def instruction_count(self) -> int:
        return 0 if self.isa is None else self.isa.instruction_count

    # ------------------------------------------------------------------ #
    # Convenience surface (the `repro.compile()` facade returns this).

    def simulate(self, machine=None, tag: str = ""):
        """Cycle-simulate the compiled ISA on ``machine``.

        ``machine`` accepts any spec :func:`resolve_machine` understands;
        ``None`` simulates on the standard machine matching the compile's
        chip count.  ``tag`` is carried into runtime traces by sessions.
        """
        del tag  # meaningful only for the caching session wrapper
        if self.isa is None:
            raise ValueError(
                "program was compiled with emit_isa=False; nothing to "
                "simulate")
        from ..sim.config import resolve_machine
        from ..sim.simulator import SimulatorEngine

        resolved = resolve_machine(
            machine if machine is not None
            else (self.options.machine or self.options.num_chips))
        return SimulatorEngine(resolved).run(self.isa)

    def emulate(self, inputs: dict, *, context, plaintexts: dict = None):
        """Run the compiled ISA on real limb data and return output cts.

        ``context`` is the :class:`repro.fhe.CKKSContext` that produced
        the input ciphertexts (the emulator needs its keys to build the
        memory image).
        """
        if self.isa is None:
            raise ValueError(
                "program was compiled with emit_isa=False; nothing to "
                "emulate")
        from .isa.emulator import emulate as _emulate

        return _emulate(self, context, inputs, plaintexts)

    def summarize_comm(self, release: bool = False) -> CommSummary:
        """Distill (and cache) the limb IR's communication statistics.

        With ``release=True`` the limb IR op list is dropped afterwards to
        reclaim memory — compiled bootstraps run to ~1 GB of Python
        objects, of which the limb IR is most.
        """
        if self.comm_summary is None:
            lp = self.limb_program
            self.comm_summary = CommSummary(
                broadcast_events=lp.comm_events("broadcast"),
                aggregate_events=lp.comm_events("aggregate"),
                comm_limbs=lp.comm_limbs(),
                limb_ops=len(lp.ops),
            )
        if release:
            self.limb_program.ops = []
            self.limb_program.domains = {}
        return self.comm_summary


class CompilerDriver:
    """Compiles DSL programs for a Cinnamon machine configuration.

    The non-deprecated implementation used by :func:`repro.compile` and
    :class:`repro.runtime.CinnamonSession`; it never warns, so internal
    callers use it directly.
    """

    def __init__(self, params, options: CompilerOptions = None):
        """``params`` is a :class:`repro.fhe.CKKSParams` (functional, enables
        emulation) or :class:`repro.fhe.ArchParams` (symbolic, N = 64K).
        """
        self.params = params
        self.options = options or CompilerOptions()

    def compile(self, program: CinnamonProgram,
                emit_isa: bool = True) -> CompiledProgram:
        opts = self.options
        stats = CompileStats()
        clock = time.perf_counter
        started = clock()

        def timed(name, fn):
            t0 = clock()
            result = fn()
            stats.passes.append(PassTiming(name, clock() - t0))
            return result

        prog = timed("bootstrap_expansion",
                     lambda: self._expand_bootstraps(program))
        if opts.enable_optimizations:
            from .ir.optimize import optimize

            prog = timed("optimize", lambda: optimize(prog))
        ks_pass = KeyswitchPass(opts.keyswitch_policy, opts.enable_batching)
        prog = timed("keyswitch", lambda: ks_pass.run(prog))
        prog = timed("alignment", lambda: ctpasses.insert_alignment(prog))
        if hasattr(self.params, "moduli"):
            timed("scale_inference",
                  lambda: ctpasses.infer_scales(prog, self.params))
        poly = timed("lower_to_poly", lambda: lower_to_poly(prog))
        limb = timed("lower_to_limb", lambda: lower_to_limb(
            poly, self.params, opts.num_chips,
            chips_per_stream=opts.chips_per_stream,
            num_digits=opts.num_digits,
            regenerate_evalkeys=opts.regenerate_evalkeys,
        ))
        compiled = CompiledProgram(
            name=program.name,
            options=opts,
            ct_program=prog,
            poly_program=poly,
            limb_program=limb,
            pass_stats=ks_pass.stats,
            compile_stats=stats,
            params=self.params,
        )
        if emit_isa:
            from .isa.codegen import generate_isa

            compiled.isa = timed("codegen", lambda: generate_isa(
                limb, opts.num_chips, opts.registers_per_chip))
        stats.total_seconds = clock() - started
        stats.counters = {
            "ct_ops": len(prog.ops),
            "poly_ops": len(poly.ops),
            "limb_ops": len(limb.ops),
            "isa_instructions": compiled.instruction_count,
            "keyswitches": ks_pass.stats.keyswitches,
        }
        return compiled

    # ------------------------------------------------------------------ #

    def _expand_bootstraps(self, program: CinnamonProgram) -> CinnamonProgram:
        if any(op.opcode == "bootstrap" for op in program.ops):
            from .ir.bootstrap_graph import expand_bootstraps

            return expand_bootstraps(program, self.params,
                                     plan=self.options.bootstrap_plan)
        return program


class CinnamonCompiler(CompilerDriver):
    """Deprecated alias of :class:`CompilerDriver`.

    Prefer :func:`repro.compile` (one-shot) or
    :class:`repro.runtime.CinnamonSession` (cached + traced).
    """

    def __init__(self, params, options: CompilerOptions = None):
        warnings.warn(
            "CinnamonCompiler is deprecated; use repro.compile(...) or "
            "repro.runtime.CinnamonSession",
            DeprecationWarning, stacklevel=2)
        super().__init__(params, options)
