"""The Cinnamon compiler driver.

Pipeline (Figure 7):

    DSL program
      -> bootstrap expansion        (ct level; inlines bootstrap op graphs)
      -> keyswitch pass             (pattern detection, algorithm selection)
      -> alignment + scale inference
      -> polynomial IR              (ciphertexts -> component polynomials)
      -> limb IR                    (limb partitioning, keyswitch expansion,
                                     explicit communication)
      -> Cinnamon ISA               (per-chip streams, Belady registers)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .dsl.program import CinnamonProgram
from .ir import ctpasses
from .ir.limb_ir import LimbProgram, lower_to_limb
from .ir.passes import KeyswitchPass
from .ir.poly_ir import PolyProgram, lower_to_poly


@dataclass
class CompilerOptions:
    """Machine layout and optimization switches.

    ``num_chips`` is the whole machine; ``chips_per_stream`` carves it into
    stream groups (defaults to an even split across the program's streams).
    ``keyswitch_policy`` and ``enable_batching`` drive the keyswitch pass
    (Section 7.3's configurations).  ``registers_per_chip`` sizes the
    register file for allocation (224 x 256 KB limbs = 56 MB by default).
    """

    num_chips: int = 4
    chips_per_stream: Optional[int] = None
    keyswitch_policy: str = "cinnamon"
    enable_batching: bool = True
    num_digits: Optional[int] = None
    registers_per_chip: int = 224
    bootstrap_plan: object = None  # BootstrapPlan; default chosen per params
    regenerate_evalkeys: bool = True  # PRNG unit regenerates evk 'a' limbs
    enable_optimizations: bool = True  # ct-level CSE + DCE


@dataclass
class CompiledProgram:
    """Everything the simulator, emulator, and benchmarks consume."""

    name: str
    options: CompilerOptions
    ct_program: CinnamonProgram
    poly_program: PolyProgram
    limb_program: LimbProgram
    isa: object = None  # IsaModule when emit_isa was requested
    pass_stats: object = None
    comm_summary: dict = None  # filled by callers that release the limb IR

    @property
    def instruction_count(self) -> int:
        return 0 if self.isa is None else self.isa.instruction_count


class CinnamonCompiler:
    """Compiles DSL programs for a Cinnamon machine configuration."""

    def __init__(self, params, options: CompilerOptions = None):
        """``params`` is a :class:`repro.fhe.CKKSParams` (functional, enables
        emulation) or :class:`repro.fhe.ArchParams` (symbolic, N = 64K).
        """
        self.params = params
        self.options = options or CompilerOptions()

    def compile(self, program: CinnamonProgram,
                emit_isa: bool = True) -> CompiledProgram:
        opts = self.options
        prog = self._expand_bootstraps(program)
        if opts.enable_optimizations:
            from .ir.optimize import optimize

            prog = optimize(prog)
        ks_pass = KeyswitchPass(opts.keyswitch_policy, opts.enable_batching)
        prog = ks_pass.run(prog)
        prog = ctpasses.insert_alignment(prog)
        if hasattr(self.params, "moduli"):
            ctpasses.infer_scales(prog, self.params)
        poly = lower_to_poly(prog)
        limb = lower_to_limb(
            poly, self.params, opts.num_chips,
            chips_per_stream=opts.chips_per_stream,
            num_digits=opts.num_digits,
            regenerate_evalkeys=opts.regenerate_evalkeys,
        )
        compiled = CompiledProgram(
            name=program.name,
            options=opts,
            ct_program=prog,
            poly_program=poly,
            limb_program=limb,
            pass_stats=ks_pass.stats,
        )
        if emit_isa:
            from .isa.codegen import generate_isa

            compiled.isa = generate_isa(
                limb, opts.num_chips, opts.registers_per_chip)
        return compiled

    # ------------------------------------------------------------------ #

    def _expand_bootstraps(self, program: CinnamonProgram) -> CinnamonProgram:
        if any(op.opcode == "bootstrap" for op in program.ops):
            from .ir.bootstrap_graph import expand_bootstraps

            return expand_bootstraps(program, self.params,
                                     plan=self.options.bootstrap_plan)
        return program
