"""Classic ciphertext-level optimizations: DCE and CSE.

FHE programs traced from high-level model code routinely contain repeated
subexpressions (the same rotation or plaintext product computed in several
layers) and dead values (activations traced but never consumed).  Both are
brutally expensive under FHE — one redundant rotation costs a whole
keyswitch — so the compiler runs:

* **dead-code elimination**: drop every op that cannot reach an output;
* **common-subexpression elimination**: value-number pure ops and reuse
  the first occurrence (commutative ops are canonicalized first).

Both run before the keyswitch pass so that deduplicated rotations can
still be batched.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..dsl import program as ct
from ..dsl.program import CinnamonProgram, CtOp

_COMMUTATIVE = {ct.ADD, ct.MUL}
# Ops safe to value-number: pure functions of their inputs and attrs.
_PURE = {
    ct.ADD, ct.SUB, ct.NEGATE, ct.MUL, ct.MUL_PLAIN, ct.ADD_PLAIN,
    ct.ROTATE, ct.CONJUGATE, ct.RESCALE, "mod_switch",
}


def eliminate_dead_code(prog: CinnamonProgram) -> CinnamonProgram:
    """Remove ops that no output transitively depends on."""
    live: Set[int] = set()
    worklist: List[int] = []
    for op in prog.ops:
        if op.opcode == ct.OUTPUT:
            live.add(op.id)
            worklist.extend(op.inputs)
    while worklist:
        op_id = worklist.pop()
        if op_id in live:
            continue
        live.add(op_id)
        worklist.extend(prog.ops[op_id].inputs)
    if len(live) == len(prog.ops):
        return prog
    return _rebuild(prog, keep=lambda op: op.id in live)


def eliminate_common_subexpressions(prog: CinnamonProgram) -> CinnamonProgram:
    """Reuse identical pure ops (value numbering)."""
    out = CinnamonProgram(prog.name, prog.input_level,
                          prog.bootstrap_output_level)
    out.num_streams = prog.num_streams
    mapping: Dict[int, int] = {}
    table: Dict[Tuple, int] = {}
    for op in prog.ops:
        inputs = tuple(mapping[i] for i in op.inputs)
        if op.opcode in _PURE:
            canon = tuple(sorted(inputs)) if op.opcode in _COMMUTATIVE \
                else inputs
            # The stream is part of the key: merging identical ops across
            # streams would silently serialize program-level parallelism.
            key = (op.opcode, op.stream, canon,
                   tuple(sorted((k, v) for k, v in op.attrs.items()
                                if not k.startswith("ks_"))))
            if key in table:
                mapping[op.id] = table[key]
                continue
        clone = CtOp(
            id=len(out.ops),
            opcode=op.opcode,
            inputs=inputs,
            level=op.level,
            stream=op.stream,
            attrs=dict(op.attrs),
        )
        out.ops.append(clone)
        mapping[op.id] = clone.id
        if op.opcode in _PURE:
            table[key] = clone.id
        if op.opcode == ct.INPUT:
            out.inputs[op.attrs["name"]] = clone.id
        elif op.opcode == ct.OUTPUT:
            out.outputs[op.attrs["name"]] = clone.inputs[0]
    out.plaintexts = dict(prog.plaintexts)
    return out


def _rebuild(prog: CinnamonProgram, keep) -> CinnamonProgram:
    out = CinnamonProgram(prog.name, prog.input_level,
                          prog.bootstrap_output_level)
    out.num_streams = prog.num_streams
    mapping: Dict[int, int] = {}
    for op in prog.ops:
        if not keep(op):
            continue
        clone = CtOp(
            id=len(out.ops),
            opcode=op.opcode,
            inputs=tuple(mapping[i] for i in op.inputs),
            level=op.level,
            stream=op.stream,
            attrs=dict(op.attrs),
        )
        out.ops.append(clone)
        mapping[op.id] = clone.id
        if op.opcode == ct.INPUT:
            out.inputs[op.attrs["name"]] = clone.id
        elif op.opcode == ct.OUTPUT:
            out.outputs[op.attrs["name"]] = clone.inputs[0]
    out.plaintexts = dict(prog.plaintexts)
    return out


def optimize(prog: CinnamonProgram) -> CinnamonProgram:
    """The standard pipeline: CSE, then DCE."""
    return eliminate_dead_code(eliminate_common_subexpressions(prog))
