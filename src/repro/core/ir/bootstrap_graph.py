"""Ciphertext-level expansion of bootstrap ops.

``handle.bootstrap()`` records a single DSL op; before polynomial lowering
the compiler inlines it into the actual bootstrapping op graph (Han-Ki
structure, as accelerated by ARK/CraterLake and used in the paper's
Bootstrap benchmark):

* **ModRaise** to the top of the chain;
* **CoeffToSlot**: ``stages`` homomorphic BSGS matrix multiplications with
  sparse FFT-factor matrices (radix-``r`` - each stage has ~``2r-1``
  diagonals), then conjugations to extract the real parts;
* **EvalMod**: Chebyshev evaluation of the scaled sine (baby-step/giant-
  step powers plus the block recombination);
* **SlotToCoeff**: ``stages`` more BSGS matmuls.

The expansion emits real DSL ops (rotations, plaintext muls, adds), so the
keyswitch pass sees bootstrapping's hoistable rotation batches and
rotate-aggregate trees exactly as it would in the paper's compiler.  The
plaintext operands (FFT factors, Chebyshev coefficients) are bound by name;
they are compiled symbolically and the *functional* bootstrap is validated
separately by :mod:`repro.fhe.bootstrap` (see DESIGN.md section 5).

Two presets reproduce the paper's Section 7.5 configurations:
``BOOTSTRAP_13`` refreshes 13 usable levels; ``BOOTSTRAP_21`` refreshes 21
(a deeper chain with nearly twice the compute).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from ..dsl.program import CinnamonProgram, CiphertextHandle, CtOp

MOD_RAISE = "mod_raise"


@dataclass(frozen=True)
class BootstrapPlan:
    """Level budget and transform structure of one bootstrap variant."""

    name: str
    top_level: int            # chain length after ModRaise (paper: 51)
    output_level: int         # levels handed back to the application + 1
    cts_stages: int = 3
    cts_radix: int = 32
    eval_mod_degree: int = 63
    eval_mod_doublings: int = 2

    @property
    def consumed_levels(self) -> int:
        return self.top_level - self.output_level

    def eval_mod_levels(self) -> int:
        baby = 1 << max(1, math.ceil(math.log2(math.sqrt(self.eval_mod_degree + 1))))
        giants = max(0, int(math.log2(max(1, self.eval_mod_degree // baby))))
        recombine = max(1, giants)
        return int(math.log2(baby)) + giants + recombine + self.eval_mod_doublings


# The paper's Bootstrap benchmark: raise to l=51, consume 36, leave 13+1.
BOOTSTRAP_13 = BootstrapPlan("bootstrap-13", top_level=51, output_level=14)
# Section 7.5's deeper variant: refresh 21 levels with ~2x the compute.
BOOTSTRAP_21 = BootstrapPlan(
    "bootstrap-21", top_level=59, output_level=22,
    cts_stages=4, cts_radix=32, eval_mod_degree=127, eval_mod_doublings=3)


def expand_bootstraps(prog: CinnamonProgram, params,
                      plan: BootstrapPlan = None) -> CinnamonProgram:
    """Inline every ``bootstrap`` op with the plan's op graph."""
    plan = plan or default_plan(params)
    if plan.top_level > params.max_level:
        raise ValueError(
            f"bootstrap plan needs {plan.top_level} levels; parameters have "
            f"{params.max_level}"
        )
    out = CinnamonProgram(prog.name, prog.input_level, plan.output_level)
    out.num_streams = prog.num_streams
    mapping = {}
    counter = [0]
    for op in prog.ops:
        if op.opcode == "bootstrap":
            out._current_stream = op.stream
            source = CiphertextHandle(out, mapping[op.inputs[0]],
                                      out.ops[mapping[op.inputs[0]]].level)
            result = append_bootstrap(out, source, plan, tag=counter[0])
            counter[0] += 1
            mapping[op.id] = result.op_id
            continue
        clone = CtOp(
            id=len(out.ops),
            opcode=op.opcode,
            inputs=tuple(mapping[i] for i in op.inputs),
            level=op.level,
            stream=op.stream,
            attrs=dict(op.attrs),
        )
        out.ops.append(clone)
        mapping[op.id] = clone.id
        if op.opcode == "input":
            out.inputs[op.attrs["name"]] = clone.id
        elif op.opcode == "output":
            out.outputs[op.attrs["name"]] = clone.inputs[0]
    out._current_stream = 0
    return out


def default_plan(params) -> BootstrapPlan:
    if params.max_level >= BOOTSTRAP_13.top_level:
        return BOOTSTRAP_13
    # Scaled-down plan for functional parameter sets in tests.  The mini
    # pipeline consumes ~8 levels (1 CtS + 1 unpack + ~4 EvalMod + 1 pack
    # + 1 StC), so it needs a chain of at least 10.
    top = params.max_level
    if top < 10:
        raise ValueError(
            f"bootstrap expansion needs at least 10 levels, got {top}"
        )
    return BootstrapPlan("bootstrap-mini", top_level=top,
                         output_level=2,
                         cts_stages=1, cts_radix=4,
                         eval_mod_degree=7, eval_mod_doublings=0)


def append_bootstrap(prog: CinnamonProgram, ct: CiphertextHandle,
                     plan: BootstrapPlan, tag: int) -> CiphertextHandle:
    """Emit the bootstrap op graph; returns the refreshed handle."""
    raised = _mod_raise(prog, ct, plan.top_level)
    t_lo, t_hi = _coeff_to_slot(prog, raised, plan)
    m_lo = _eval_mod(prog, t_lo, plan, "em")
    m_hi = _eval_mod(prog, t_hi, plan, "em")  # same sine coefficients
    result = _slot_to_coeff(prog, m_lo, m_hi, plan)
    if result.level < plan.output_level:
        raise ValueError(
            f"bootstrap plan {plan.name!r} output level {plan.output_level} "
            f"exceeds the {result.level} levels its own pipeline leaves"
        )
    if result.level > plan.output_level:
        result = prog._record("mod_switch", (result,),
                              level=plan.output_level)
    return result


def _mod_raise(prog: CinnamonProgram, ct: CiphertextHandle,
               top_level: int) -> CiphertextHandle:
    if ct.level > 1:
        # Budget-exhausted entry: drop the remaining limbs before raising
        # (real pipelines enter the raise at the single base modulus).
        ct = prog._record("mod_switch", (ct,), level=1)
    return prog._record(MOD_RAISE, (ct,), level=top_level)


def _bsgs_matmul(prog: CinnamonProgram, ct: CiphertextHandle,
                 num_diagonals: int, pt_prefix: str) -> CiphertextHandle:
    """One BSGS diagonal matmul; the source of bootstrap's rotations."""
    n1 = 1 << max(0, math.ceil(math.log2(math.sqrt(num_diagonals))))
    n2 = math.ceil(num_diagonals / n1)
    rotated = {0: ct}
    for i in range(1, n1):
        rotated[i] = ct.rotate(i)  # hoistable batch (pattern 1)
    outer_terms: List[CiphertextHandle] = []
    d = 0
    for j in range(n2):
        inner = None
        for i in range(n1):
            if d >= num_diagonals:
                break
            term = rotated[i] * prog.plaintext(f"{pt_prefix}_d{d}")
            inner = term if inner is None else inner + term
            d += 1
        if inner is None:
            continue
        if j:
            inner = inner.rotate(j * n1)  # rotate-aggregate (pattern 2)
        outer_terms.append(inner)
    acc = outer_terms[0]
    for term in outer_terms[1:]:
        acc = acc + term
    return acc


def _coeff_to_slot(prog, ct, plan: BootstrapPlan):
    x = ct
    for stage in range(plan.cts_stages):
        x = _bsgs_matmul(prog, x, 2 * plan.cts_radix - 1,
                         f"bs_cts{stage}")
    # Real-part extraction for the two coefficient halves.
    conj = x.conjugate()
    t_lo = x + conj
    t_hi = (x - conj) * prog.plaintext("bs_imag_unpack")
    return t_lo, t_hi


def _eval_mod(prog, ct, plan: BootstrapPlan, tag):
    degree = plan.eval_mod_degree
    baby = 1 << max(1, math.ceil(math.log2(math.sqrt(degree + 1))))
    powers = {1: ct}
    for i in range(2, baby + 1):
        half = i // 2
        other = i - half
        prod = powers[half] * powers[other]
        doubled = prod + prod
        powers[i] = doubled + (-1.0) if half == other else doubled - powers[1]
    g = baby
    while 2 * g <= degree:
        sq = powers[g] * powers[g]
        doubled = sq + sq
        powers[2 * g] = doubled + (-1.0)
        g *= 2
    # Block recombination: one plaintext-weighted baby sum per giant block,
    # then a multiply by the giant power (Paterson-Stockmeyer shape).
    blocks = []
    num_blocks = math.ceil((degree + 1) / baby)
    for blk in range(num_blocks):
        acc = None
        for i in range(1, baby + 1):
            term = powers[i] * prog.plaintext(f"bs_em_{tag}_b{blk}_{i}")
            acc = term if acc is None else acc + term
        blocks.append(acc)
    result = blocks[0]
    giant = baby
    for blk in blocks[1:]:
        result = result + blk * powers[min(giant, g)]
        giant = min(giant * 2, g)
    # Double-angle steps to stretch the approximation interval.
    for _ in range(plan.eval_mod_doublings):
        sq = result * result
        result = (sq + sq) + (-1.0)
    return result


def _slot_to_coeff(prog, m_lo, m_hi, plan: BootstrapPlan):
    combined = m_lo + m_hi * prog.plaintext("bs_imag_pack")
    x = combined
    for stage in range(plan.cts_stages):
        x = _bsgs_matmul(prog, x, 2 * plan.cts_radix - 1,
                         f"bs_stc{stage}")
    return x


# Public aliases: the BSGS matmul and Chebyshev-evaluation op-graph
# builders double as generic workload kernels (repro.workloads uses them).
bsgs_matmul_ops = _bsgs_matmul
eval_poly_ops = _eval_mod
