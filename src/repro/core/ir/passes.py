"""The Cinnamon keyswitch compiler pass (Section 4.3.1).

Detects the two program patterns whose communication the paper's parallel
keyswitching algorithms can batch, selects the algorithm per keyswitch, and
rewrites/annotates the ciphertext-level program:

* **Pattern 1 — many rotations of one ciphertext** (hoisting-friendly):
  all rotations sharing a source are tagged with one *input-broadcast
  batch*: the limb lowering broadcasts the source limbs and hoists the
  digit decomposition once, so the whole batch costs **1 broadcast**.
* **Pattern 2 — rotations feeding an aggregation tree**: the add tree is
  fused into a single ``rotate_sum`` op tagged *output-aggregation*: each
  chip accumulates its local partial keyswitch outputs and the batch ends
  with **2 aggregations** total.

Keyswitches outside either pattern default to input-broadcast (1 broadcast
each).  A ``cifher`` policy reproduces the CiFHER baseline: broadcast-based
keyswitching at every base conversion, where only the mod-up broadcast can
be batched and every keyswitch still pays 2 mod-down broadcasts (the O(r)
behaviour of Section 7.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from ..dsl import program as ct
from ..dsl.program import CinnamonProgram, CtOp

# Algorithm tags attached to keyswitch-carrying ops.
KS_SEQUENTIAL = "sequential"
KS_CIFHER = "cifher"
KS_INPUT_BROADCAST = "input_broadcast"
KS_OUTPUT_AGGREGATION = "output_aggregation"

#: The pattern-driven policy of the paper (Section 7.3's *Cinnamon
#: Keyswitch + Pass*): input-broadcast or output-aggregation per pattern.
KS_CINNAMON = "cinnamon"

#: Every keyswitch policy :class:`KeyswitchPass` accepts, canonical
#: spelling.  Exported through :mod:`repro.core` so the autotuner and
#: user code never hard-code the strings.
KEYSWITCH_POLICIES = (KS_CINNAMON, KS_INPUT_BROADCAST, KS_CIFHER,
                      KS_SEQUENTIAL)

# Fused op introduced by pattern 2.
ROTATE_SUM = "rotate_sum"


def normalize_keyswitch_policy(policy: str) -> str:
    """Canonicalize a keyswitch policy spelling.

    Accepts any case, ``-``/``_`` interchangeably, and the constant-style
    ``KS_`` prefix (``"KS_CIFHER"`` -> ``"cifher"``).  Raises
    :class:`ValueError` naming every valid choice otherwise.
    """
    if isinstance(policy, str):
        norm = policy.strip().lower().replace("-", "_")
        if norm.startswith("ks_"):
            norm = norm[len("ks_"):]
        if norm in KEYSWITCH_POLICIES:
            return norm
    raise ValueError(
        f"unknown keyswitch policy {policy!r}; valid choices: "
        + ", ".join(repr(p) for p in KEYSWITCH_POLICIES))


@dataclass
class KeyswitchPassStats:
    """What the pass found and how much communication it removed.

    Event counts use the paper's units: a broadcast or aggregation of one
    polynomial's limbs is one event.  ``events_unbatched`` is the cost had
    every keyswitch paid its own communication; ``events_batched`` is the
    cost after batching.
    """

    keyswitches: int = 0
    pattern1_batches: int = 0
    pattern1_members: int = 0
    pattern2_batches: int = 0
    pattern2_members: int = 0
    events_unbatched: int = 0
    events_batched: int = 0

    @property
    def reduction(self) -> float:
        if self.events_batched == 0:
            return 1.0
        return self.events_unbatched / self.events_batched


class KeyswitchPass:
    """Annotates/rewrites a ciphertext program with keyswitch algorithms."""

    def __init__(self, policy: str = "cinnamon", enable_batching: bool = True):
        """``policy``:

        * ``"cinnamon"`` — choose input-broadcast or output-aggregation per
          pattern (the paper's *Cinnamon Keyswitch + Pass*).
        * ``"input_broadcast"`` — input-broadcast everywhere (no pattern-2
          fusion); with batching this is *Input Broadcast + Pass*.
        * ``"cifher"`` — the CiFHER baseline.
        * ``"sequential"`` — no parallel keyswitching (single-chip runs).
        """
        self.policy = normalize_keyswitch_policy(policy)
        self.enable_batching = enable_batching
        self.stats = KeyswitchPassStats()

    # ------------------------------------------------------------------ #

    def run(self, prog: CinnamonProgram) -> CinnamonProgram:
        self.stats = KeyswitchPassStats()
        self._seen_batches = set()
        if self.policy == KS_CINNAMON and self.enable_batching:
            prog = self._fuse_rotate_sums(prog)
        self._annotate(prog)
        return prog

    # ------------------------------------------------------------------ #
    # Pattern 2: rotation + aggregation trees -> fused rotate_sum

    def _fuse_rotate_sums(self, prog: CinnamonProgram) -> CinnamonProgram:
        users = prog.users()
        consumed: Set[int] = set()    # add-tree interior nodes to delete
        fused_roots: Dict[int, List[Tuple[int, int]]] = {}  # root -> leaves

        def gather_leaves(op_id: int, acc: List[int], interior: Set[int]) -> None:
            op = prog.ops[op_id]
            for src in op.inputs:
                src_op = prog.ops[src]
                if src_op.opcode == ct.ADD and len(users[src]) == 1:
                    gather_leaves(src, acc, interior)
                    interior.add(src)
                else:
                    acc.append(src)

        # Roots: ADD ops not feeding another single-use ADD.
        for op in prog.ops:
            if op.opcode != ct.ADD:
                continue
            feeds_tree = any(
                prog.ops[u].opcode == ct.ADD for u in users[op.id]
            ) and len(users[op.id]) == 1
            if feeds_tree:
                continue
            leaves: List[int] = []
            interior: Set[int] = set()
            gather_leaves(op.id, leaves, interior)
            rotated = [
                leaf for leaf in leaves
                if prog.ops[leaf].opcode == ct.ROTATE and len(users[leaf]) == 1
            ]
            if len(rotated) >= 2:
                consumed |= interior
                members = []
                for leaf in leaves:
                    leaf_op = prog.ops[leaf]
                    if leaf_op.opcode == ct.ROTATE and len(users[leaf]) == 1:
                        members.append((leaf_op.inputs[0], leaf_op.attrs["rotation"]))
                        consumed.add(leaf)
                    else:
                        members.append((leaf, 0))
                fused_roots[op.id] = members
                self.stats.pattern2_batches += 1
                self.stats.pattern2_members += len(members)

        if not fused_roots:
            return prog

        # Rebuild the program with fused nodes in place of the trees.
        out = CinnamonProgram(prog.name, prog.input_level,
                              prog.bootstrap_output_level)
        out.num_streams = prog.num_streams
        out.plaintexts = dict(prog.plaintexts)
        mapping: Dict[int, int] = {}
        for op in prog.ops:
            if op.id in consumed:
                continue
            if op.id in fused_roots:
                members = fused_roots[op.id]
                new_op = CtOp(
                    id=len(out.ops),
                    opcode=ROTATE_SUM,
                    inputs=tuple(mapping[src] for src, _ in members),
                    level=op.level,
                    stream=op.stream,
                    attrs={
                        "rotations": tuple(r for _, r in members),
                        "ks_algorithm": KS_OUTPUT_AGGREGATION,
                        "ks_batch": f"oa{op.id}",
                    },
                )
            else:
                new_op = CtOp(
                    id=len(out.ops),
                    opcode=op.opcode,
                    inputs=tuple(mapping[i] for i in op.inputs),
                    level=op.level,
                    stream=op.stream,
                    attrs=dict(op.attrs),
                )
            out.ops.append(new_op)
            mapping[op.id] = new_op.id
            if op.opcode == ct.INPUT:
                out.inputs[op.attrs["name"]] = new_op.id
            elif op.opcode == ct.OUTPUT:
                out.outputs[op.attrs["name"]] = new_op.inputs[0]
        return out

    # ------------------------------------------------------------------ #
    # Pattern 1 + defaults

    def _annotate(self, prog: CinnamonProgram) -> None:
        default = {
            KS_CINNAMON: KS_INPUT_BROADCAST,
            KS_INPUT_BROADCAST: KS_INPUT_BROADCAST,
            KS_CIFHER: KS_CIFHER,
            KS_SEQUENTIAL: KS_SEQUENTIAL,
        }[self.policy]

        # Group rotations/conjugations by (source, level) for hoisting.
        groups: Dict[Tuple[int, int], List[CtOp]] = {}
        for op in prog.ops:
            if op.opcode in (ct.ROTATE, ct.CONJUGATE) and \
                    "ks_algorithm" not in op.attrs:
                groups.setdefault((op.inputs[0], op.level), []).append(op)

        batch_counter = 0
        for (src, _level), members in groups.items():
            if (
                self.enable_batching
                and len(members) >= 2
                and default in (KS_INPUT_BROADCAST, KS_CIFHER)
            ):
                batch = f"ib{batch_counter}"
                batch_counter += 1
                self.stats.pattern1_batches += 1
                self.stats.pattern1_members += len(members)
                for op in members:
                    op.attrs["ks_algorithm"] = default
                    op.attrs["ks_batch"] = batch
            else:
                for op in members:
                    op.attrs["ks_algorithm"] = default

        for op in prog.ops:
            if op.opcode == ct.MUL:
                op.attrs.setdefault("ks_algorithm", default)
            if op.opcode in (ct.MUL, ct.ROTATE, ct.CONJUGATE) or \
                    op.opcode == ROTATE_SUM:
                self._count_events(op)

    def _count_events(self, op: CtOp) -> None:
        stats = self.stats
        algorithm = op.attrs.get("ks_algorithm", KS_SEQUENTIAL)
        if op.opcode == ROTATE_SUM:
            r = len([x for x in op.attrs["rotations"] if x != 0])
            stats.keyswitches += r
            stats.events_unbatched += 2 * r  # unbatched output aggregation
            stats.events_batched += 2
            return
        stats.keyswitches += 1
        if algorithm == KS_SEQUENTIAL:
            return
        per_ks = 3 if algorithm == KS_CIFHER else 1
        stats.events_unbatched += per_ks
        if "ks_batch" in op.attrs:
            # Batches share the single mod-up broadcast; CiFHER members
            # still pay their 2 mod-down broadcasts each (Section 7.4).
            if algorithm == KS_CIFHER:
                stats.events_batched += 2
            key = op.attrs["ks_batch"]
            if key not in self._seen_batches:
                self._seen_batches.add(key)
                stats.events_batched += 1
        else:
            stats.events_batched += per_ks
