"""The polynomial-level IR (Figure 7 step 2).

Ciphertexts are expanded to their component polynomials: a ciphertext add
becomes two polynomial adds, a ciphertext multiplication becomes the
tensor-product polynomials plus a keyswitch of the quadratic component,
and a rotation becomes two automorphisms plus a keyswitch.  Keyswitches
remain *macro ops* at this level (``pks``); the limb IR expands them
according to the algorithm the keyswitch pass selected.

Ops produce exactly one polynomial.  Keyswitches, which produce a pair,
are represented as two ``pks`` nodes sharing a ``ks_id`` — the limb
lowering expands each keyswitch group exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..dsl import program as ct
from ..dsl.program import CinnamonProgram
from .passes import ROTATE_SUM

P_INPUT = "pinput"
P_OUTPUT = "poutput"
P_PLAIN = "pplain"
P_ADD = "padd"
P_SUB = "psub"
P_NEG = "pneg"
P_MUL = "pmul"
P_AUTO = "pauto"
P_KS = "pks"          # keyswitch component; attrs: ks_id, component, kind
P_ROTSUM = "protsum"  # fused rotate+aggregate component
P_RESCALE = "prescale"
P_DROP = "pdrop"
P_MODRAISE = "pmodraise"


@dataclass(slots=True)
class PolyOp:
    id: int
    opcode: str
    inputs: Tuple[int, ...]
    level: int
    stream: int
    attrs: dict = field(default_factory=dict)

    def __repr__(self):
        ins = ",".join(f"%{i}" for i in self.inputs)
        extra = ""
        if self.opcode == P_KS:
            extra = f" ks{self.attrs['ks_id']}.{self.attrs['component']}"
        return f"%{self.id} = {self.opcode}({ins}) L{self.level}{extra}"


class PolyProgram:
    """A polynomial-level program plus ciphertext -> polynomial mapping."""

    def __init__(self, name: str):
        self.name = name
        self.ops: List[PolyOp] = []
        self.ct_map: Dict[int, Tuple[int, int]] = {}
        self.outputs: Dict[str, Tuple[int, int]] = {}
        self.num_streams = 1
        self._ks_counter = 0

    def emit(self, opcode: str, inputs: Tuple[int, ...], level: int,
             stream: int, **attrs) -> int:
        op = PolyOp(len(self.ops), opcode, inputs, level, stream, attrs)
        self.ops.append(op)
        return op.id

    def new_ks_id(self) -> int:
        self._ks_counter += 1
        return self._ks_counter - 1

    def count(self, opcode: str) -> int:
        return sum(1 for op in self.ops if op.opcode == opcode)

    @property
    def keyswitch_count(self) -> int:
        seen = set()
        for op in self.ops:
            if op.opcode == P_KS:
                seen.add(op.attrs["ks_id"])
            elif op.opcode == P_ROTSUM and op.attrs["component"] == 0:
                seen.update(
                    f"rs{op.attrs['rs_id']}.{i}"
                    for i, r in enumerate(op.attrs["rotations"])
                    if r != 0
                )
        return len(seen)

    def dump(self) -> str:
        return "\n".join(repr(op) for op in self.ops)


def lower_to_poly(prog: CinnamonProgram) -> PolyProgram:
    """Lower a (pass-processed, aligned, scale-inferred) ct program."""
    poly = PolyProgram(prog.name)
    poly.num_streams = prog.num_streams
    out = poly  # alias for brevity

    def components(ct_id: int) -> Tuple[int, int]:
        return poly.ct_map[ct_id]

    for op in prog.ops:
        s = op.stream
        lvl = op.level
        a = op.attrs
        if op.opcode == ct.INPUT:
            p0 = out.emit(P_INPUT, (), lvl, s, name=a["name"], component=0)
            p1 = out.emit(P_INPUT, (), lvl, s, name=a["name"], component=1)
        elif op.opcode == ct.OUTPUT:
            c0, c1 = components(op.inputs[0])
            out.emit(P_OUTPUT, (c0,), lvl, s, name=a["name"], component=0)
            out.emit(P_OUTPUT, (c1,), lvl, s, name=a["name"], component=1)
            out.outputs[a["name"]] = (c0, c1)
            continue
        elif op.opcode in (ct.ADD, ct.SUB):
            opcode = P_ADD if op.opcode == ct.ADD else P_SUB
            (a0, a1), (b0, b1) = components(op.inputs[0]), components(op.inputs[1])
            p0 = out.emit(opcode, (a0, b0), lvl, s)
            p1 = out.emit(opcode, (a1, b1), lvl, s)
        elif op.opcode == ct.NEGATE:
            a0, a1 = components(op.inputs[0])
            p0 = out.emit(P_NEG, (a0,), lvl, s)
            p1 = out.emit(P_NEG, (a1,), lvl, s)
        elif op.opcode == ct.ADD_PLAIN:
            a0, a1 = components(op.inputs[0])
            pt = out.emit(P_PLAIN, (), lvl, s,
                          plaintext=a.get("plaintext"),
                          constant=a.get("constant"),
                          pt_scale=a.get("pt_scale"))
            p0 = out.emit(P_ADD, (a0, pt), lvl, s)
            p1 = a1
        elif op.opcode == ct.MUL_PLAIN:
            a0, a1 = components(op.inputs[0])
            in_level = prog.ops[op.inputs[0]].level
            pt = out.emit(P_PLAIN, (), in_level, s,
                          plaintext=a.get("plaintext"),
                          constant=a.get("constant"),
                          pt_scale=a.get("pt_scale"),
                          align=a.get("align", False))
            m0 = out.emit(P_MUL, (a0, pt), in_level, s)
            m1 = out.emit(P_MUL, (a1, pt), in_level, s)
            p0 = out.emit(P_RESCALE, (m0,), lvl, s)
            p1 = out.emit(P_RESCALE, (m1,), lvl, s)
        elif op.opcode == ct.MUL:
            (a0, a1), (b0, b1) = components(op.inputs[0]), components(op.inputs[1])
            in_level = prog.ops[op.inputs[0]].level
            d0 = out.emit(P_MUL, (a0, b0), in_level, s)
            t1 = out.emit(P_MUL, (a0, b1), in_level, s)
            t2 = out.emit(P_MUL, (a1, b0), in_level, s)
            d1 = out.emit(P_ADD, (t1, t2), in_level, s)
            d2 = out.emit(P_MUL, (a1, b1), in_level, s)
            ks_id = out.new_ks_id()
            ks_attrs = dict(kind="relin",
                            ks_id=ks_id,
                            algorithm=a.get("ks_algorithm", "sequential"),
                            batch=a.get("ks_batch"))
            ks0 = out.emit(P_KS, (d2,), in_level, s, component=0, **ks_attrs)
            ks1 = out.emit(P_KS, (d2,), in_level, s, component=1, **ks_attrs)
            sum0 = out.emit(P_ADD, (d0, ks0), in_level, s)
            sum1 = out.emit(P_ADD, (d1, ks1), in_level, s)
            p0 = out.emit(P_RESCALE, (sum0,), lvl, s)
            p1 = out.emit(P_RESCALE, (sum1,), lvl, s)
        elif op.opcode in (ct.ROTATE, ct.CONJUGATE):
            a0, a1 = components(op.inputs[0])
            galois = a.get("galois")
            if galois is None:
                galois = ("rotation", a["rotation"]) if op.opcode == ct.ROTATE \
                    else ("conjugation", None)
            r0 = out.emit(P_AUTO, (a0,), lvl, s, galois=galois)
            ks_id = out.new_ks_id()
            ks_attrs = dict(kind=("galois", galois),
                            ks_id=ks_id,
                            algorithm=a.get("ks_algorithm", "sequential"),
                            batch=a.get("ks_batch"),
                            galois=galois)
            ks0 = out.emit(P_KS, (a1,), lvl, s, component=0, **ks_attrs)
            ks1 = out.emit(P_KS, (a1,), lvl, s, component=1, **ks_attrs)
            p0 = out.emit(P_ADD, (r0, ks0), lvl, s)
            p1 = ks1
        elif op.opcode == ROTATE_SUM:
            comps = [components(i) for i in op.inputs]
            flat = tuple(p for pair in comps for p in pair)
            rs_id = out.new_ks_id()
            rs_attrs = dict(rotations=a["rotations"],
                            rs_id=rs_id,
                            algorithm=a.get("ks_algorithm"),
                            batch=a.get("ks_batch"))
            p0 = out.emit(P_ROTSUM, flat, lvl, s, component=0, **rs_attrs)
            p1 = out.emit(P_ROTSUM, flat, lvl, s, component=1, **rs_attrs)
        elif op.opcode == ct.RESCALE:
            a0, a1 = components(op.inputs[0])
            p0 = out.emit(P_RESCALE, (a0,), lvl, s)
            p1 = out.emit(P_RESCALE, (a1,), lvl, s)
        elif op.opcode == "mod_switch":
            a0, a1 = components(op.inputs[0])
            p0 = out.emit(P_DROP, (a0,), lvl, s)
            p1 = out.emit(P_DROP, (a1,), lvl, s)
        elif op.opcode == "mod_raise":
            a0, a1 = components(op.inputs[0])
            p0 = out.emit(P_MODRAISE, (a0,), lvl, s)
            p1 = out.emit(P_MODRAISE, (a1,), lvl, s)
        elif op.opcode == ct.BOOTSTRAP:
            raise ValueError(
                "bootstrap ops must be expanded before polynomial lowering "
                "(the compiler's expand_bootstraps pass does this)"
            )
        else:
            raise ValueError(f"cannot lower ct opcode {op.opcode!r}")
        poly.ct_map[op.id] = (p0, p1)
    return poly
