"""Cinnamon compiler intermediate representations and passes."""

from .poly_ir import PolyProgram, lower_to_poly
from .limb_ir import LimbProgram, lower_to_limb
from .passes import KeyswitchPass, KS_SEQUENTIAL, KS_CIFHER, KS_INPUT_BROADCAST, \
    KS_OUTPUT_AGGREGATION

__all__ = [
    "PolyProgram",
    "lower_to_poly",
    "LimbProgram",
    "lower_to_limb",
    "KeyswitchPass",
    "KS_SEQUENTIAL",
    "KS_CIFHER",
    "KS_INPUT_BROADCAST",
    "KS_OUTPUT_AGGREGATION",
]
