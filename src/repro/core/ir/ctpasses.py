"""Ciphertext-level compiler passes.

Two passes run on the captured DSL program before polynomial lowering:

* :func:`insert_alignment` — makes level alignment explicit.  The
  functional evaluator spends one of the limbs being dropped on a
  scale-correcting constant multiplication (``match_level``); the compiler
  materializes the same operation so the emulator reproduces evaluator
  semantics exactly.
* :func:`infer_scales` — replays the evaluator's exact-scale bookkeeping
  statically, annotating every op with the scale of its result and every
  plaintext operand with the encoding scale the memory image must use.
"""

from __future__ import annotations

from typing import List

from ..dsl import program as ct
from ..dsl.program import CinnamonProgram, CtOp


def insert_alignment(prog: CinnamonProgram) -> CinnamonProgram:
    """Rewrite the program so every multi-operand op has equal-level inputs.

    Returns a new program; ops needing alignment gain a preceding
    ``mul_plain`` of the constant 1.0 flagged with ``align=True`` (the
    scale-inference pass assigns it the exact correcting plaintext scale).
    """
    out = CinnamonProgram(prog.name, prog.input_level,
                          prog.bootstrap_output_level)
    out.num_streams = prog.num_streams
    mapping: List[int] = []  # old id -> new id

    def align(new_id: int, level: int, target: int, stream: int) -> int:
        while level > target:
            op = CtOp(
                id=len(out.ops),
                opcode=ct.MUL_PLAIN,
                inputs=(new_id,),
                level=level - 1,
                stream=stream,
                attrs={"constant": 1.0, "align": True},
            )
            out.ops.append(op)
            new_id = op.id
            level -= 1
        return new_id

    multi_operand = (ct.ADD, ct.SUB, ct.MUL, "rotate_sum")
    for op in prog.ops:
        new_inputs = tuple(mapping[i] for i in op.inputs)
        if op.opcode in multi_operand and len(op.inputs) >= 2:
            levels = [prog.ops[i].level for i in op.inputs]
            target = min(levels)
            new_inputs = tuple(
                align(new_id, lvl, target, op.stream)
                for new_id, lvl in zip(new_inputs, levels)
            )
        clone = CtOp(
            id=len(out.ops),
            opcode=op.opcode,
            inputs=new_inputs,
            level=op.level,
            stream=op.stream,
            attrs=dict(op.attrs),
        )
        out.ops.append(clone)
        mapping.append(clone.id)
        if op.opcode == ct.INPUT:
            out.inputs[op.attrs["name"]] = clone.id
        elif op.opcode == ct.OUTPUT:
            out.outputs[op.attrs["name"]] = clone.inputs[0]
        if "plaintext" in op.attrs:
            out.plaintexts.setdefault(op.attrs["plaintext"], op.level)
    return out


def infer_scales(prog: CinnamonProgram, params) -> None:
    """Annotate ops with exact result scales (requires concrete CKKSParams).

    Mirrors :class:`repro.fhe.evaluator.Evaluator`:

    * fresh inputs sit on the level invariant;
    * ct-ct multiplication multiplies scales and rescales by the consumed
      prime;
    * plaintext multiplications encode the plaintext at
      ``S_target * q / s`` so the product rescales onto the invariant;
    * rotations/conjugations/adds keep the scale.

    Plaintext encoding scales land in ``op.attrs["pt_scale"]``.
    """
    for op in prog.ops:
        if op.opcode == ct.INPUT:
            op.attrs["scale"] = params.scale_at_level(op.level)
        elif op.opcode == ct.BOOTSTRAP:
            op.attrs["scale"] = params.scale_at_level(op.level)
        elif op.opcode in (ct.ADD, ct.SUB):
            scales = [prog.ops[i].attrs["scale"] for i in op.inputs]
            # Per-level invariant scales agree to within a few ppm (greedy
            # prime assignment); anything beyond 0.1% signals a real bug.
            if abs(scales[0] - scales[1]) > 1e-3 * scales[0]:
                raise ValueError(
                    f"op %{op.id}: operand scales diverge after alignment"
                )
            op.attrs["scale"] = scales[0]
        elif op.opcode in (ct.NEGATE, ct.ROTATE, ct.CONJUGATE, ct.OUTPUT,
                           "rotate_sum", "mod_switch"):
            op.attrs["scale"] = prog.ops[op.inputs[0]].attrs["scale"]
        elif op.opcode == "mod_raise":
            # ModRaise re-declares the scale as q0 * s: an exact division of
            # the raised plaintext by q0 (see repro.fhe.bootstrap).
            s = prog.ops[op.inputs[0]].attrs["scale"]
            op.attrs["scale"] = s * params.moduli[0]
        elif op.opcode == ct.ADD_PLAIN:
            s = prog.ops[op.inputs[0]].attrs["scale"]
            op.attrs["scale"] = s
            op.attrs["pt_scale"] = s
        elif op.opcode == ct.MUL:
            s = 1.0
            for i in op.inputs:
                s *= prog.ops[i].attrs["scale"]
            q = params.moduli[op.level]  # prime consumed by the rescale
            op.attrs["scale"] = s / q
        elif op.opcode == ct.MUL_PLAIN:
            s = prog.ops[op.inputs[0]].attrs["scale"]
            q = params.moduli[op.level]
            target = params.scale_at_level(op.level)
            pt_scale = target * q / s
            op.attrs["pt_scale"] = pt_scale
            op.attrs["scale"] = target
        elif op.opcode == ct.RESCALE:
            s = prog.ops[op.inputs[0]].attrs["scale"]
            q = params.moduli[op.level]
            op.attrs["scale"] = s / q
        else:
            raise ValueError(f"unknown opcode {op.opcode!r}")
