"""Limb-IR verifier: structural invariants the lowering must uphold.

Run after lowering (and in tests) to catch compiler bugs early:

* **SSA**: every operand id refers to an earlier op; no forward refs.
* **Chip locality**: compute ops only read values produced on their own
  chip — any cross-chip value must arrive via a move or collective.
* **Domain discipline**: NTT consumes coefficient-domain limbs, INTT
  evaluation-domain ones; base conversion and RNS-resolve operate in the
  coefficient domain; automorphisms in the evaluation domain.
* **Collective integrity**: every ``lrecv`` names a collective that
  exists, participates in its group, and requests a tag the collective
  carries.
* **BCU bound**: no base conversion exceeds the configured input-limb
  limit (13 for the Cinnamon BCU).
"""

from __future__ import annotations

from typing import Dict

from . import limb_ir as lir


class VerificationError(AssertionError):
    """A structural invariant of the limb IR was violated."""


def verify_limb_program(program: lir.LimbProgram,
                        bconv_max_inputs: int = 13) -> int:
    """Check all invariants; returns the number of ops verified."""
    domains = program.domains
    producer_chip: Dict[int, int] = {}
    comm_ops: Dict[int, lir.LimbOp] = {}

    for op in program.ops:
        for value in op.inputs:
            if value >= op.id:
                raise VerificationError(
                    f"%{op.id} ({op.opcode}) uses not-yet-defined %{value}")

        if op.opcode == lir.L_COMM:
            comm_ops[op.attrs["cid"]] = op
            continue

        if op.opcode == lir.L_RECV:
            cid = op.attrs["cid"]
            if cid not in comm_ops:
                raise VerificationError(
                    f"%{op.id} receives from unknown collective {cid}")
            comm = comm_ops[cid]
            if op.chip not in comm.attrs["group"]:
                raise VerificationError(
                    f"%{op.id} on chip {op.chip} outside collective group "
                    f"{comm.attrs['group']}")
            if op.attrs["tag"] not in comm.attrs["tags"]:
                raise VerificationError(
                    f"%{op.id} requests tag {op.attrs['tag']!r} the "
                    f"collective does not carry")
            producer_chip[op.id] = op.chip
            continue

        if op.opcode == lir.L_MOV:
            src = op.inputs[0]
            if producer_chip.get(src) != op.attrs["from_chip"]:
                raise VerificationError(
                    f"%{op.id} moves %{src} from chip "
                    f"{op.attrs['from_chip']} but it lives on "
                    f"{producer_chip.get(src)}")
            producer_chip[op.id] = op.chip
            continue

        # Compute / load / store ops: all operands must be chip-local.
        for value in op.inputs:
            home = producer_chip.get(value)
            if home is not None and home != op.chip:
                raise VerificationError(
                    f"%{op.id} ({op.opcode}) on chip {op.chip} reads "
                    f"%{value} homed on chip {home} without a move")

        # Domain discipline.
        if op.opcode == lir.L_NTT:
            _expect_domain(domains, op, COEFF_IN=True)
        elif op.opcode == lir.L_INTT:
            _expect_domain(domains, op, COEFF_IN=False)
        elif op.opcode in (lir.L_BCONV, lir.L_RSV):
            _expect_domain(domains, op, COEFF_IN=True)
        elif op.opcode == lir.L_AUTO:
            _expect_domain(domains, op, COEFF_IN=False)

        if op.opcode == lir.L_BCONV and len(op.inputs) > bconv_max_inputs:
            raise VerificationError(
                f"%{op.id} converts {len(op.inputs)} input limbs; the BCU "
                f"supports at most {bconv_max_inputs}")

        if op.opcode != lir.L_STORE:
            producer_chip[op.id] = op.chip
    return len(program.ops)


def _expect_domain(domains, op, COEFF_IN: bool):
    want = lir.COEFF if COEFF_IN else lir.EVAL
    for value in op.inputs:
        got = domains.get(value)
        if got is not None and got != want:
            raise VerificationError(
                f"%{op.id} ({op.opcode}) expects {want}-domain operands; "
                f"%{value} is {got}")
