"""The limb-level IR (Figure 7 steps 4-7).

Every polynomial op is expanded into per-limb vector ops placed on chips by
Cinnamon's modular partition: limb ``i`` of a stream's polynomials lives on
chip ``group[i mod len(group)]`` where ``group`` is the chip group assigned
to the op's stream.  Keyswitch macro-ops are expanded according to the
algorithm chosen by the keyswitch pass; all inter-chip communication is
explicit (``lcomm``/``lrecv`` ops), so both the cycle simulator and the
communication accounting read straight off this IR.

Limb opcodes:

========  ==================================================================
lload     load a limb from HBM (program input, evalkey, plaintext)
lprng     regenerate a pseudorandom evalkey limb on-chip (PRNG unit)
lstore    store a limb to HBM (program output)
ladd/lsub/lneg/lmul   element-wise modular vector ops
lmulc     multiply by a scalar residue
lntt/lintt            (inverse) negacyclic NTT of one limb
lauto     evaluation-domain automorphism (slot permutation)
lrsv      RNS-resolve: centered re-reduction q_a -> q_b (coeff domain)
lbconv    one base-conversion output limb from up to 13 input limbs (BCU)
lmov      point-to-point limb move between chips
lcomm     collective (broadcast or aggregate) over a chip group
lrecv     materialize one limb delivered by a collective on a chip
========  ==================================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .poly_ir import PolyProgram
from .passes import KS_CIFHER, KS_INPUT_BROADCAST, KS_OUTPUT_AGGREGATION, \
    KS_SEQUENTIAL

L_LOAD = "lload"
L_PRNG = "lprng"
L_STORE = "lstore"
L_ADD = "ladd"
L_SUB = "lsub"
L_NEG = "lneg"
L_MUL = "lmul"
L_MULC = "lmulc"
L_NTT = "lntt"
L_INTT = "lintt"
L_AUTO = "lauto"
L_RSV = "lrsv"
L_BCONV = "lbconv"
L_MOV = "lmov"
L_COMM = "lcomm"
L_RECV = "lrecv"

COMPUTE_OPS = (L_ADD, L_SUB, L_NEG, L_MUL, L_MULC, L_NTT, L_INTT, L_AUTO,
               L_RSV, L_BCONV)

COEFF = "coeff"
EVAL = "eval"


@dataclass(slots=True)
class LimbOp:
    id: int
    opcode: str
    chip: int
    inputs: Tuple[int, ...]
    attrs: dict = field(default_factory=dict)

    def __repr__(self):
        ins = ",".join(f"%{i}" for i in self.inputs)
        return f"%{self.id} = {self.opcode}@{self.chip}({ins})"


@dataclass
class PolyValue:
    """A polynomial materialized as per-limb SSA values.

    ``limbs[i]`` is the limb-op id producing limb ``i``; ``chips[i]`` its
    home chip; all limbs share ``domain``.
    """

    limbs: List[int]
    chips: List[int]
    domain: str

    @property
    def level(self) -> int:
        return len(self.limbs)


class LimbProgram:
    """A limb-level program for one machine configuration."""

    def __init__(self, name: str, num_chips: int):
        self.name = name
        self.num_chips = num_chips
        self.ops: List[LimbOp] = []
        self.domains: Dict[int, str] = {}
        self.plaintext_defs: Dict[str, dict] = {}
        self.evalkeys: set = set()
        self.outputs: Dict[str, Tuple[PolyValue, PolyValue]] = {}
        self._comm_counter = 0

    # ------------------------------------------------------------------ #

    def emit(self, opcode: str, chip: int, inputs: Tuple[int, ...] = (),
             domain: str = None, **attrs) -> int:
        op = LimbOp(len(self.ops), opcode, chip, tuple(inputs), attrs)
        self.ops.append(op)
        if domain is not None:
            self.domains[op.id] = domain
        return op.id

    def new_comm_id(self) -> int:
        self._comm_counter += 1
        return self._comm_counter - 1

    # ------------------------------------------------------------------ #
    # Statistics (consumed by benchmarks and the simulator)

    def count(self, opcode: str) -> int:
        return sum(1 for op in self.ops if op.opcode == opcode)

    def comm_events(self, kind: str = None) -> int:
        return sum(
            1 for op in self.ops
            if op.opcode == L_COMM and (kind is None or op.attrs["kind"] == kind)
        )

    def comm_limbs(self) -> int:
        """Total limb payloads crossing chip boundaries."""
        total = 0
        for op in self.ops:
            if op.opcode == L_COMM:
                total += op.attrs["limbs_moved"]
            elif op.opcode == L_MOV:
                total += 1
        return total

    def ops_on_chip(self, chip: int) -> List[LimbOp]:
        return [op for op in self.ops if op.chip == chip or op.opcode == L_COMM]

    def dump(self, limit: int = None) -> str:
        ops = self.ops if limit is None else self.ops[:limit]
        return "\n".join(repr(op) for op in ops)


class _KeyswitchContext:
    """Digit structure and scalar factors for keyswitching at one level."""

    def __init__(self, params, level: int, partition, partition_sig: str):
        self.level = level
        self.partition = partition
        self.partition_sig = partition_sig
        self.concrete = hasattr(params, "moduli")
        if self.concrete:
            self.active = list(params.basis_at_level(level))
            self.ext = list(params.extension_moduli)
        else:
            self.active = [None] * level
            self.ext = [None] * params.extension_count
        self.extended = self.active + self.ext
        self.num_ext = len(self.ext)

    def digit_primes(self, digit) -> list:
        return [self.active[i] for i in digit]

    def digit_product(self, digit) -> Optional[int]:
        if not self.concrete:
            return None
        prod = 1
        for i in digit:
            prod *= self.active[i]
        return prod

    def ext_product(self) -> Optional[int]:
        if not self.concrete:
            return None
        prod = 1
        for p in self.ext:
            prod *= p
        return prod


class LimbLowering:
    """Lowers a polynomial program onto a chip group layout."""

    def __init__(self, poly: PolyProgram, params, num_chips: int,
                 chips_per_stream: int = None, num_digits: int = None,
                 regenerate_evalkeys: bool = True):
        self.poly = poly
        self.params = params
        self.num_chips = num_chips
        self.num_digits = num_digits or params.num_digits
        self.regenerate_evalkeys = regenerate_evalkeys
        streams = poly.num_streams
        if chips_per_stream is None:
            chips_per_stream = max(1, num_chips // streams)
        if not 1 <= chips_per_stream <= num_chips:
            raise ValueError(
                f"chips_per_stream={chips_per_stream} out of range for a "
                f"{num_chips}-chip machine"
            )
        self.chips_per_stream = chips_per_stream
        self.out = LimbProgram(poly.name, num_chips)
        self.values: Dict[int, PolyValue] = {}
        self._ks_done: Dict[int, Tuple[PolyValue, PolyValue]] = {}
        self._hoist_cache: Dict[str, dict] = {}
        self._broadcast_cache: Dict[str, dict] = {}

    # ------------------------------------------------------------------ #
    # Placement helpers

    def group(self, stream: int) -> List[int]:
        """Chips assigned to a stream (streams tile the machine)."""
        size = self.chips_per_stream
        n_groups = max(1, self.num_chips // size)
        start = (stream % n_groups) * size
        return list(range(start, start + size))

    def chip_of(self, stream: int, limb_index: int) -> int:
        group = self.group(stream)
        return group[limb_index % len(group)]

    # ------------------------------------------------------------------ #

    def run(self) -> LimbProgram:
        for op in self.poly.ops:
            handler = getattr(self, f"_lower_{op.opcode}", None)
            if handler is None:
                raise ValueError(f"cannot lower poly opcode {op.opcode!r}")
            handler(op)
        return self.out

    # ------------------------------------------------------------------ #
    # Simple ops

    def _prime(self, level_index: int):
        if hasattr(self.params, "moduli"):
            return self.params.moduli[level_index]
        return None

    def _lower_pinput(self, op):
        name, comp = op.attrs["name"], op.attrs["component"]
        limbs, chips = [], []
        for i in range(op.level):
            chip = self.chip_of(op.stream, i)
            limbs.append(self.out.emit(
                L_LOAD, chip, domain=EVAL,
                symbol=f"input:{name}:{comp}:{i}",
                prime=self._prime(i), prime_index=i))
            chips.append(chip)
        self.values[op.id] = PolyValue(limbs, chips, EVAL)

    def _lower_poutput(self, op):
        val = self.values[op.inputs[0]]
        name, comp = op.attrs["name"], op.attrs["component"]
        for i, (limb, chip) in enumerate(zip(val.limbs, val.chips)):
            self.out.emit(L_STORE, chip, (limb,),
                          symbol=f"output:{name}:{comp}:{i}",
                          prime=self._prime(i), prime_index=i)
        pair = self.out.outputs.setdefault(name, [None, None])
        pair[comp] = val

    def _lower_pplain(self, op):
        key = f"ptdef:{op.id}"
        self.out.plaintext_defs[key] = {
            "plaintext": op.attrs.get("plaintext"),
            "constant": op.attrs.get("constant"),
            "pt_scale": op.attrs.get("pt_scale"),
            "level": op.level,
        }
        limbs, chips = [], []
        for i in range(op.level):
            chip = self.chip_of(op.stream, i)
            limbs.append(self.out.emit(
                L_LOAD, chip, domain=EVAL,
                symbol=f"{key}:{i}", prime=self._prime(i), prime_index=i))
            chips.append(chip)
        self.values[op.id] = PolyValue(limbs, chips, EVAL)

    def _binary(self, op, opcode):
        a = self._at_level(self.values[op.inputs[0]], op.level, op.stream)
        b = self._at_level(self.values[op.inputs[1]], op.level, op.stream)
        limbs = []
        for i in range(op.level):
            chip = a.chips[i]
            rhs = b.limbs[i]
            if b.chips[i] != chip:
                rhs = self.out.emit(L_MOV, chip, (rhs,), domain=a.domain,
                                    from_chip=b.chips[i], prime=self._prime(i),
                                    prime_index=i)
            limbs.append(self.out.emit(
                opcode, chip, (a.limbs[i], rhs), domain=a.domain,
                prime=self._prime(i), prime_index=i))
        self.values[op.id] = PolyValue(limbs, list(a.chips[:op.level]), a.domain)

    def _lower_padd(self, op):
        self._binary(op, L_ADD)

    def _lower_psub(self, op):
        self._binary(op, L_SUB)

    def _lower_pmul(self, op):
        self._binary(op, L_MUL)

    def _lower_pneg(self, op):
        a = self._at_level(self.values[op.inputs[0]], op.level, op.stream)
        limbs = [
            self.out.emit(L_NEG, a.chips[i], (a.limbs[i],), domain=a.domain,
                          prime=self._prime(i), prime_index=i)
            for i in range(op.level)
        ]
        self.values[op.id] = PolyValue(limbs, list(a.chips[:op.level]), a.domain)

    def _lower_pauto(self, op):
        a = self._at_level(self.values[op.inputs[0]], op.level, op.stream)
        galois = self._galois_element(op.attrs["galois"])
        limbs = [
            self.out.emit(L_AUTO, a.chips[i], (a.limbs[i],), domain=EVAL,
                          galois=galois, prime=self._prime(i), prime_index=i)
            for i in range(op.level)
        ]
        self.values[op.id] = PolyValue(limbs, list(a.chips[:op.level]), EVAL)

    def _lower_pdrop(self, op):
        a = self.values[op.inputs[0]]
        self.values[op.id] = PolyValue(
            a.limbs[:op.level], a.chips[:op.level], a.domain)

    def _lower_pmodraise(self, op):
        """ModRaise: re-express a single-limb polynomial over the chain.

        The level-1 limb is INTT'd, broadcast to the stream's chips, and
        every chip RNS-resolves it into the limbs it owns before NTT'ing
        back — the same dataflow a rescale uses, in reverse.
        """
        src = self.values[op.inputs[0]]
        if src.level != 1:
            raise ValueError("mod raise expects a level-1 polynomial")
        q0 = self._prime(0)
        home = src.chips[0]
        coeff = self.out.emit(L_INTT, home, (src.limbs[0],), domain=COEFF,
                              prime=q0, prime_index=0)
        copies = self._broadcast_one(coeff, home, op.stream,
                                     prime=q0, prime_index=0)
        limbs, chips = [], []
        for i in range(op.level):
            chip = self.chip_of(op.stream, i)
            q_i = self._prime(i)
            if i == 0:
                # Limb 0 is exact: re-use the original residues.
                value = src.limbs[0] if chip == home else self.out.emit(
                    L_NTT, chip, (copies[chip],), domain=EVAL,
                    prime=q0, prime_index=0)
            else:
                resolved = self.out.emit(
                    L_RSV, chip, (copies[chip],), domain=COEFF,
                    from_prime=q0, to_prime=q_i, prime=q_i, prime_index=i)
                value = self.out.emit(L_NTT, chip, (resolved,), domain=EVAL,
                                      prime=q_i, prime_index=i)
            limbs.append(value)
            chips.append(chip)
        self.values[op.id] = PolyValue(limbs, chips, EVAL)

    def _at_level(self, val: PolyValue, level: int, stream: int) -> PolyValue:
        if val.level == level:
            return val
        if val.level < level:
            raise ValueError("cannot raise polynomial level during lowering")
        return PolyValue(val.limbs[:level], val.chips[:level], val.domain)

    def _galois_element(self, galois) -> int:
        kind, arg = galois
        n = self.params.ring_degree
        if kind == "rotation":
            return pow(5, arg % (n // 2), 2 * n)
        if kind == "conjugation":
            return 2 * n - 1
        if kind == "element":
            return arg
        raise ValueError(f"unknown galois spec {galois!r}")

    # ------------------------------------------------------------------ #
    # Rescale

    def _lower_prescale(self, op):
        src = self.values[op.inputs[0]]
        in_level = src.level
        out_level = op.level
        if in_level != out_level + 1:
            raise ValueError("rescale drops exactly one limb")
        q_last = self._prime(in_level - 1)
        last_chip = src.chips[in_level - 1]
        last_coeff = self.out.emit(
            L_INTT, last_chip, (src.limbs[in_level - 1],), domain=COEFF,
            prime=q_last, prime_index=in_level - 1)
        copies = self._broadcast_one(last_coeff, last_chip, op.stream,
                                     prime=q_last, prime_index=in_level - 1)
        limbs = []
        for j in range(out_level):
            chip = src.chips[j]
            q_j = self._prime(j)
            local = copies[chip]
            corr = self.out.emit(L_RSV, chip, (local,), domain=COEFF,
                                 from_prime=q_last, to_prime=q_j,
                                 prime=q_j, prime_index=j)
            corr = self.out.emit(L_NTT, chip, (corr,), domain=EVAL,
                                 prime=q_j, prime_index=j)
            diff = self.out.emit(L_SUB, chip, (src.limbs[j], corr), domain=EVAL,
                                 prime=q_j, prime_index=j)
            scalar = None
            if q_last is not None:
                from ...fhe.modmath import mod_inv
                scalar = mod_inv(q_last % q_j, q_j)
            limbs.append(self.out.emit(L_MULC, chip, (diff,), domain=EVAL,
                                       scalar=scalar, prime=q_j, prime_index=j))
        self.values[op.id] = PolyValue(limbs, list(src.chips[:out_level]), EVAL)

    def _broadcast_one(self, value_id: int, home: int, stream: int,
                       prime, prime_index) -> Dict[int, int]:
        """Deliver one limb to every chip of the stream's group."""
        group = self.group(stream)
        copies = {home: value_id}
        others = [c for c in group if c != home]
        if not others:
            return copies
        cid = self.out.new_comm_id()
        comm = self.out.emit(L_COMM, home, (value_id,), kind="broadcast",
                             cid=cid, group=tuple(group),
                             tags=("x",), limbs_moved=len(others))
        for chip in others:
            copies[chip] = self.out.emit(
                L_RECV, chip, (comm,), domain=self.out.domains.get(value_id),
                tag="x", cid=cid, prime=prime, prime_index=prime_index)
        return copies

    # ------------------------------------------------------------------ #
    # Keyswitching

    def _lower_pks(self, op):
        ks_id = op.attrs["ks_id"]
        if ks_id not in self._ks_done:
            self._ks_done[ks_id] = self._expand_keyswitch(op)
        pair = self._ks_done[ks_id]
        self.values[op.id] = pair[op.attrs["component"]]

    def _ks_context(self, level: int, algorithm: str, stream: int):
        group = self.group(stream)
        if algorithm == KS_OUTPUT_AGGREGATION and len(group) > 1:
            partition = tuple(
                tuple(i for i in range(level) if i % len(group) == c)
                for c in range(len(group))
            )
            sig = f"m{len(group)}"
        else:
            partition = self.params.digit_partition(level, self.num_digits)
            sig = f"c{self.num_digits}"
        return _KeyswitchContext(self.params, level, partition, sig)

    def _evk_symbol(self, kind, ctx: _KeyswitchContext, digit: int,
                    component: int, pos: int) -> str:
        if isinstance(kind, tuple) and kind[0] == "galois":
            key = f"galois{self._galois_element(kind[1])}"
        else:
            key = "relin"
        sym = (f"evk:{key}:{ctx.level}:{ctx.partition_sig}:"
               f"{digit}:{component}:{pos}")
        self.out.evalkeys.add((key, ctx.level, ctx.partition_sig))
        return sym

    def _expand_keyswitch(self, op) -> Tuple[PolyValue, PolyValue]:
        algorithm = op.attrs.get("algorithm") or KS_SEQUENTIAL
        d = self._at_level(self.values[op.inputs[0]], op.level, op.stream)
        group = self.group(op.stream)
        if len(group) == 1 or algorithm == KS_SEQUENTIAL:
            algorithm = KS_INPUT_BROADCAST  # degenerates: no comm on 1 chip
        kind = op.attrs["kind"]
        galois = op.attrs.get("galois")
        batch = op.attrs.get("batch")
        ctx = self._ks_context(op.level, algorithm, op.stream)
        if algorithm in (KS_INPUT_BROADCAST, KS_CIFHER):
            return self._ks_input_broadcast(
                d, ctx, kind, galois, batch, op.stream,
                cifher=(algorithm == KS_CIFHER and len(group) > 1))
        if algorithm == KS_OUTPUT_AGGREGATION:
            f0, f1, _ = self._ks_output_aggregation_partials(
                d, ctx, kind, galois, op.stream, aggregate=True)
            return f0, f1
        raise ValueError(f"unknown keyswitch algorithm {algorithm!r}")

    # -- input broadcast / CiFHER ---------------------------------------- #

    def _ks_input_broadcast(self, d: PolyValue, ctx, kind, galois, batch,
                            stream, cifher: bool):
        group = self.group(stream)
        n = len(group)
        level = ctx.level
        cache_key = batch if batch is not None else None
        hoisted = cache_key is not None and galois is not None

        decomposed = None
        if cache_key is not None:
            decomposed = self._hoist_cache.get(cache_key)
        if decomposed is None:
            decomposed = self._decompose_for_group(
                d, ctx, stream, cifher=cifher,
                pre_galois=(None if hoisted else galois))
            if cache_key is not None:
                self._hoist_cache[cache_key] = decomposed
        # decomposed: {chip: {digit_index: {pos: limb value (eval)}}}

        galois_elt = self._galois_element(galois) if (hoisted and galois) else None

        # Inner products per chip over its owned positions (+ ext for IB).
        f_limbs = {0: {}, 1: {}}  # component -> pos -> (chip, value)
        partial = {}
        for chip in group:
            for comp in (0, 1):
                acc = {}
                for digit_index, digit_vals in decomposed[chip].items():
                    for pos, val in digit_vals.items():
                        operand = val
                        if galois_elt is not None:
                            operand = self.out.emit(
                                L_AUTO, chip, (val,), domain=EVAL,
                                galois=galois_elt,
                                prime=self._ctx_prime(ctx, pos), prime_index=pos)
                        # Component 1 of every evalkey digit is uniform
                        # pseudorandom: the PRNG unit regenerates it on chip
                        # instead of streaming it from HBM (ARK-style
                        # runtime data generation; Table 1's PRNG FU).
                        regen = comp == 1 and self.regenerate_evalkeys
                        evk = self.out.emit(
                            L_PRNG if regen else L_LOAD, chip, domain=EVAL,
                            symbol=self._evk_symbol(kind, ctx, digit_index,
                                                    comp, pos),
                            prime=self._ctx_prime(ctx, pos), prime_index=pos)
                        term = self.out.emit(
                            L_MUL, chip, (operand, evk), domain=EVAL,
                            prime=self._ctx_prime(ctx, pos), prime_index=pos)
                        if pos in acc:
                            acc[pos] = self.out.emit(
                                L_ADD, chip, (acc[pos], term), domain=EVAL,
                                prime=self._ctx_prime(ctx, pos), prime_index=pos)
                        else:
                            acc[pos] = term
                partial[(chip, comp)] = acc

        if not cifher:
            # Mod-down locally: every chip holds all extension limbs.
            out_pair = []
            for comp in (0, 1):
                limbs = [None] * level
                chips = [None] * level
                for chip in group:
                    acc = partial[(chip, comp)]
                    owned = [i for i in range(level) if group[i % n] == chip]
                    ext_positions = list(range(level, level + ctx.num_ext))
                    down = self._moddown_local(acc, owned, ext_positions,
                                               ctx, chip)
                    for i, v in down.items():
                        limbs[i] = v
                        chips[i] = chip
                out_pair.append(PolyValue(limbs, chips, EVAL))
            return tuple(out_pair)

        # CiFHER: extension limbs of the accumulators are distributed; they
        # must be broadcast (2 broadcasts) before each chip can mod-down.
        out_pair = []
        for comp in (0, 1):
            acc_by_pos: Dict[int, Tuple[int, int]] = {}
            for chip in group:
                for pos, v in partial[(chip, comp)].items():
                    if pos in acc_by_pos:
                        # Positions are uniquely owned under CiFHER layout.
                        raise AssertionError("duplicate position in CiFHER flow")
                    acc_by_pos[pos] = (chip, v)
            # INTT extension limbs on their owners, then broadcast them.
            ext_coeff = {}
            cid = self.out.new_comm_id()
            entries = []
            for e in range(ctx.num_ext):
                pos = level + e
                chip, v = acc_by_pos[pos]
                c = self.out.emit(L_INTT, chip, (v,), domain=COEFF,
                                  prime=self._ctx_prime(ctx, pos),
                                  prime_index=pos)
                entries.append((c, f"e{e}", chip, pos))
            comm = self.out.emit(
                L_COMM, group[0], tuple(e[0] for e in entries),
                kind="broadcast", cid=cid, group=tuple(group),
                tags=tuple(e[1] for e in entries),
                limbs_moved=ctx.num_ext * (n - 1))
            for chip in group:
                for c_val, tag, home, pos in entries:
                    if home == chip:
                        ext_coeff[(chip, pos)] = c_val
                    else:
                        ext_coeff[(chip, pos)] = self.out.emit(
                            L_RECV, chip, (comm,), domain=COEFF, tag=tag,
                            cid=cid, prime=self._ctx_prime(ctx, pos),
                            prime_index=pos)
            limbs = [None] * level
            chips = [None] * level
            for i in range(level):
                chip, f_val = acc_by_pos[i]
                ext_vals = {level + e: ext_coeff[(chip, level + e)]
                            for e in range(ctx.num_ext)}
                down = self._moddown_positions(
                    {i: f_val}, ext_vals, ctx, chip)
                limbs[i] = down[i]
                chips[i] = chip
            out_pair.append(PolyValue(limbs, chips, EVAL))
        return tuple(out_pair)

    def _ctx_prime(self, ctx: _KeyswitchContext, pos: int):
        return ctx.extended[pos]

    def _decompose_for_group(self, d: PolyValue, ctx, stream, cifher: bool,
                             pre_galois=None):
        """Digit decomposition + mod-up, computed per chip.

        Returns ``{chip: {digit_index: {pos: eval-domain limb value}}}``.
        With ``cifher`` each chip produces only the positions it owns
        (initial *and* extension); otherwise (input broadcast) each chip
        produces its owned initial positions plus **all** extension
        positions (the algorithm's duplicated compute).
        """
        group = self.group(stream)
        n = len(group)
        level = ctx.level

        limbs = d.limbs
        if pre_galois is not None:
            galois_elt = self._galois_element(pre_galois)
            limbs = [
                self.out.emit(L_AUTO, d.chips[i], (limbs[i],), domain=EVAL,
                              galois=galois_elt, prime=self._ctx_prime(ctx, i),
                              prime_index=i)
                for i in range(level)
            ]

        # INTT every limb on its owner, then broadcast all coeff limbs.
        coeff = [
            self.out.emit(L_INTT, d.chips[i], (limbs[i],), domain=COEFF,
                          prime=self._ctx_prime(ctx, i), prime_index=i)
            for i in range(level)
        ]
        copies: Dict[Tuple[int, int], int] = {}
        if n > 1:
            cid = self.out.new_comm_id()
            tags = tuple(f"l{i}" for i in range(level))
            comm = self.out.emit(L_COMM, group[0], tuple(coeff),
                                 kind="broadcast", cid=cid, group=tuple(group),
                                 tags=tags, limbs_moved=level * (n - 1))
            for chip in group:
                for i in range(level):
                    if d.chips[i] == chip:
                        copies[(chip, i)] = coeff[i]
                    else:
                        copies[(chip, i)] = self.out.emit(
                            L_RECV, chip, (comm,), domain=COEFF, tag=f"l{i}",
                            cid=cid, prime=self._ctx_prime(ctx, i),
                            prime_index=i)
        else:
            for i in range(level):
                copies[(group[0], i)] = coeff[i]

        from ...fhe.modmath import mod_inv

        result = {}
        for chip in group:
            owned_initial = [i for i in range(level) if group[i % n] == chip]
            if cifher:
                ext_positions = [level + e for e in range(ctx.num_ext)
                                 if group[(level + e) % n] == chip]
            else:
                ext_positions = [level + e for e in range(ctx.num_ext)]
            per_digit = {}
            for digit_index, digit in enumerate(ctx.partition):
                digit = list(digit)
                q_digit = ctx.digit_product(digit)
                # Premultiply each digit limb by (Q_g/q_j)^{-1} mod q_j.
                pre = []
                for j in digit:
                    scalar = None
                    if q_digit is not None:
                        q_j = ctx.active[j]
                        scalar = mod_inv((q_digit // q_j) % q_j, q_j)
                    pre.append(self.out.emit(
                        L_MULC, chip, (copies[(chip, j)],), domain=COEFF,
                        scalar=scalar, prime=self._ctx_prime(ctx, j),
                        prime_index=j))
                vals = {}
                targets = [p for p in owned_initial + ext_positions]
                for pos in targets:
                    if pos in digit:
                        # In-digit positions reuse the original eval limb.
                        vals[pos] = limbs[pos] if d.chips[pos] == chip else \
                            self.out.emit(L_NTT, chip,
                                          (copies[(chip, pos)],), domain=EVAL,
                                          prime=self._ctx_prime(ctx, pos),
                                          prime_index=pos)
                        continue
                    conv = self.out.emit(
                        L_BCONV, chip, tuple(pre), domain=COEFF,
                        source_primes=tuple(ctx.active[j] for j in digit),
                        source_indices=tuple(digit),
                        target_prime=self._ctx_prime(ctx, pos),
                        prime=self._ctx_prime(ctx, pos), prime_index=pos)
                    vals[pos] = self.out.emit(
                        L_NTT, chip, (conv,), domain=EVAL,
                        prime=self._ctx_prime(ctx, pos), prime_index=pos)
                per_digit[digit_index] = vals
            result[chip] = per_digit
        return result

    def _moddown_local(self, acc: Dict[int, int], owned: List[int],
                       ext_positions: List[int], ctx, chip) -> Dict[int, int]:
        """Mod-down on one chip that holds all extension limbs locally."""
        ext_vals = {}
        for pos in ext_positions:
            ext_vals[pos] = self.out.emit(
                L_INTT, chip, (acc[pos],), domain=COEFF,
                prime=self._ctx_prime(ctx, pos), prime_index=pos)
        return self._moddown_positions(
            {i: acc[i] for i in owned}, ext_vals, ctx, chip)

    def _moddown_positions(self, initial: Dict[int, int],
                           ext_coeff: Dict[int, int], ctx, chip) -> Dict[int, int]:
        """Shared mod-down tail: bconv ext limbs onto each initial position."""
        from ...fhe.modmath import mod_inv

        p_total = ctx.ext_product()
        # Premultiply extension limbs by (P/p_e)^{-1} mod p_e once.
        pre = []
        ext_positions = sorted(ext_coeff)
        for pos in ext_positions:
            scalar = None
            if p_total is not None:
                p_e = ctx.extended[pos]
                scalar = mod_inv((p_total // p_e) % p_e, p_e)
            pre.append(self.out.emit(
                L_MULC, chip, (ext_coeff[pos],), domain=COEFF, scalar=scalar,
                prime=self._ctx_prime(ctx, pos), prime_index=pos))
        out = {}
        for i, f_val in initial.items():
            q_i = ctx.active[i] if ctx.concrete else None
            conv = self.out.emit(
                L_BCONV, chip, tuple(pre), domain=COEFF,
                source_primes=tuple(ctx.extended[p] for p in ext_positions),
                source_indices=tuple(ext_positions),
                target_prime=q_i, prime=q_i, prime_index=i)
            conv = self.out.emit(L_NTT, chip, (conv,), domain=EVAL,
                                 prime=q_i, prime_index=i)
            diff = self.out.emit(L_SUB, chip, (f_val, conv), domain=EVAL,
                                 prime=q_i, prime_index=i)
            scalar = None
            if p_total is not None:
                scalar = mod_inv(p_total % q_i, q_i)
            out[i] = self.out.emit(L_MULC, chip, (diff,), domain=EVAL,
                                   scalar=scalar, prime=q_i, prime_index=i)
        return out

    # -- output aggregation ---------------------------------------------- #

    def _ks_output_aggregation_partials(self, d: PolyValue, ctx, kind, galois,
                                        stream, aggregate: bool,
                                        pre_partials=None):
        """Digit-parallel keyswitch with deferred aggregation.

        Each chip mods up its resident digit, inner-products with its digit
        evalkey, and mods down locally, yielding per-chip partial sums over
        **all** initial positions.  With ``aggregate`` the partials are
        reduce-scattered; otherwise they are returned for batching (the
        rotate_sum lowering accumulates them across members first).
        """
        from ...fhe.modmath import mod_inv

        group = self.group(stream)
        n = len(group)
        level = ctx.level

        limbs = d.limbs
        if galois is not None:
            galois_elt = self._galois_element(galois)
            limbs = [
                self.out.emit(L_AUTO, d.chips[i], (limbs[i],), domain=EVAL,
                              galois=galois_elt, prime=self._ctx_prime(ctx, i),
                              prime_index=i)
                for i in range(level)
            ]

        partials = pre_partials if pre_partials is not None else \
            {(chip, comp): {} for chip in group for comp in (0, 1)}
        for digit_index, digit in enumerate(ctx.partition):
            if not digit:
                continue
            chip = group[digit_index % n]
            digit = list(digit)
            q_digit = ctx.digit_product(digit)
            coeff = {}
            pre = []
            for j in digit:
                c = self.out.emit(L_INTT, chip, (limbs[j],), domain=COEFF,
                                  prime=self._ctx_prime(ctx, j), prime_index=j)
                coeff[j] = c
                scalar = None
                if q_digit is not None:
                    q_j = ctx.active[j]
                    scalar = mod_inv((q_digit // q_j) % q_j, q_j)
                pre.append(self.out.emit(
                    L_MULC, chip, (c,), domain=COEFF, scalar=scalar,
                    prime=self._ctx_prime(ctx, j), prime_index=j))
            extended = {}
            for pos in range(level + ctx.num_ext):
                if pos in digit:
                    extended[pos] = limbs[pos]
                    continue
                conv = self.out.emit(
                    L_BCONV, chip, tuple(pre), domain=COEFF,
                    source_primes=tuple(ctx.active[j] for j in digit),
                    source_indices=tuple(digit),
                    target_prime=self._ctx_prime(ctx, pos),
                    prime=self._ctx_prime(ctx, pos), prime_index=pos)
                extended[pos] = self.out.emit(
                    L_NTT, chip, (conv,), domain=EVAL,
                    prime=self._ctx_prime(ctx, pos), prime_index=pos)
            for comp in (0, 1):
                acc = {}
                for pos, val in extended.items():
                    regen = comp == 1 and self.regenerate_evalkeys
                    evk = self.out.emit(
                        L_PRNG if regen else L_LOAD, chip, domain=EVAL,
                        symbol=self._evk_symbol(kind, ctx, digit_index, comp, pos),
                        prime=self._ctx_prime(ctx, pos), prime_index=pos)
                    acc[pos] = self.out.emit(
                        L_MUL, chip, (val, evk), domain=EVAL,
                        prime=self._ctx_prime(ctx, pos), prime_index=pos)
                ext_positions = list(range(level, level + ctx.num_ext))
                down = self._moddown_local(acc, list(range(level)),
                                           ext_positions, ctx, chip)
                target = partials[(chip, comp)]
                for i, v in down.items():
                    if i in target:
                        target[i] = self.out.emit(
                            L_ADD, chip, (target[i], v), domain=EVAL,
                            prime=self._ctx_prime(ctx, i), prime_index=i)
                    else:
                        target[i] = v
        if not aggregate:
            return partials
        f0 = self._aggregate_partials(partials, 0, ctx, stream)
        f1 = self._aggregate_partials(partials, 1, ctx, stream)
        return f0, f1, partials

    def _aggregate_partials(self, partials, comp, ctx, stream) -> PolyValue:
        group = self.group(stream)
        n = len(group)
        level = ctx.level
        if n == 1:
            only = partials[(group[0], comp)]
            return PolyValue([only[i] for i in range(level)],
                             [group[0]] * level, EVAL)
        cid = self.out.new_comm_id()
        contributions = []
        tags = []
        for chip in group:
            for i in range(level):
                v = partials[(chip, comp)].get(i)
                if v is not None:
                    contributions.append(v)
                    tags.append(f"l{i}")
        comm = self.out.emit(
            L_COMM, group[0], tuple(contributions), kind="aggregate",
            cid=cid, group=tuple(group), tags=tuple(tags),
            limbs_moved=level * (n - 1))
        limbs, chips = [], []
        for i in range(level):
            owner = group[i % n]
            limbs.append(self.out.emit(
                L_RECV, owner, (comm,), domain=EVAL, tag=f"l{i}", cid=cid,
                prime=self._ctx_prime(ctx, i), prime_index=i))
            chips.append(owner)
        return PolyValue(limbs, chips, EVAL)

    # -- fused rotate_sum -------------------------------------------------- #

    def _lower_protsum(self, op):
        rs_id = op.attrs["rs_id"]
        key = ("rs", rs_id)
        if key not in self._ks_done:
            self._ks_done[key] = self._expand_rotate_sum(op)
        self.values[op.id] = self._ks_done[key][op.attrs["component"]]

    def _expand_rotate_sum(self, op) -> Tuple[PolyValue, PolyValue]:
        rotations = op.attrs["rotations"]
        stream = op.stream
        level = op.level
        group = self.group(stream)
        pairs = [
            (self._at_level(self.values[op.inputs[2 * i]], level, stream),
             self._at_level(self.values[op.inputs[2 * i + 1]], level, stream))
            for i in range(len(rotations))
        ]
        ctx = self._ks_context(level, KS_OUTPUT_AGGREGATION, stream)

        sum_c0 = None
        passthrough_c1 = None
        partials = {(chip, comp): {} for chip in group for comp in (0, 1)}
        any_rotated = False
        for (c0, c1), rotation in zip(pairs, rotations):
            if rotation % self.params.slot_count == 0:
                rc0, rc1 = c0, c1
                sum_c0 = rc0 if sum_c0 is None else self._add_polys(sum_c0, rc0, ctx)
                passthrough_c1 = rc1 if passthrough_c1 is None else \
                    self._add_polys(passthrough_c1, rc1, ctx)
                continue
            any_rotated = True
            galois = ("rotation", rotation)
            galois_elt = self._galois_element(galois)
            rc0 = PolyValue(
                [self.out.emit(L_AUTO, c0.chips[i], (c0.limbs[i],),
                               domain=EVAL, galois=galois_elt,
                               prime=self._ctx_prime(ctx, i), prime_index=i)
                 for i in range(level)],
                list(c0.chips[:level]), EVAL)
            sum_c0 = rc0 if sum_c0 is None else self._add_polys(sum_c0, rc0, ctx)
            partials = self._ks_output_aggregation_partials(
                c1, ctx, ("galois", galois), galois, stream,
                aggregate=False, pre_partials=partials)
        if not any_rotated:
            return sum_c0, passthrough_c1
        f0 = self._aggregate_partials(partials, 0, ctx, stream)
        f1 = self._aggregate_partials(partials, 1, ctx, stream)
        out0 = self._add_polys(sum_c0, f0, ctx)
        out1 = f1 if passthrough_c1 is None else \
            self._add_polys(f1, passthrough_c1, ctx)
        return out0, out1

    def _add_polys(self, a: PolyValue, b: PolyValue, ctx) -> PolyValue:
        limbs = []
        for i in range(min(a.level, b.level)):
            chip = a.chips[i]
            rhs = b.limbs[i]
            if b.chips[i] != chip:
                rhs = self.out.emit(L_MOV, chip, (rhs,), domain=b.domain,
                                    from_chip=b.chips[i],
                                    prime=self._ctx_prime(ctx, i), prime_index=i)
            limbs.append(self.out.emit(
                L_ADD, chip, (a.limbs[i], rhs), domain=a.domain,
                prime=self._ctx_prime(ctx, i), prime_index=i))
        return PolyValue(limbs, list(a.chips[:len(limbs)]), a.domain)


def lower_to_limb(poly: PolyProgram, params, num_chips: int,
                  chips_per_stream: int = None,
                  num_digits: int = None,
                  regenerate_evalkeys: bool = True) -> LimbProgram:
    """Lower a polynomial program to the limb IR for an ``num_chips`` machine."""
    return LimbLowering(poly, params, num_chips, chips_per_stream,
                        num_digits, regenerate_evalkeys).run()
