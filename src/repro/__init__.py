"""Reproduction of "Cinnamon: A Framework for Scale-Out Encrypted AI"
(ASPLOS 2025).

Public surface:

* :func:`repro.compile` — the one-call facade: DSL program + params +
  machine spec -> :class:`~repro.core.compiler.CompiledProgram` (cached,
  instrumented; see :mod:`repro.runtime`);
* :mod:`repro.runtime` — the cached compile-and-run session
  (:class:`~repro.runtime.CinnamonSession`), batch worker pool, and
  structured JSON traces;
* :mod:`repro.serve` — the inference serving layer
  (:class:`~repro.serve.CinnamonServer` / :func:`repro.serve_requests`):
  admission queue, adaptive batching, retries + fault injection,
  metrics, and the ``python -m repro.serve.loadgen`` load generator;
* :mod:`repro.tune` — simulator-guided autotuning of compiler & machine
  configuration (:class:`~repro.tune.Tuner`, persisted
  :class:`~repro.tune.TuningDB`, ``python -m repro.tune`` CLI); tuned
  configs apply via ``repro.compile(tune=...)`` and
  ``CinnamonServer(tuned=True)``;
* :mod:`repro.resilience` — machine-level fault tolerance: seeded fault
  injection (:class:`~repro.resilience.FaultSchedule`), CRC-validated
  checkpoints, and degraded-mode recovery
  (:class:`~repro.resilience.RecoveryOrchestrator`);
* :mod:`repro.trust` — artifact integrity & key lifecycle: signed
  cache/checkpoint manifests with tamper quarantine
  (:class:`~repro.trust.ArtifactManifest`), versioned evaluation-key
  rotation (:class:`~repro.trust.KeyVault`), request freshness / replay
  windows (:class:`~repro.trust.ReplayGuard`), and the
  ``python -m repro.trust --rebuild-check`` reproducibility gate;
* :mod:`repro.obs` — cross-layer observability: one ``trace_id`` from a
  serve request down to simulated functional units
  (``repro.enable_tracing()`` / :func:`repro.export_chrome_trace`),
  unified metrics (:func:`repro.obs.default_registry`), and the
  ``python -m repro.obs`` journal analyzer;
* :mod:`repro.fhe` — functional RNS-CKKS (parameters, contexts, evaluator,
  parallel keyswitching, bootstrapping) with pluggable limb-stack kernel
  backends (:func:`repro.set_kernel_backend`; see
  :mod:`repro.fhe.backend`);
* :mod:`repro.core` — the Cinnamon DSL, compiler, ISA, and emulator;
* :mod:`repro.sim` — the cycle-level scale-out simulator;
* :mod:`repro.arch` — area/yield/cost models;
* :mod:`repro.workloads` — the paper's benchmark programs;
* :mod:`repro.experiments` — table/figure regeneration harnesses.

Typical use::

    import repro

    compiled = repro.compile(program, params, machine="cinnamon_4")
    result = compiled.simulate("cinnamon_4")     # SimulationResult
    outputs = compiled.emulate(inputs, context=ctx)  # real limb data
"""

__version__ = "1.2.0"

from . import fhe  # noqa: F401  (cheap; pulls numpy only)


def compile(program, params, machine=None, session=None, tune=None,
            **options):
    """Compile a DSL program through the default cached runtime session.

    ``machine`` accepts a name (``"cinnamon_4"``), a chip count, or a
    :class:`~repro.sim.config.MachineConfig`; ``**options`` are
    :class:`~repro.core.compiler.CompilerOptions` fields (e.g.
    ``keyswitch_policy="cifher"``, ``emit_isa=False``).  Identical
    requests are served from the process-wide content-addressed cache.
    Pass an explicit :class:`~repro.runtime.CinnamonSession` via
    ``session`` for on-disk caching, batch execution, and trace export.

    ``tune`` swaps in an autotuned configuration (see :mod:`repro.tune`):
    ``"db"``/``True`` applies a persisted :class:`~repro.tune.TuningDB`
    entry when one matches, ``"quick"``/``"full"`` run a budget-8/32
    simulator-guided search on a DB miss first.
    """
    from .runtime.session import compile_program

    return compile_program(program, params, machine=machine,
                           session=session, tune=tune, **options)


def serve_requests(requests, num_workers=2, **server_kwargs):
    """Serve a batch of :class:`~repro.serve.InferenceRequest` objects
    through a transient :class:`~repro.serve.CinnamonServer` (shard pool,
    adaptive batching, retries); returns results in submission order.
    See :mod:`repro.serve` for the long-lived server API."""
    from .serve.server import serve_requests as _serve

    return _serve(requests, num_workers=num_workers, **server_kwargs)


def set_kernel_backend(backend):
    """Select the FHE kernel backend for this thread by name or instance
    (``"numpy"``, ``"numpy-batched"``, ``"native"``, or a registered
    custom backend; see :mod:`repro.fhe.backend`).  Returns the previous
    backend so callers can restore it."""
    from .fhe.backend import set_backend

    return set_backend(backend)


def get_kernel_backend():
    """The active FHE kernel backend (see :mod:`repro.fhe.backend`)."""
    from .fhe.backend import get_backend

    return get_backend()


def default_session():
    """The process-wide :class:`~repro.runtime.CinnamonSession` behind
    :func:`repro.compile` (inspect its trace, stats, or cache)."""
    from .runtime.session import default_session as _default

    return _default()


_LAZY_ATTRS = {
    "CinnamonServer": ("repro.serve", "CinnamonServer"),
    "ClusterRouter": ("repro.cluster", "ClusterRouter"),
    "cluster": ("repro.cluster", None),
    "InferenceRequest": ("repro.serve", "InferenceRequest"),
    "RequestResult": ("repro.serve", "RequestResult"),
    "serve": ("repro.serve", None),
    "CinnamonSession": ("repro.runtime", "CinnamonSession"),
    "Tuner": ("repro.tune", "Tuner"),
    "TuningDB": ("repro.tune", "TuningDB"),
    "tune": ("repro.tune", None),
    "CompileJob": ("repro.runtime", "CompileJob"),
    "JobResult": ("repro.runtime", "JobResult"),
    "CompiledProgram": ("repro.core.compiler", "CompiledProgram"),
    "CompilerOptions": ("repro.core.compiler", "CompilerOptions"),
    "CinnamonProgram": ("repro.core.dsl.program", "CinnamonProgram"),
    "resolve_machine": ("repro.sim.config", "resolve_machine"),
    "ArtifactManifest": ("repro.trust", "ArtifactManifest"),
    "KeyVault": ("repro.trust", "KeyVault"),
    "ReplayGuard": ("repro.trust", "ReplayGuard"),
    "trust": ("repro.trust", None),
    "FaultSchedule": ("repro.resilience", "FaultSchedule"),
    "CheckpointStore": ("repro.resilience", "CheckpointStore"),
    "RecoveryOrchestrator": ("repro.resilience", "RecoveryOrchestrator"),
    "run_with_recovery": ("repro.resilience", "run_with_recovery"),
    "resilience": ("repro.resilience", None),
    "obs": ("repro.obs", None),
    "enable_tracing": ("repro.obs", "enable"),
    "export_chrome_trace": ("repro.obs", "export_chrome_trace"),
    "runtime": ("repro.runtime", None),
    "core": ("repro.core", None),
    "sim": ("repro.sim", None),
    "arch": ("repro.arch", None),
    "workloads": ("repro.workloads", None),
    "experiments": ("repro.experiments", None),
}


def __getattr__(name):
    """Lazy re-exports: keep ``import repro`` cheap (numpy only)."""
    try:
        module_name, attr = _LAZY_ATTRS[name]
    except KeyError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}")
    import importlib

    module = importlib.import_module(module_name)
    value = module if attr is None else getattr(module, attr)
    globals()[name] = value
    return value


__all__ = [
    "fhe",
    "compile",
    "serve_requests",
    "set_kernel_backend",
    "get_kernel_backend",
    "default_session",
    "CinnamonServer",
    "ClusterRouter",
    "InferenceRequest",
    "RequestResult",
    "CinnamonSession",
    "Tuner",
    "TuningDB",
    "CompileJob",
    "JobResult",
    "CompiledProgram",
    "CompilerOptions",
    "CinnamonProgram",
    "resolve_machine",
    "ArtifactManifest",
    "KeyVault",
    "ReplayGuard",
    "FaultSchedule",
    "CheckpointStore",
    "RecoveryOrchestrator",
    "run_with_recovery",
    "obs",
    "enable_tracing",
    "export_chrome_trace",
    "__version__",
]
