"""Reproduction of "Cinnamon: A Framework for Scale-Out Encrypted AI"
(ASPLOS 2025).

Public surface:

* :mod:`repro.fhe` — functional RNS-CKKS (parameters, contexts, evaluator,
  parallel keyswitching, bootstrapping);
* :mod:`repro.core` — the Cinnamon DSL, compiler, ISA, and emulator;
* :mod:`repro.sim` — the cycle-level scale-out simulator;
* :mod:`repro.arch` — area/yield/cost models;
* :mod:`repro.workloads` — the paper's benchmark programs;
* :mod:`repro.experiments` — table/figure regeneration harnesses.
"""

__version__ = "1.0.0"

from . import fhe  # noqa: F401  (cheap; pulls numpy only)

__all__ = ["fhe", "__version__"]
