"""Key material: secret/public keys and digit-decomposition evaluation keys.

Keyswitching uses the hybrid (RNS-digit) construction: to switch a
polynomial multiplying key ``s_src`` to key ``s``, the limbs of the active
basis ``Q`` are split into ``d`` digits ``D_i`` (with products ``Q_i``), and
the evaluation key for digit ``i`` encrypts

    P * g_i * s_src,   g_i = (Q/Q_i) * [(Q/Q_i)^{-1}]_{Q_i}  (mod Q)

over the extended basis ``Q u P``.  The CRT factors ``g_i`` depend on the
*active* modulus ``Q`` — i.e. on the ciphertext level and on the digit
partition — so :class:`KeyChain` generates evaluation keys per
``(purpose, level, partition)`` and caches them.  (Hardware FHE stacks bake
a single partition per level into the compiled program; the cache mirrors
that while keeping the functional library exact at every level.)
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from .modmath import mod_inv
from .params import CKKSParams
from .polynomial import EVAL, RnsPolynomial
from .rns import basis_product
from .sampling import FheRng

Partition = Tuple[Tuple[int, ...], ...]


class SecretKey:
    """Ternary secret key; embeddable into any RNS basis on demand."""

    def __init__(self, coeffs: np.ndarray, rng: FheRng):
        self.coeffs = coeffs
        self._rng = rng
        self._cache: Dict[Tuple[int, ...], RnsPolynomial] = {}

    def poly(self, basis: Sequence[int]) -> RnsPolynomial:
        key = tuple(int(p) for p in basis)
        poly = self._cache.get(key)
        if poly is None:
            poly = self._rng.small_poly(self.coeffs, key, domain=EVAL)
            self._cache[key] = poly
        return poly


class PublicKey:
    """Encryption key ``(b, a)`` with ``b = -a*s + e`` over the full chain."""

    def __init__(self, b: RnsPolynomial, a: RnsPolynomial):
        self.b = b
        self.a = a

    def at_level(self, level: int) -> "PublicKey":
        return PublicKey(self.b.drop_limbs(level), self.a.drop_limbs(level))


class EvalKey:
    """Digit-decomposition switching key.

    ``digits[i] = (b_i, a_i)`` over the basis ``Q_level u P``, with
    ``b_i = -a_i*s + e_i + P*g_i*s_src``.  ``partition`` records the limb
    indices of each digit.
    """

    def __init__(self, digits: List[Tuple[RnsPolynomial, RnsPolynomial]],
                 partition: Partition, level: int):
        self.digits = digits
        self.partition = partition
        self.level = level

    @property
    def num_digits(self) -> int:
        return len(self.digits)


class KeyChain:
    """Generates and caches all key material for one parameter set."""

    def __init__(self, params: CKKSParams, seed: int = 2025):
        self.params = params
        self.rng = FheRng(seed)
        self.secret = SecretKey(
            self.rng.ternary_secret(params.ring_degree, params.secret_hamming_weight),
            self.rng,
        )
        self._public: PublicKey = None
        self._eval_cache: Dict[tuple, EvalKey] = {}

    # ------------------------------------------------------------------ #

    def public_key(self) -> PublicKey:
        if self._public is None:
            params = self.params
            basis = params.moduli
            a = self.rng.uniform_poly(basis, params.ring_degree)
            e = self.rng.error_poly(basis, params.ring_degree, params.error_std)
            s = self.secret.poly(basis)
            b = -(a * s) + e
            self._public = PublicKey(b, a)
        return self._public

    # ------------------------------------------------------------------ #
    # Evaluation keys

    def _source_poly(self, purpose, basis: Sequence[int]) -> RnsPolynomial:
        """The key polynomial ``s_src`` being switched away from.

        ``purpose`` is ``"relin"`` (``s_src = s^2``) or ``("galois", k)``
        (``s_src = s(X^k)``).
        """
        s = self.secret.poly(basis)
        if purpose == "relin":
            return s * s
        if isinstance(purpose, tuple) and purpose[0] == "galois":
            return s.automorphism(purpose[1])
        raise ValueError(f"unknown evaluation-key purpose {purpose!r}")

    def switching_key(self, purpose, level: int, partition: Partition = None) -> EvalKey:
        """Fetch (generating if needed) the switching key for ``purpose``.

        ``partition`` defaults to the contiguous digit partition of the
        parameter set at this level.
        """
        params = self.params
        if partition is None:
            partition = params.digit_partition(level)
        partition = tuple(tuple(int(i) for i in digit) for digit in partition)
        cache_key = (purpose, level, partition)
        evk = self._eval_cache.get(cache_key)
        if evk is not None:
            return evk

        active = params.basis_at_level(level)
        extended = active + params.extension_moduli
        q_total = basis_product(active)
        p_total = basis_product(params.extension_moduli)
        s = self.secret.poly(extended)
        s_src = self._source_poly(purpose, extended)

        digits = []
        zero_pair = None
        for digit in partition:
            digit_primes = [active[i] for i in digit]
            if not digit_primes:
                # Modular partitions leave a chip with no limbs when the
                # level drops below the group size.  An empty digit is
                # never multiplied in (emission and accumulation skip it),
                # so a zero pair only keeps ``digits`` aligned with the
                # partition.
                if zero_pair is None:
                    zero = RnsPolynomial(
                        extended,
                        np.zeros((len(extended), params.ring_degree),
                                 dtype=np.uint64),
                        EVAL)
                    zero_pair = (zero, zero)
                digits.append(zero_pair)
                continue
            q_digit = basis_product(digit_primes)
            q_hat = q_total // q_digit
            g = (q_hat * mod_inv(q_hat % q_digit, q_digit)) % q_total
            factor = [(p_total % r) * (g % r) % r for r in extended]
            a = self.rng.uniform_poly(extended, params.ring_degree)
            e = self.rng.error_poly(extended, params.ring_degree, params.error_std)
            b = -(a * s) + e + s_src.scalar_mul_rns(factor)
            digits.append((b, a))
        evk = EvalKey(digits, partition, level)
        self._eval_cache[cache_key] = evk
        return evk

    def relin_key(self, level: int, partition: Partition = None) -> EvalKey:
        return self.switching_key("relin", level, partition)

    def galois_key(self, galois_element: int, level: int,
                   partition: Partition = None) -> EvalKey:
        return self.switching_key(("galois", galois_element), level, partition)
