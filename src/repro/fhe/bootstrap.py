"""CKKS bootstrapping: refreshing the multiplicative budget.

The pipeline follows Cheon et al. / Han-Ki (the paper's [13, 30]):

1. **ModRaise** — a ciphertext at level 1 (single modulus ``q_0``) is
   re-interpreted over the full chain.  Its plaintext becomes
   ``t = m + q_0 * I`` for a small overflow polynomial ``I`` whose size is
   governed by the secret key density.
2. **CoeffToSlot** — homomorphic linear maps move the *coefficients* of
   ``t`` into the slots (two BSGS matrix-vector products with halves of the
   conjugate-transposed embedding matrix, plus conjugations), folding in a
   division by ``q_0`` so slot values land in ``[-K, K]``.
3. **EvalMod** — the modular reduction ``t mod q_0`` is approximated by
   ``q_0/(2*pi) * sin(2*pi*t/q_0)``, evaluated as a Chebyshev polynomial.
4. **SlotToCoeff** — the inverse linear map returns the slots to
   coefficient positions, yielding a high-level encryption of ``m``.

Bootstrapping consumes part of the refreshed budget itself (the paper's
Bootstrap-13 refreshes 13 usable levels); the remainder is returned to the
application.  Accuracy here is limited by the word-sized scale
(``Delta = 2^28``): expect 2-3 decimal digits, which is the documented
fidelity of this functional substrate (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from .ciphertext import Ciphertext
from .encoding import get_geometry
from .evaluator import CKKSContext, Evaluator
from .linear import bsgs_matvec
from .kernels import from_signed_batch
from .modmath import centered
from .polyeval import ChebyshevEvaluator
from .polynomial import COEFF, RnsPolynomial


@dataclass
class BootstrapConfig:
    """Tuning knobs for the bootstrapping pipeline.

    ``eval_mod_interval`` (the paper's ``K``) must cover the overflow
    polynomial ``I``; with a sparse secret of Hamming weight ``h`` its
    coefficients concentrate within ``~4*sqrt(h/12)``.
    """

    eval_mod_degree: int = 119
    eval_mod_interval: float = 12.0
    message_scale_bits: int = 26
    double_angles: int = 0  # Han-Ki: r cosine doublings shrink the degree

    @property
    def message_scale(self) -> float:
        return 2.0 ** self.message_scale_bits


def embedding_matrix(ring_degree: int) -> np.ndarray:
    """The canonical embedding matrix ``U[j, i] = zeta^(i * 5^j)``."""
    geom = get_geometry(ring_degree)
    exps = np.outer(geom.rot_exponents, np.arange(ring_degree))
    return np.exp(1j * np.pi * (exps % (2 * ring_degree)) / ring_degree)


class Bootstrapper:
    """Refreshes level-1 ciphertexts back to a high level."""

    def __init__(self, context: CKKSContext, config: BootstrapConfig = None):
        self.context = context
        self.params = context.params
        self.ev = Evaluator(context)
        self.cheb = ChebyshevEvaluator(self.ev)
        self.config = config or BootstrapConfig()
        if self.params.secret_hamming_weight == 0:
            raise ValueError(
                "bootstrapping requires a sparse secret "
                "(set secret_hamming_weight in the parameters)"
            )
        n = self.params.ring_degree
        half = n // 2
        u = embedding_matrix(n)
        u_h = np.conj(u.T)  # N x N/2
        q0 = self.params.moduli[0]
        s_in = self.config.message_scale
        # ModRaise declares the raised scale to be q0 * s_in — an *exact*,
        # noise-free division of the plaintext by q0 — so CoeffToSlot only
        # needs the s_in/N factor to land slot values on t_i/q0 in [-K, K].
        self._cts_lo = (s_in / n) * u_h[:half, :]
        self._cts_hi = (s_in / n) * u_h[half:, :]
        # SlotToCoeff matrices: column halves of U, scaled to undo the /q0.
        self._stc_lo = (q0 / s_in) * u[:, :half]
        self._stc_hi = (q0 / s_in) * u[:, half:]

    # ------------------------------------------------------------------ #

    def encrypt_for_bootstrap(self, values) -> Ciphertext:
        """Encrypt at level 1 with the bootstrap message scale.

        This mimics a ciphertext that has exhausted its multiplicative
        budget and is about to be refreshed.
        """
        pt = self.context.encoder.encode(
            values, scale=self.config.message_scale, level=1
        )
        return self.context.encrypt(pt)

    def to_bootstrap_entry(self, ct: Ciphertext) -> Ciphertext:
        """Drop a ciphertext to level 1 (budget exhausted)."""
        return ct.at_level(1)

    # ------------------------------------------------------------------ #
    # Pipeline stages (public so tests and examples can exercise them)

    def mod_raise(self, ct: Ciphertext) -> Ciphertext:
        """Re-interpret a level-1 ciphertext over the full modulus chain."""
        if ct.level != 1:
            raise ValueError("mod raise expects a level-1 ciphertext")
        params = self.params
        q0 = params.moduli[0]
        full = params.moduli
        polys = []
        for poly in ct.polys:
            coeffs = centered(poly.to_coeff().data[0], q0)
            data = from_signed_batch(coeffs, full)
            polys.append(RnsPolynomial(full, data, COEFF).to_eval())
        # Declaring the scale as q0 * s divides the plaintext t = m + q0*I
        # by q0 exactly, with zero noise — the slots now read t/q0.
        return Ciphertext(polys, ct.scale * q0)

    def coeff_to_slot(self, ct: Ciphertext) -> Tuple[Ciphertext, Ciphertext]:
        """Move coefficients into slots; outputs decode to ``t/q0`` halves.

        The input carries the non-standard ModRaise scale ``q0 * s_in``; a
        wide plaintext scale plus a double rescale bridges the output back
        onto the per-level scale invariant.
        """
        ev = self.ev
        params = self.params
        level = ct.level
        target = params.scale_at_level(level - 2)
        pt_scale = (
            target * params.moduli[level - 1] * params.moduli[level - 2] / ct.scale
        )
        kwargs = dict(pt_scale=pt_scale, rescales=2)
        w_lo = bsgs_matvec(ev, ct, matrix=self._cts_lo, **kwargs)
        w_hi = bsgs_matvec(ev, ct, matrix=self._cts_hi, **kwargs)
        t_lo = ev.add(w_lo, ev.conjugate(w_lo))
        t_hi = ev.add(w_hi, ev.conjugate(w_hi))
        return t_lo, t_hi

    def eval_mod(self, ct: Ciphertext) -> Ciphertext:
        """Approximate ``x -> (x mod 1)``-style reduction via the sine.

        With ``double_angles = r > 0`` the Han-Ki trick is used: evaluate
        ``cos(2*pi*(x - 1/4) / 2^r)`` — whose argument range, and hence the
        required Chebyshev degree, shrinks by ``2^r`` — then apply ``r``
        double-angle steps ``cos(2t) = 2cos(t)^2 - 1``, ending at
        ``cos(2*pi*x - pi/2) = sin(2*pi*x)``.  Costs ``r`` extra levels.
        """
        k = self.config.eval_mod_interval
        r = self.config.double_angles
        if r == 0:
            def reduced_sine(x):
                return np.sin(2 * np.pi * x) / (2 * np.pi)

            return self.cheb.evaluate_function(
                ct, reduced_sine, self.config.eval_mod_degree, interval=(-k, k)
            )

        scale = 2.0 ** r

        def shrunk_cosine(x):
            return np.cos(2 * np.pi * (x - 0.25) / scale)

        out = self.cheb.evaluate_function(
            ct, shrunk_cosine, self.config.eval_mod_degree, interval=(-k, k))
        ev = self.ev
        for _ in range(r):
            sq = ev.square(out)
            out = ev.add_scalar(ev.add(sq, sq), -1.0)
        return ev.mul_scalar(out, 1.0 / (2 * np.pi))

    def slot_to_coeff(self, t_lo: Ciphertext, t_hi: Ciphertext) -> Ciphertext:
        ev = self.ev
        z_lo = bsgs_matvec(ev, t_lo, matrix=self._stc_lo)
        z_hi = bsgs_matvec(ev, t_hi, matrix=self._stc_hi)
        return ev.add(z_lo, z_hi)

    # ------------------------------------------------------------------ #

    def bootstrap(self, ct: Ciphertext) -> Ciphertext:
        """Refresh a level-1 ciphertext to a high level.

        The output decodes to the same values as the input; its level is
        whatever the pipeline leaves (reported by ``refreshed_levels``).
        """
        raised = self.mod_raise(ct)
        t_lo, t_hi = self.coeff_to_slot(raised)
        m_lo = self.eval_mod(t_lo)
        m_hi = self.eval_mod(t_hi)
        return self.slot_to_coeff(m_lo, m_hi)

    def refreshed_levels(self) -> int:
        """Levels available to the application after one bootstrap."""
        probe = self.encrypt_for_bootstrap(np.zeros(4))
        return self.bootstrap(probe).level - 1
