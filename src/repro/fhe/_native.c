/* Compiled limb-stack NTT kernels for the "native" kernel backend.
 *
 * Built on demand by repro.fhe.native with the system C compiler and
 * loaded via ctypes; see that module for the ABI.  The arithmetic is the
 * same Shoup-multiplication / Harvey-lazy-reduction scheme as the
 * numpy-batched kernels in repro.fhe.kernels, so outputs are canonical
 * residues bit-identical to the per-limb reference:
 *
 *   w_sh = floor(w * 2^32 / p),  q = (v * w_sh) >> 32,
 *   s = v*w - q*p  in [0, 2p)         (requires v < 2^32, i.e. 4p < 2^32)
 *
 * Each limb (64 KB at N = 8192) is transformed start-to-finish before the
 * next, so the working set stays cache-resident; the branch-free umin
 * pattern lets the compiler auto-vectorize the butterflies.
 */
#include <stdint.h>

static inline uint64_t umin(uint64_t a, uint64_t b) { return a < b ? a : b; }

/* Forward negacyclic NTT, merged-twiddle Cooley-Tukey DIT, natural input,
 * bit-reversed output.  Lazy values stay < 4p; output is canonical. */
static void ntt_limb(uint64_t *restrict a, long n, const uint64_t *restrict psi,
                     const uint64_t *restrict psi_sh, uint64_t p) {
    uint64_t twop = p + p;
    for (long m = 1, t = n >> 1; m < n; m <<= 1, t >>= 1) {
        for (long j = 0; j < m; ++j) {
            uint64_t w = psi[m + j], wsh = psi_sh[m + j];
            uint64_t *restrict u = a + 2 * t * j;
            uint64_t *restrict v = u + t;
            for (long i = 0; i < t; ++i) {
                uint64_t uu = umin(u[i], u[i] - twop);   /* < 2p */
                uint64_t vv = v[i];                      /* < 4p < 2^32 */
                uint64_t q = (vv * wsh) >> 32;
                uint64_t s = vv * w - q * p;             /* < 2p */
                u[i] = uu + s;
                v[i] = uu + twop - s;
            }
        }
    }
    for (long i = 0; i < n; ++i) {
        uint64_t x = umin(a[i], a[i] - twop);
        a[i] = umin(x, x - p);
    }
}

/* Inverse negacyclic NTT, Gentleman-Sande, bit-reversed input, natural
 * output.  Lazy values stay < 2p; the final n^-1 scale canonicalizes. */
static void intt_limb(uint64_t *restrict a, long n,
                      const uint64_t *restrict ipsi,
                      const uint64_t *restrict ipsi_sh,
                      uint64_t p, uint64_t n_inv, uint64_t n_inv_sh) {
    uint64_t twop = p + p;
    for (long m = n >> 1, t = 1; m >= 1; m >>= 1, t <<= 1) {
        for (long j = 0; j < m; ++j) {
            uint64_t w = ipsi[m + j], wsh = ipsi_sh[m + j];
            uint64_t *restrict u = a + 2 * t * j;
            uint64_t *restrict v = u + t;
            for (long i = 0; i < t; ++i) {
                uint64_t uu = u[i], vv = v[i];           /* < 2p */
                uint64_t su = uu + vv;                   /* < 4p */
                uint64_t d = uu + twop - vv;             /* < 4p < 2^32 */
                uint64_t q = (d * wsh) >> 32;
                u[i] = umin(su, su - twop);              /* < 2p */
                v[i] = d * w - q * p;                    /* < 2p */
            }
        }
    }
    for (long i = 0; i < n; ++i) {
        uint64_t x = a[i];                               /* < 2p < 2^32 */
        uint64_t q = (x * n_inv_sh) >> 32;
        uint64_t r = x * n_inv - q * p;                  /* < 2p */
        a[i] = umin(r, r - p);
    }
}

void repro_ntt_batch(uint64_t *a, long limbs, long n,
                     const uint64_t *psi, const uint64_t *psi_sh,
                     const uint64_t *primes) {
    for (long l = 0; l < limbs; ++l)
        ntt_limb(a + l * n, n, psi + l * n, psi_sh + l * n, primes[l]);
}

void repro_intt_batch(uint64_t *a, long limbs, long n,
                      const uint64_t *ipsi, const uint64_t *ipsi_sh,
                      const uint64_t *primes, const uint64_t *n_inv,
                      const uint64_t *n_inv_sh) {
    for (long l = 0; l < limbs; ++l)
        intt_limb(a + l * n, n, ipsi + l * n, ipsi_sh + l * n,
                  primes[l], n_inv[l], n_inv_sh[l]);
}
