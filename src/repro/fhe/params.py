"""CKKS parameter sets.

A parameter set fixes the polynomial ring, the RNS prime chain, the
keyswitching digit count, and the encoding scale.  Two families are used in
this repository:

* **Functional parameters** (small ``N``, e.g. 1024-8192): used by the
  functional CKKS library and the ISA emulator, where real numpy data flows
  through every kernel.
* **Architectural parameters** (``N = 64K``, 28-bit datapath, ``L = 51`` at
  the top of the bootstrap chain): used *symbolically* by the compiler and
  the cycle-level simulator.  No polynomial data is materialized at this
  size; only limb counts, digit structure, and byte volumes matter.

The paper evaluates at 128-bit security with ``N = 64K``; the functional
sizes here trade security for tractability while preserving the exact
algebra (see DESIGN.md section 3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Tuple

from .primes import generate_primes


@dataclass(frozen=True)
class CKKSParams:
    """Immutable CKKS parameter set.

    Attributes:
        ring_degree: polynomial ring degree ``N`` (power of two).
        moduli: the ciphertext prime chain ``(q_0, ..., q_{L-1})``; a fresh
            ciphertext carries all ``L`` limbs and loses one per rescale.
        extension_moduli: the temporary extension basis ``P`` used by
            keyswitching (the paper's ``E``).
        num_digits: keyswitching digit count ``d`` (the paper's ``dnum``).
        scale: encoding scale Delta.
    """

    ring_degree: int
    moduli: Tuple[int, ...]
    extension_moduli: Tuple[int, ...]
    num_digits: int
    scale: float
    error_std: float = 3.2
    secret_hamming_weight: int = 0  # 0 = dense ternary secret
    level_scales: Tuple[float, ...] = ()

    def __post_init__(self):
        if self.ring_degree & (self.ring_degree - 1):
            raise ValueError("ring_degree must be a power of two")
        if self.num_digits < 1:
            raise ValueError("num_digits must be >= 1")
        if set(self.moduli) & set(self.extension_moduli):
            raise ValueError("ciphertext and extension moduli must be disjoint")

    @property
    def slot_count(self) -> int:
        """Number of complex plaintext slots (``N / 2``)."""
        return self.ring_degree // 2

    @property
    def max_level(self) -> int:
        """Number of limbs of a fresh ciphertext (the paper's level ``l``)."""
        return len(self.moduli)

    @property
    def limb_bytes(self) -> int:
        """Bytes of one limb at the architectural word width (4 B/coeff)."""
        return 4 * self.ring_degree

    def scale_at_level(self, level: int) -> float:
        """The exact-scale-management invariant scale for ``level`` limbs.

        A ciphertext at level ``l`` is kept at scale ``S_l`` where
        ``S_L = scale`` and ``S_{l-1} = S_l^2 / q_{l-1}`` — exactly the
        scale produced by multiplying two invariant ciphertexts and
        rescaling.  Keeping every ciphertext on the invariant makes all
        additions scale-exact (no drift error).
        """
        if not self.level_scales:
            return self.scale
        if not 1 <= level <= self.max_level:
            raise ValueError(f"level {level} out of range 1..{self.max_level}")
        return self.level_scales[level - 1]

    def basis_at_level(self, level: int) -> Tuple[int, ...]:
        """The active prime basis of a ciphertext holding ``level`` limbs."""
        if not 1 <= level <= self.max_level:
            raise ValueError(f"level {level} out of range 1..{self.max_level}")
        return self.moduli[:level]

    def digit_partition(self, level: int, num_digits: int = None) -> Tuple[Tuple[int, ...], ...]:
        """Split limb indices ``0..level-1`` into contiguous digits.

        Returns a tuple of tuples of limb *indices*.  The last digit may be
        smaller.  This is the digit layout used by sequential keyswitching;
        the parallel algorithms may use other (equally valid) partitions.
        """
        d = num_digits if num_digits is not None else self.num_digits
        d = min(d, level)
        size = math.ceil(level / d)
        return tuple(
            tuple(range(start, min(start + size, level)))
            for start in range(0, level, size)
        )


def _order_chain_greedily(pool, levels: int, scale: float):
    """Assign pool primes to chain positions to keep level scales on target.

    Walking levels top-down, the invariant scale evolves as
    ``S_{l-1} = S_l^2 / q_{l-1}``; greedily picking the pool prime closest
    to ``S_l^2 / scale`` keeps every ``S_l`` within a few ppm of ``scale``
    (the choice is self-correcting).  Returns the ordered chain primes for
    positions ``levels-1 .. 1`` and the resulting per-level scale table.
    """
    pool = list(pool)
    chain = [None] * (levels - 1)  # positions 1 .. levels-1
    scales = [0.0] * levels  # scales[l-1] = S_l
    s = scale
    scales[levels - 1] = s
    for position in range(levels - 1, 0, -1):
        target = s * s / scale
        best = min(pool, key=lambda q: abs(q - target))
        pool.remove(best)
        chain[position - 1] = best
        s = s * s / best
        scales[position - 1] = s
    return chain, scales


def make_params(
    ring_degree: int = 1024,
    levels: int = 8,
    prime_bits: int = 28,
    num_digits: int = 3,
    extension_count: int = None,
    scale_bits: int = None,
    secret_hamming_weight: int = 0,
) -> CKKSParams:
    """Construct a parameter set with freshly generated NTT-friendly primes.

    ``extension_count`` defaults to ``ceil(levels / num_digits)`` so that the
    extension product ``P`` dominates every digit product (the extension
    primes are wider than the chain primes, giving noise headroom).  Chain
    primes are assigned to levels greedily to keep the exact-scale
    invariant flat (see :func:`_order_chain_greedily`).
    """
    if extension_count is None:
        extension_count = math.ceil(levels / num_digits)
    # The first modulus and the extension primes get extra width: q_0 for
    # decryption headroom, P for keyswitching noise headroom.
    wide_bits = 31
    wide = generate_primes(1 + extension_count, wide_bits, ring_degree)
    q0, ext = wide[0], tuple(wide[1:])
    scale = 2.0 ** (scale_bits if scale_bits is not None else prime_bits)
    # Oversample the pool: half the primes from below the scale, half from
    # above, so the greedy level assignment can keep scales centered.
    slack = 8
    below = generate_primes(levels - 1 + slack, prime_bits, ring_degree,
                            exclude=tuple(wide))
    # The greedy ladder consumes above-scale primes about as often as
    # below-scale ones; a pool capped at `slack` above-scale primes loses
    # its self-correction on deep chains and S_l drifts doubly
    # exponentially (overflowing to inf by L ~ 50).  Extra candidates are
    # strictly farther from the scale than the first `slack`, so shallow
    # chains keep picking the same primes as before.
    above = generate_primes(max(slack, levels - 1), prime_bits + 1,
                            ring_degree, exclude=tuple(wide) + tuple(below),
                            descending=False)
    pool = below + [p for p in above if p < 2 * scale]
    chain, level_scales = _order_chain_greedily(pool, levels, scale)
    if max(level_scales) > 2 * scale or min(level_scales) < scale / 2:
        raise ValueError(
            f"level-scale ladder drifted off the invariant "
            f"(levels={levels}, prime_bits={prime_bits}): widen the prime pool"
        )
    return CKKSParams(
        ring_degree=ring_degree,
        moduli=(q0, *chain),
        extension_moduli=ext,
        num_digits=num_digits,
        scale=scale,
        secret_hamming_weight=secret_hamming_weight,
        level_scales=tuple(level_scales),
    )


def toy_params(levels: int = 6, ring_degree: int = 256) -> CKKSParams:
    """Tiny parameters for fast unit tests (no security)."""
    return make_params(ring_degree=ring_degree, levels=levels, prime_bits=28,
                       num_digits=2)


# Architectural parameters used symbolically by the compiler/simulator: the
# paper's N = 64K ring with the bootstrap chain topping out at L = 51 limbs
# and four-digit keyswitching (digit size <= 13, matching the BCU's 13-input
# limit).  Primes are *placeholders* (never used for arithmetic at this size).
ARCH_RING_DEGREE = 65536
ARCH_MAX_LEVEL = 51
ARCH_NUM_DIGITS = 4
ARCH_LIMB_BYTES = 4 * ARCH_RING_DEGREE  # 28-bit words stored in 4 B lanes


@dataclass(frozen=True)
class ArchParams:
    """Scheme-shape parameters for symbolic compilation at datacenter scale.

    Carries everything the compiler and simulator need (limb counts, digit
    structure, byte volumes) without materializing primes or data.
    """

    ring_degree: int = ARCH_RING_DEGREE
    max_level: int = ARCH_MAX_LEVEL
    num_digits: int = ARCH_NUM_DIGITS
    extension_count: int = field(default=13)

    @property
    def limb_bytes(self) -> int:
        return 4 * self.ring_degree

    @property
    def slot_count(self) -> int:
        return self.ring_degree // 2

    def digit_partition(self, level: int, num_digits: int = None) -> Tuple[Tuple[int, ...], ...]:
        d = num_digits if num_digits is not None else self.num_digits
        d = min(d, level)
        size = math.ceil(level / d)
        return tuple(
            tuple(range(start, min(start + size, level)))
            for start in range(0, level, size)
        )
