"""CKKS ciphertexts.

A ciphertext is a list of polynomials (length 2 normally, 3 after an
un-relinearized multiplication) over the active prime basis, plus the
encoding scale of the underlying plaintext.  Decryption evaluates
``sum_k c_k * s^k``.
"""

from __future__ import annotations

from typing import List

import numpy as np

from .polynomial import RnsPolynomial


class Ciphertext:
    """An encryption of a packed vector under the CKKS scheme."""

    __slots__ = ("polys", "scale", "noise")

    def __init__(self, polys: List[RnsPolynomial], scale: float):
        if not polys:
            raise ValueError("ciphertext needs at least one polynomial")
        basis = polys[0].basis
        for p in polys[1:]:
            if p.basis != basis:
                raise ValueError("all ciphertext polynomials must share a basis")
        self.polys = list(polys)
        self.scale = float(scale)
        #: Optional NoiseEstimate attached by a tracking Evaluator.
        self.noise = None

    @property
    def degree(self) -> int:
        """Number of polynomial components (2 = canonical, 3 = pre-relin)."""
        return len(self.polys)

    @property
    def level(self) -> int:
        """Number of RNS limbs remaining (the multiplicative budget proxy)."""
        return self.polys[0].level

    @property
    def basis(self):
        return self.polys[0].basis

    @property
    def ring_degree(self) -> int:
        return self.polys[0].ring_degree

    def copy(self) -> "Ciphertext":
        out = Ciphertext([p.copy() for p in self.polys], self.scale)
        out.noise = self.noise
        return out

    def at_level(self, level: int) -> "Ciphertext":
        """Drop limbs down to ``level`` (modulus switching without scaling)."""
        if level == self.level:
            return self
        out = Ciphertext([p.drop_limbs(level) for p in self.polys], self.scale)
        out.noise = self.noise
        return out

    def __repr__(self):
        return (
            f"Ciphertext(degree={self.degree}, level={self.level}, "
            f"scale=2^{np.log2(self.scale):.1f})"
        )
