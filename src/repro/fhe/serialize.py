"""Serialization of parameters, ciphertexts, and plaintexts.

A deployable FHE stack has to move ciphertexts between client and server;
this module provides a compact ``.npz``-based wire format:

* parameters travel as their defining integers (primes, digit count,
  scale table), so both sides reconstruct identical ``CKKSParams``;
* ciphertexts/plaintexts travel as their limb matrices plus scale and a
  parameter fingerprint that guards against mixing incompatible contexts.

Secret keys are deliberately *not* serializable here — a reproduction of a
server-side system has no business shipping them around; tests generate
keys from seeds instead.
"""

from __future__ import annotations

import hashlib
import io
import json
import struct
import zlib

import numpy as np

from .ciphertext import Ciphertext
from .encoding import Plaintext
from .params import CKKSParams
from .polynomial import EVAL, RnsPolynomial

_MAGIC = "repro-cinnamon-v1"

#: Version of the framed wire format (the CRC32 header below).  v1 blobs
#: were headerless ``.npz`` archives; loaders still accept them.
SERIALIZE_SCHEMA_VERSION = 2

#: Frame header: magic + big-endian (version: u16, crc32: u32).
_FRAME_MAGIC = b"CNMN"
_FRAME_FMT = ">HI"
_FRAME_LEN = len(_FRAME_MAGIC) + struct.calcsize(_FRAME_FMT)

#: Headerless legacy payloads are zip archives (``np.savez``).
_ZIP_MAGIC = b"PK"


class CorruptPayloadError(ValueError):
    """A serialized blob failed its integrity check (bad header, wrong
    version, or CRC mismatch from corruption/truncation)."""


def frame_payload(payload: bytes) -> bytes:
    """Prefix ``payload`` with the versioned CRC32 frame header."""
    crc = zlib.crc32(payload) & 0xFFFFFFFF
    return _FRAME_MAGIC + struct.pack(
        _FRAME_FMT, SERIALIZE_SCHEMA_VERSION, crc) + payload


def unframe_payload(data: bytes, allow_legacy: bool = True) -> bytes:
    """Validate and strip the frame header; raises
    :class:`CorruptPayloadError` on corruption.

    With ``allow_legacy``, headerless v1 blobs (bare ``.npz`` archives)
    pass through unchecked for compatibility with pre-CRC snapshots.
    """
    if not data.startswith(_FRAME_MAGIC):
        if allow_legacy and data[:2] == _ZIP_MAGIC:
            return data
        raise CorruptPayloadError(
            "not a framed cinnamon payload (bad magic); refusing to "
            "deserialize")
    if len(data) < _FRAME_LEN:
        raise CorruptPayloadError("truncated payload: header incomplete")
    version, crc = struct.unpack(
        _FRAME_FMT, data[len(_FRAME_MAGIC):_FRAME_LEN])
    if version > SERIALIZE_SCHEMA_VERSION:
        raise CorruptPayloadError(
            f"payload schema v{version} is newer than this reader "
            f"(v{SERIALIZE_SCHEMA_VERSION})")
    payload = data[_FRAME_LEN:]
    if zlib.crc32(payload) & 0xFFFFFFFF != crc:
        raise CorruptPayloadError(
            "payload CRC32 mismatch: blob is corrupt or truncated")
    return payload


def params_fingerprint(params: CKKSParams) -> str:
    """Stable hash identifying a parameter set (not its keys)."""
    payload = json.dumps({
        "ring_degree": params.ring_degree,
        "moduli": list(params.moduli),
        "extension": list(params.extension_moduli),
        "digits": params.num_digits,
    }, sort_keys=True).encode()
    return hashlib.sha256(payload).hexdigest()[:16]


def dump_params(params: CKKSParams) -> bytes:
    """Serialize a parameter set to bytes."""
    blob = json.dumps({
        "magic": _MAGIC,
        "kind": "params",
        "ring_degree": params.ring_degree,
        "moduli": list(params.moduli),
        "extension_moduli": list(params.extension_moduli),
        "num_digits": params.num_digits,
        "scale": params.scale,
        "error_std": params.error_std,
        "secret_hamming_weight": params.secret_hamming_weight,
        "level_scales": list(params.level_scales),
    })
    return blob.encode()


def load_params(data: bytes) -> CKKSParams:
    payload = json.loads(data.decode())
    if payload.get("magic") != _MAGIC or payload.get("kind") != "params":
        raise ValueError("not a serialized parameter set")
    return CKKSParams(
        ring_degree=payload["ring_degree"],
        moduli=tuple(payload["moduli"]),
        extension_moduli=tuple(payload["extension_moduli"]),
        num_digits=payload["num_digits"],
        scale=payload["scale"],
        error_std=payload["error_std"],
        secret_hamming_weight=payload["secret_hamming_weight"],
        level_scales=tuple(payload["level_scales"]),
    )


def _dump_polys(kind: str, polys, scale: float, params: CKKSParams) -> bytes:
    buffer = io.BytesIO()
    arrays = {f"poly{i}": poly.to_eval().data for i, poly in enumerate(polys)}
    meta = json.dumps({
        "magic": _MAGIC,
        "kind": kind,
        "scale": scale,
        "level": polys[0].level,
        "degree": len(polys),
        "fingerprint": params_fingerprint(params),
    })
    np.savez_compressed(buffer, meta=np.frombuffer(meta.encode(), dtype=np.uint8),
                        **arrays)
    return frame_payload(buffer.getvalue())


def _load_polys(data: bytes, expect_kind: str, params: CKKSParams):
    data = unframe_payload(data)
    with np.load(io.BytesIO(data)) as archive:
        meta = json.loads(bytes(archive["meta"]).decode())
        if meta.get("magic") != _MAGIC or meta.get("kind") != expect_kind:
            raise ValueError(f"not a serialized {expect_kind}")
        if meta["fingerprint"] != params_fingerprint(params):
            raise ValueError(
                "parameter fingerprint mismatch: ciphertext belongs to a "
                "different context")
        basis = params.basis_at_level(meta["level"])
        polys = [
            RnsPolynomial(basis, archive[f"poly{i}"], EVAL)
            for i in range(meta["degree"])
        ]
        return polys, meta["scale"]


def dump_ciphertext(ct: Ciphertext, params: CKKSParams) -> bytes:
    return _dump_polys("ciphertext", ct.polys, ct.scale, params)


def load_ciphertext(data: bytes, params: CKKSParams) -> Ciphertext:
    polys, scale = _load_polys(data, "ciphertext", params)
    return Ciphertext(polys, scale)


def dump_plaintext(pt: Plaintext, params: CKKSParams) -> bytes:
    return _dump_polys("plaintext", [pt.poly], pt.scale, params)


def load_plaintext(data: bytes, params: CKKSParams) -> Plaintext:
    polys, scale = _load_polys(data, "plaintext", params)
    return Plaintext(polys[0], scale)


def ciphertext_wire_bytes(params: CKKSParams, level: int,
                          degree: int = 2) -> int:
    """Uncompressed wire size of a ciphertext (the paper's ~20 MB at
    N = 64K, L ~ 40)."""
    return degree * level * params.limb_bytes
