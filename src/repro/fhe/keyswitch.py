"""Sequential (single-chip) hybrid keyswitching — the reference algorithm.

This is Figure 4 of the paper: digit-decompose the input polynomial, mod-up
each digit to the extended basis ``Q u E``, inner-product with the
evaluation key, and mod-down back to ``Q``.  The parallel scale-out variants
in :mod:`repro.fhe.parallel` are validated bit-exactly against this module.

The module deliberately exposes the intermediate steps (``modup_digit``,
``evalkey_accumulate``, ``moddown_pair``) because the parallel algorithms
re-order and re-partition exactly these pieces.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from .keys import EvalKey
from .params import CKKSParams
from .polynomial import COEFF, RnsPolynomial
from .rns import mod_down, mod_up


def modup_digit(
    d_coeff: RnsPolynomial,
    digit_indices: Sequence[int],
    extended_basis: Tuple[int, ...],
) -> RnsPolynomial:
    """Mod-up one digit of a coefficient-domain polynomial to ``Q u E``.

    Returns the extended digit in the **evaluation** domain, ready for the
    evaluation-key inner product.
    """
    if d_coeff.domain != COEFF:
        raise ValueError("mod-up requires the coefficient domain")
    digit_primes = tuple(d_coeff.basis[i] for i in digit_indices)
    limbs = d_coeff.data[list(digit_indices)]
    extended = mod_up(limbs, digit_primes, extended_basis)
    return RnsPolynomial(extended_basis, extended, COEFF).to_eval()


def evalkey_accumulate(
    extended_digits: List[RnsPolynomial], evk: EvalKey
) -> Tuple[RnsPolynomial, RnsPolynomial]:
    """Accumulate ``sum_i digit_i * evk_i`` for both key components."""
    if len(extended_digits) != evk.num_digits:
        raise ValueError(
            f"{len(extended_digits)} digits vs {evk.num_digits} key digits"
        )
    f0 = None
    f1 = None
    for digit_poly, (b_i, a_i) in zip(extended_digits, evk.digits):
        t0 = digit_poly * b_i
        t1 = digit_poly * a_i
        f0 = t0 if f0 is None else f0 + t0
        f1 = t1 if f1 is None else f1 + t1
    return f0, f1


def moddown_poly(
    f_ext: RnsPolynomial, active_basis: Tuple[int, ...], ext_basis: Tuple[int, ...]
) -> RnsPolynomial:
    """Mod-down one polynomial from ``Q u E`` back to ``Q`` (eval domain)."""
    coeff = f_ext.to_coeff()
    reduced = mod_down(coeff.data, active_basis, ext_basis)
    return RnsPolynomial(active_basis, reduced, COEFF).to_eval()


def keyswitch(
    d: RnsPolynomial, evk: EvalKey, params: CKKSParams
) -> Tuple[RnsPolynomial, RnsPolynomial]:
    """Switch polynomial ``d`` (multiplying ``s_src``) to key ``s``.

    Returns the pair ``(f0, f1)`` over the active basis such that
    ``f0 + f1*s ~ d*s_src`` (up to keyswitching noise).  ``evk`` must have
    been generated at ``d``'s level with the partition it carries.
    """
    active = d.basis
    if evk.level != len(active):
        raise ValueError(
            f"evaluation key level {evk.level} != polynomial level {len(active)}"
        )
    ext = params.extension_moduli
    extended_basis = active + ext
    d_coeff = d.to_coeff()
    extended_digits = [
        modup_digit(d_coeff, digit, extended_basis) for digit in evk.partition
    ]
    f0_ext, f1_ext = evalkey_accumulate(extended_digits, evk)
    return moddown_poly(f0_ext, active, ext), moddown_poly(f1_ext, active, ext)


def hoisted_decompose(
    d: RnsPolynomial, partition, params: CKKSParams
) -> List[RnsPolynomial]:
    """The shared mod-up of hoisted rotations.

    Computes the extended digits of ``d`` once; callers then apply (cheap)
    automorphisms to the decomposition per rotation instead of re-running
    the expensive mod-up.  Automorphism commutes with base conversion up to
    the mod-up representative (a bounded multiple of the digit modulus per
    coefficient), so hoisting is semantics-preserving — the difference is
    ordinary keyswitching noise.
    """
    active = d.basis
    extended_basis = active + params.extension_moduli
    d_coeff = d.to_coeff()
    return [modup_digit(d_coeff, digit, extended_basis) for digit in partition]
