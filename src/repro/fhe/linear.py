"""Homomorphic linear algebra: diagonal-method matrix-vector products.

The workhorse of encrypted ML — and of bootstrapping's CoeffToSlot /
SlotToCoeff — is the square matrix-vector product over the slots:

    y = M @ x   ==>   y = sum_d diag_d(M) * rot(x, d)

The baby-step/giant-step (BSGS) variant factors the ``n`` rotations into
``n1`` inner ("baby") and ``n2`` outer ("giant") rotations with
``n = n1 * n2``, reducing the keyswitch count from ``n`` to about
``n1 + n2`` — this is the BSGS pattern whose communication the Cinnamon
keyswitch pass collapses to O(1) broadcasts/aggregations (Section 4.3.1).
"""

from __future__ import annotations

import math
from typing import Dict

import numpy as np

from .ciphertext import Ciphertext
from .evaluator import Evaluator


def matrix_diagonals(matrix: np.ndarray) -> Dict[int, np.ndarray]:
    """Extract the generalized diagonals ``diag_d[i] = M[i, (i+d) % n]``.

    Zero diagonals are omitted (sparse transform matrices like the
    bootstrapping DFT factors have very few nonzero diagonals).
    """
    n = matrix.shape[0]
    if matrix.shape != (n, n):
        raise ValueError("matrix must be square")
    diagonals: Dict[int, np.ndarray] = {}
    rows = np.arange(n)
    for d in range(n):
        diag = matrix[rows, (rows + d) % n]
        if np.any(np.abs(diag) > 1e-14):
            diagonals[d] = diag
    return diagonals


def pad_matrix_block(matrix: np.ndarray, block: int = None) -> np.ndarray:
    """Embed a (possibly rectangular) matrix into a ``block x block`` square.

    The pad-and-mask trick for non-square matvecs: zero rows beyond
    ``rows`` leave the output's tail slots at exactly zero, and zero
    columns beyond ``cols`` mask out whatever junk the input vector
    carries past its valid width — so a padded matvec composes safely
    with other padded layers without explicit mask multiplications.

    ``block`` defaults to the next power of two covering both dimensions
    (rotation amounts then stay power-of-two friendly).
    """
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise ValueError("expected a 2-D matrix")
    rows, cols = matrix.shape
    if block is None:
        block = 1 << max(0, int(math.ceil(math.log2(max(rows, cols)))))
    if block < max(rows, cols):
        raise ValueError(
            f"block {block} cannot hold a {rows}x{cols} matrix")
    if matrix.shape == (block, block):
        return matrix
    padded = np.zeros((block, block), dtype=matrix.dtype)
    padded[:rows, :cols] = matrix
    return padded


def rect_diagonals(matrix: np.ndarray, block: int = None) -> Dict[int, np.ndarray]:
    """Generalized diagonals of the block-padded (rectangular) matrix."""
    return matrix_diagonals(pad_matrix_block(matrix, block))


def select_baby_steps(offsets, n: int) -> int:
    """Rotation-count-minimizing BSGS split for a set of diagonal offsets.

    The classic ``n1 ~ sqrt(n)`` split is optimal for dense matrices, but
    the structured matrices the :mod:`repro.nn` lowering produces (im2col
    convolutions, block-diagonal batched linears) populate only a few
    generalized diagonals.  This picks the power-of-two ``n1`` minimizing
    the keyswitch count ``|babies != 0| + |giants != 0|`` for the
    diagonals actually present.
    """
    offsets = sorted({int(d) % n for d in offsets})
    if not offsets:
        raise ValueError("no diagonal offsets given")
    best_n1, best_cost = 1, None
    n1 = 1
    while n1 <= n:
        babies = {d % n1 for d in offsets} - {0}
        giants = {d // n1 for d in offsets} - {0}
        cost = len(babies) + len(giants)
        if best_cost is None or cost < best_cost:
            best_n1, best_cost = n1, cost
        n1 <<= 1
    return best_n1


def plain_matvec_reference(matrix: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Oracle for the slot semantics of :func:`bsgs_matvec`.

    Works for rectangular matrices too: an ``m x k`` matrix against the
    first ``k`` entries of ``x`` yields the ``m`` outputs that
    :func:`bsgs_matvec` places in the leading slots of each block (the
    padded tail decodes to zero).
    """
    matrix = np.asarray(matrix)
    x = np.asarray(x)
    cols = matrix.shape[1]
    if len(x) < cols:
        raise ValueError(f"input of length {len(x)} shorter than the "
                         f"{cols} matrix columns")
    return matrix @ x[:cols]


def bsgs_matvec(
    ev: Evaluator,
    ct: Ciphertext,
    matrix: np.ndarray = None,
    diagonals: Dict[int, np.ndarray] = None,
    baby_steps: int = None,
    pt_scale: float = None,
    rescales: int = 1,
    block: int = None,
) -> Ciphertext:
    """Homomorphic ``y = M @ x`` over the first ``n`` slots.

    ``n`` (the matrix dimension) must divide the slot count.  The input is
    assumed to be replicated modulo ``n`` across the slots when ``n`` is
    smaller than the slot count (encrypt ``np.tile(x, slots//n)``), which
    makes plain ``np.roll``-style rotation semantics exact.

    Either a dense ``matrix`` or a precomputed ``diagonals`` dict may be
    given.  A rectangular matrix is padded-and-masked into a ``block``-
    sized square (defaulting to the covering power of two; see
    :func:`pad_matrix_block`): the result lands in the leading ``rows``
    slots of each block with an exactly-zero tail, and junk in the input
    slots past ``cols`` is masked out by the zero pad columns.  Uses
    hoisted rotations for the baby steps — exactly the "multiple
    rotations on one ciphertext" pattern the Cinnamon compiler optimizes
    with input-broadcast keyswitching.

    ``pt_scale`` overrides the diagonal encoding scale and ``rescales``
    sets how many limbs the product consumes (bootstrapping's CoeffToSlot
    uses a wide plaintext scale with two rescales to bridge its
    non-standard ciphertext scale back onto the level invariant).
    """
    if diagonals is None:
        if matrix is None:
            raise ValueError("need a matrix or its diagonals")
        matrix = np.asarray(matrix, dtype=np.complex128)
        if block is not None or matrix.shape[0] != matrix.shape[1]:
            matrix = pad_matrix_block(matrix, block)
        diagonals = matrix_diagonals(matrix)
    if not diagonals:
        raise ValueError("matrix has no nonzero diagonals")
    n = len(next(iter(diagonals.values())))
    slots = ev.params.slot_count
    if slots % n:
        raise ValueError(f"matrix dimension {n} must divide slot count {slots}")

    if baby_steps == "auto":
        baby_steps = select_baby_steps(diagonals, n)
    elif baby_steps is None:
        baby_steps = 1 << max(0, math.ceil(math.log2(math.sqrt(n))))
    n1 = min(baby_steps, n)
    n2 = math.ceil(n / n1)

    # Group diagonals by giant step: d = j*n1 + i.
    groups: Dict[int, Dict[int, np.ndarray]] = {}
    for d, diag in diagonals.items():
        j, i = divmod(d, n1)
        groups.setdefault(j, {})[i] = diag

    needed_babies = sorted({i for g in groups.values() for i in g})
    rotated = ev.rotate_hoisted(ct, needed_babies)

    result = None
    for j in sorted(groups):
        inner = None
        for i, diag in groups[j].items():
            # Giant-step correction: rot(diag * rot(x, d), 0) decomposes as
            # rot_{j*n1}( rot_{-j*n1}(diag) * rot_i(x) ).
            adjusted = np.roll(diag, j * n1)
            tiled = np.tile(adjusted, slots // n)
            term = ev.mul_values(rotated[i], tiled, rescale=False,
                                 pt_scale=pt_scale)
            inner = term if inner is None else ev.add(inner, term)
        inner = ev.rescale(inner)
        if j:
            inner = ev.rotate(inner, j * n1)
        result = inner if result is None else ev.add(result, inner)
    for _ in range(rescales - 1):
        result = ev.rescale(result)
    return result


# --------------------------------------------------------------------------- #
# Encrypted matrix-matrix multiplication (Jiang-Kim-Lauter-Song / E2DM).
#
# Both operands are d x d matrices packed row-major into d^2 slots.  The
# algorithm first applies the sigma/tau permutations (diagonal matmuls),
# then accumulates d column/row-shifted Hadamard products:
#
#     C = sum_k colshift_k(sigma(A)) * rowshift_k(tau(B))
#
# Depth: one plaintext matmul + one masking multiply + one ciphertext
# multiply -- the standard transformer matmul kernel in FHE [65].


def _sigma_permutation(d: int) -> np.ndarray:
    """sigma(A)[i, j] = A[i, (i + j) mod d] as a d^2 x d^2 0/1 matrix."""
    n = d * d
    m = np.zeros((n, n))
    for i in range(d):
        for j in range(d):
            m[i * d + j, i * d + (i + j) % d] = 1.0
    return m


def _tau_permutation(d: int) -> np.ndarray:
    """tau(B)[i, j] = B[(i + j) mod d, j] as a d^2 x d^2 0/1 matrix."""
    n = d * d
    m = np.zeros((n, n))
    for i in range(d):
        for j in range(d):
            m[i * d + j, ((i + j) % d) * d + j] = 1.0
    return m


def _column_shift_masks(d: int, k: int, slots: int):
    """Masks splitting a column rotation by k into its two wrap parts."""
    n = d * d
    keep = np.zeros(n)
    wrap = np.zeros(n)
    for i in range(d):
        for j in range(d):
            if j < d - k:
                keep[i * d + j] = 1.0
            else:
                wrap[i * d + j] = 1.0
    reps = slots // n
    return np.tile(keep, reps), np.tile(wrap, reps)


def encrypted_matmul(ev: Evaluator, ct_a: Ciphertext, ct_b: Ciphertext,
                     d: int) -> Ciphertext:
    """Homomorphic ``C = A @ B`` for row-major packed d x d matrices.

    Inputs must be packed with :func:`repro.fhe.packing.tile_vector` over
    ``d*d`` entries (``d*d`` must divide the slot count).  Consumes three
    multiplicative levels.
    """
    slots = ev.params.slot_count
    n = d * d
    if slots % n:
        raise ValueError(f"matrix of {n} entries must divide {slots} slots")
    a0 = bsgs_matvec(ev, ct_a, matrix=_sigma_permutation(d))
    b0 = bsgs_matvec(ev, ct_b, matrix=_tau_permutation(d))
    acc = ev.mul(a0, b0)
    for k in range(1, d):
        keep, wrap = _column_shift_masks(d, k, slots)
        shifted = ev.add(
            ev.mul_values(ev.rotate(a0, k), keep),
            ev.mul_values(ev.rotate(a0, k - d), wrap),
        )
        b_k = ev.rotate(b0, d * k)
        b_k = ev.mul_values(b_k, np.ones(slots))  # align level with shifted
        acc = ev.add(acc, ev.mul(shifted, b_k))
    return acc
