"""Slot-packing utilities for encrypted ML data layouts.

CKKS programs live or die by their packing discipline: rotations only make
sense relative to how data was laid out in the slots.  These helpers
implement the standard layouts used by the workloads (and by the paper's
benchmarks):

* **tiled vectors** — a length-``n`` vector replicated ``slots/n`` times,
  so rotations wrap within the vector (what :func:`repro.fhe.linear
  .bsgs_matvec` expects);
* **row-major matrices** — for matrix-vector products via rotate-and-sum;
* **zero-padded prefixes** — for the analytics reductions;
* **multi-vector batching** — several independent vectors in one
  ciphertext, with helpers to extract each.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np


def tile_vector(values: Sequence[float], slot_count: int) -> np.ndarray:
    """Replicate a vector across the slots (rotation-friendly layout)."""
    values = np.asarray(values)
    n = len(values)
    if slot_count % n:
        raise ValueError(f"vector length {n} must divide {slot_count} slots")
    return np.tile(values, slot_count // n)


def pad_prefix(values: Sequence[float], slot_count: int,
               fill: float = 0.0) -> np.ndarray:
    """Place a vector in the leading slots, padding the tail with ``fill``."""
    values = np.asarray(values, dtype=np.complex128 if
                        np.iscomplexobj(values) else np.float64)
    if len(values) > slot_count:
        raise ValueError(f"{len(values)} values exceed {slot_count} slots")
    out = np.full(slot_count, fill, dtype=values.dtype)
    out[: len(values)] = values
    return out


def pack_matrix_rows(matrix: np.ndarray, slot_count: int) -> np.ndarray:
    """Row-major flattening of a matrix into the leading slots."""
    matrix = np.asarray(matrix)
    flat = matrix.reshape(-1)
    return pad_prefix(flat, slot_count)


def batch_vectors(vectors: List[Sequence[float]], slot_count: int) -> np.ndarray:
    """Pack independent equal-length vectors back to back.

    Vector ``i`` occupies slots ``[i*stride, (i+1)*stride)`` where
    ``stride`` is the (power-of-two) vector length — the layout under
    which per-vector rotations are ``rotate(k)`` composed with masking.
    """
    if not vectors:
        raise ValueError("no vectors given")
    stride = len(vectors[0])
    if stride & (stride - 1):
        raise ValueError("vector length must be a power of two")
    if any(len(v) != stride for v in vectors):
        raise ValueError("vectors must share a length")
    if stride * len(vectors) > slot_count:
        raise ValueError("batch does not fit in the slots")
    out = np.zeros(slot_count)
    for i, vec in enumerate(vectors):
        out[i * stride:(i + 1) * stride] = vec
    return out


def extract_vector(slots: np.ndarray, index: int, stride: int) -> np.ndarray:
    """Inverse of :func:`batch_vectors` for decoded slot arrays."""
    return np.asarray(slots)[index * stride:(index + 1) * stride]


def batch_mask(index: int, stride: int, slot_count: int) -> np.ndarray:
    """Multiplicative 0/1 mask selecting one vector of a batch."""
    mask = np.zeros(slot_count)
    mask[index * stride:(index + 1) * stride] = 1.0
    return mask
