"""Slot-packing utilities for encrypted ML data layouts.

CKKS programs live or die by their packing discipline: rotations only make
sense relative to how data was laid out in the slots.  These helpers
implement the standard layouts used by the workloads (and by the paper's
benchmarks):

* **tiled vectors** — a length-``n`` vector replicated ``slots/n`` times,
  so rotations wrap within the vector (what :func:`repro.fhe.linear
  .bsgs_matvec` expects);
* **row-major matrices** — for matrix-vector products via rotate-and-sum;
* **zero-padded prefixes** — for the analytics reductions;
* **multi-vector batching** — several independent vectors in one
  ciphertext, with helpers to extract each;
* **lane frames** — the :mod:`repro.nn` layout: ``lanes`` vectors, each
  zero-padded into a power-of-two ``block``, concatenated into one frame
  that is tiled across the slots.

Capacity violations raise the typed :class:`SlotCapacityError` (a
``ValueError`` subclass) so callers — the :mod:`repro.nn` lowering pass
in particular — can distinguish "this layer does not fit the ring" from
generic misuse, instead of silently wrapping or truncating data.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np


class SlotCapacityError(ValueError):
    """A packed layout does not fit the available plaintext slots.

    Raised by the tile/batch/lane helpers whenever the requested width
    exceeds the slot count (the failure mode that would otherwise show up
    as silent wraparound of rotated data).  Carries the offending
    ``needed``/``available`` counts for diagnostics.
    """

    def __init__(self, message: str, *, needed: int = None,
                 available: int = None):
        super().__init__(message)
        self.needed = needed
        self.available = available


def _require_capacity(needed: int, slot_count: int, what: str) -> None:
    if needed > slot_count:
        raise SlotCapacityError(
            f"{what} needs {needed} slots but the ring provides "
            f"{slot_count}", needed=needed, available=slot_count)


def tile_vector(values: Sequence[float], slot_count: int) -> np.ndarray:
    """Replicate a vector across the slots (rotation-friendly layout)."""
    values = np.asarray(values)
    n = len(values)
    _require_capacity(n, slot_count, f"tiled vector of length {n}")
    if slot_count % n:
        raise ValueError(f"vector length {n} must divide {slot_count} slots")
    return np.tile(values, slot_count // n)


def pad_prefix(values: Sequence[float], slot_count: int,
               fill: float = 0.0) -> np.ndarray:
    """Place a vector in the leading slots, padding the tail with ``fill``."""
    values = np.asarray(values, dtype=np.complex128 if
                        np.iscomplexobj(values) else np.float64)
    _require_capacity(len(values), slot_count,
                      f"prefix of {len(values)} values")
    out = np.full(slot_count, fill, dtype=values.dtype)
    out[: len(values)] = values
    return out


def pack_matrix_rows(matrix: np.ndarray, slot_count: int) -> np.ndarray:
    """Row-major flattening of a matrix into the leading slots."""
    matrix = np.asarray(matrix)
    flat = matrix.reshape(-1)
    return pad_prefix(flat, slot_count)


def batch_vectors(vectors: List[Sequence[float]], slot_count: int) -> np.ndarray:
    """Pack independent equal-length vectors back to back.

    Vector ``i`` occupies slots ``[i*stride, (i+1)*stride)`` where
    ``stride`` is the (power-of-two) vector length — the layout under
    which per-vector rotations are ``rotate(k)`` composed with masking.
    """
    if not vectors:
        raise ValueError("no vectors given")
    stride = len(vectors[0])
    if stride & (stride - 1):
        raise ValueError("vector length must be a power of two")
    if any(len(v) != stride for v in vectors):
        raise ValueError("vectors must share a length")
    _require_capacity(stride * len(vectors), slot_count,
                      f"batch of {len(vectors)} x {stride} vectors")
    out = np.zeros(slot_count)
    for i, vec in enumerate(vectors):
        out[i * stride:(i + 1) * stride] = vec
    return out


def extract_vector(slots: np.ndarray, index: int, stride: int) -> np.ndarray:
    """Inverse of :func:`batch_vectors` for decoded slot arrays."""
    return np.asarray(slots)[index * stride:(index + 1) * stride]


def batch_mask(index: int, stride: int, slot_count: int) -> np.ndarray:
    """Multiplicative 0/1 mask selecting one vector of a batch."""
    mask = np.zeros(slot_count)
    mask[index * stride:(index + 1) * stride] = 1.0
    return mask


# --------------------------------------------------------------------------- #
# Lane frames: the repro.nn layout.
#
# A model runs over `lanes` independent vectors (a minibatch of HELR
# samples, the tokens of a BERT sequence, or a single lane for a CNN
# image).  Each vector is zero-padded into a power-of-two `block`; the
# lanes concatenate into a `frame = lanes * block` that is tiled across
# the slots so global rotations behave like per-frame rolls.


def pack_lanes(vectors: Sequence[Sequence[float]], block: int,
               slot_count: int) -> np.ndarray:
    """Pack ``lanes`` vectors into padded blocks and tile the frame.

    Each vector (length <= ``block``) occupies the leading slots of its
    lane; the concatenated frame must divide the slot count so rotations
    wrap frame-periodically.
    """
    vectors = [np.asarray(v) for v in vectors]
    if not vectors:
        raise ValueError("no lane vectors given")
    if block & (block - 1):
        raise ValueError(f"lane block {block} must be a power of two")
    widest = max(len(v) for v in vectors)
    if widest > block:
        raise SlotCapacityError(
            f"lane vector of width {widest} exceeds the lane block "
            f"{block}", needed=widest, available=block)
    frame = block * len(vectors)
    _require_capacity(frame, slot_count,
                      f"frame of {len(vectors)} x {block} lanes")
    if slot_count % frame:
        raise ValueError(f"frame {frame} must divide {slot_count} slots")
    out = np.zeros(frame)
    for lane, vec in enumerate(vectors):
        out[lane * block:lane * block + len(vec)] = vec
    return np.tile(out, slot_count // frame)


def unpack_lane(slots: np.ndarray, lane: int, block: int,
                width: int = None) -> np.ndarray:
    """Read one lane's (first ``width``) values back out of the frame."""
    width = block if width is None else width
    start = lane * block
    return np.asarray(slots)[start:start + width]


def frame_mask(frame: int, indices: Sequence[int], slot_count: int,
               value: float = 1.0) -> np.ndarray:
    """A frame-periodic mask: ``value`` at the given in-frame indices.

    The workhorse of the nn lowering's segment reductions (select the
    segment-start slots of every lane, scaled by ``1/width`` for means).
    """
    _require_capacity(frame, slot_count, f"frame of width {frame}")
    if slot_count % frame:
        raise ValueError(f"frame {frame} must divide {slot_count} slots")
    base = np.zeros(frame)
    for index in indices:
        if not 0 <= index < frame:
            raise ValueError(f"mask index {index} outside frame {frame}")
        base[index] = value
    return np.tile(base, slot_count // frame)
