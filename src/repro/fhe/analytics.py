"""Encrypted analytics kernels: the "private database analytics" use case.

The paper motivates FHE with private analytics alongside ML (Section 1).
This module provides the standard encrypted aggregate kernels over packed
vectors — sums, means, inner products, variance, min/max-style polynomial
comparisons — each built from the evaluator's rotate-and-sum trees and
polynomial evaluation, i.e. exactly the op patterns Cinnamon's keyswitch
pass accelerates.
"""

from __future__ import annotations

import numpy as np

from .ciphertext import Ciphertext
from .evaluator import Evaluator
from .polyeval import ChebyshevEvaluator


def encrypted_sum(ev: Evaluator, ct: Ciphertext, count: int) -> Ciphertext:
    """Sum of slots ``0..count-1``, replicated into every slot.

    ``count`` must be a power of two dividing the slot count; the input's
    remaining slots must be zero (standard packing discipline).
    """
    slots = ev.params.slot_count
    if count & (count - 1) or count > slots:
        raise ValueError("count must be a power of two within the slot count")
    # With the tail slots zeroed, the total over all slots equals the
    # prefix sum; the log-depth tree replicates it into every slot.
    return ev.rotate_and_sum(ct, slots)


def encrypted_mean(ev: Evaluator, ct: Ciphertext, count: int) -> Ciphertext:
    return ev.mul_scalar(encrypted_sum(ev, ct, count), 1.0 / count)


def encrypted_inner_product(ev: Evaluator, a: Ciphertext, b: Ciphertext,
                            count: int) -> Ciphertext:
    """<a, b> over the first ``count`` slots, replicated everywhere."""
    return encrypted_sum(ev, ev.mul(a, b), count)


def encrypted_variance(ev: Evaluator, ct: Ciphertext, count: int) -> Ciphertext:
    """Population variance of slots ``0..count-1`` (replicated).

    Var[x] = E[x^2] - E[x]^2: one square, two reductions, one subtract —
    consumes three levels.
    """
    mean = encrypted_mean(ev, ct, count)
    mean_sq = ev.square(mean)
    second_moment = encrypted_mean(ev, ev.square(ct), count)
    return ev.sub(second_moment, mean_sq)


def encrypted_soft_threshold(ev: Evaluator, ct: Ciphertext,
                             threshold: float, sharpness: float = 8.0,
                             degree: int = 15) -> Ciphertext:
    """Smooth indicator ``sigmoid(sharpness * (x - threshold))``.

    The polynomial stand-in for comparisons in encrypted filtering/count
    queries; values must lie in ``[-1, 1]``.
    """
    cheb = ChebyshevEvaluator(ev)

    def fn(x):
        return 1.0 / (1.0 + np.exp(-sharpness * (x - threshold)))

    return cheb.evaluate_function(ct, fn, degree=degree, interval=(-1.0, 1.0))


def encrypted_count_above(ev: Evaluator, ct: Ciphertext, count: int,
                          threshold: float, sharpness: float = 8.0) -> Ciphertext:
    """Approximate count of slots above ``threshold`` (replicated).

    The analytics staple "SELECT COUNT(*) WHERE x > t", computed as the
    sum of soft indicators.  Requires the unused slots to be far below the
    threshold (standard padding with -1).
    """
    indicator = encrypted_soft_threshold(ev, ct, threshold, sharpness)
    return encrypted_sum(ev, indicator, count)
