"""RNS polynomials: the data type every FHE kernel operates on.

An :class:`RnsPolynomial` is a stack of limbs — one residue polynomial per
prime in its basis — together with a domain tag (coefficient or evaluation/
NTT domain).  Limb ``j`` is a length-``N`` ``uint64`` vector of residues
modulo ``basis[j]``.

Additions and subtractions work in either domain (element-wise in both);
multiplications require the evaluation domain; automorphisms and base
conversions require the coefficient domain.  Conversions are explicit —
silent domain coercion hides exactly the NTT traffic that dominates FHE
accelerator time, so the API makes it visible.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from . import kernels as _kernels
from .modmath import UINT
from .ntt import intt_batch, ntt_batch

COEFF = "coeff"
EVAL = "eval"


class DomainError(ValueError):
    """Raised when an operation is applied in the wrong polynomial domain."""


class RnsPolynomial:
    """A polynomial in double-CRT (RNS x NTT) representation."""

    __slots__ = ("basis", "data", "domain")

    def __init__(self, basis: Sequence[int], data: np.ndarray, domain: str):
        basis = tuple(int(p) for p in basis)
        data = np.asarray(data, dtype=UINT)
        if data.ndim != 2 or data.shape[0] != len(basis):
            raise ValueError(
                f"data shape {data.shape} does not match basis of {len(basis)} primes"
            )
        if domain not in (COEFF, EVAL):
            raise ValueError(f"unknown domain {domain!r}")
        self.basis: Tuple[int, ...] = basis
        self.data = data
        self.domain = domain

    # ------------------------------------------------------------------ #
    # Constructors

    @classmethod
    def zero(cls, basis: Sequence[int], ring_degree: int, domain: str = EVAL):
        return cls(basis, np.zeros((len(basis), ring_degree), dtype=UINT), domain)

    @classmethod
    def from_integers(cls, values, basis: Sequence[int]):
        """Build a coefficient-domain polynomial from centered big ints."""
        from .rns import integers_to_rns

        return cls(basis, integers_to_rns(values, basis), COEFF)

    def copy(self) -> "RnsPolynomial":
        return RnsPolynomial(self.basis, self.data.copy(), self.domain)

    # ------------------------------------------------------------------ #
    # Introspection

    @property
    def ring_degree(self) -> int:
        return self.data.shape[1]

    @property
    def level(self) -> int:
        """Number of limbs (the paper calls this the polynomial's level)."""
        return len(self.basis)

    def limb(self, index: int) -> np.ndarray:
        return self.data[index]

    def __repr__(self):
        return (
            f"RnsPolynomial(limbs={self.level}, N={self.ring_degree}, "
            f"domain={self.domain})"
        )

    def _check_compatible(self, other: "RnsPolynomial"):
        if self.basis != other.basis:
            raise ValueError("basis mismatch between operands")
        if self.domain != other.domain:
            raise DomainError(
                f"domain mismatch: {self.domain} vs {other.domain}"
            )

    # ------------------------------------------------------------------ #
    # Limb-wise arithmetic (data parallel across limbs)

    def __add__(self, other: "RnsPolynomial") -> "RnsPolynomial":
        self._check_compatible(other)
        out = _kernels.pointwise_addmod(self.data, other.data, self.basis)
        return RnsPolynomial(self.basis, out, self.domain)

    def __sub__(self, other: "RnsPolynomial") -> "RnsPolynomial":
        self._check_compatible(other)
        out = _kernels.pointwise_submod(self.data, other.data, self.basis)
        return RnsPolynomial(self.basis, out, self.domain)

    def __neg__(self) -> "RnsPolynomial":
        out = _kernels.pointwise_negmod(self.data, self.basis)
        return RnsPolynomial(self.basis, out, self.domain)

    def __mul__(self, other: "RnsPolynomial") -> "RnsPolynomial":
        """Pointwise product; both operands must be in the evaluation domain."""
        self._check_compatible(other)
        if self.domain != EVAL:
            raise DomainError("polynomial multiplication requires the evaluation domain")
        from .backend import get_backend

        out = get_backend().pointwise_mulmod(self.data, other.data, self.basis)
        return RnsPolynomial(self.basis, out, self.domain)

    def scalar_mul(self, scalar: int) -> "RnsPolynomial":
        """Multiply by a Python-int scalar (reduced per limb); any domain."""
        return self.scalar_mul_rns([int(scalar)] * self.level)

    def scalar_mul_rns(self, residues: Sequence[int]) -> "RnsPolynomial":
        """Multiply limb ``j`` by ``residues[j]`` (per-limb scalar); any domain."""
        if len(residues) != self.level:
            raise ValueError("one residue per limb required")
        from .backend import get_backend

        col = np.array(
            [int(r) % q for r, q in zip(residues, self.basis)], dtype=UINT
        )[:, None]
        out = get_backend().pointwise_mulmod(self.data, col, self.basis)
        return RnsPolynomial(self.basis, out, self.domain)

    # ------------------------------------------------------------------ #
    # Domain conversion

    def to_eval(self) -> "RnsPolynomial":
        if self.domain == EVAL:
            return self
        return RnsPolynomial(self.basis, ntt_batch(self.data, self.basis), EVAL)

    def to_coeff(self) -> "RnsPolynomial":
        if self.domain == COEFF:
            return self
        return RnsPolynomial(self.basis, intt_batch(self.data, self.basis), COEFF)

    # ------------------------------------------------------------------ #
    # Structural ops

    def automorphism(self, galois_element: int) -> "RnsPolynomial":
        """Apply ``X -> X^k`` for odd ``k`` (the paper's automorphism op).

        In the coefficient domain, coefficient ``i`` moves to position
        ``i*k mod N`` with a sign flip when ``i*k mod 2N >= N``.  In the
        evaluation domain the op is a pure slot permutation — exactly what
        accelerator automorphism units implement — and both paths agree
        bit-for-bit (tested).
        """
        k = galois_element
        n = self.ring_degree
        if k % 2 == 0:
            raise ValueError("galois element must be odd")
        if self.domain == EVAL:
            from .ntt import eval_automorphism_permutation

            perm = eval_automorphism_permutation(k % (2 * n), n)
            return RnsPolynomial(self.basis, self.data[:, perm].copy(), EVAL)
        was_eval = False
        poly = self
        idx = np.arange(n, dtype=np.int64)
        dest = (idx * k) % (2 * n)
        sign_flip = dest >= n
        dest = dest % n
        negated = _kernels.pointwise_negmod(poly.data, poly.basis)
        out = np.empty_like(poly.data)
        out[:, dest] = np.where(sign_flip[None, :], negated, poly.data)
        result = RnsPolynomial(poly.basis, out, COEFF)
        return result.to_eval() if was_eval else result

    def drop_limbs(self, keep: int) -> "RnsPolynomial":
        """Truncate to the first ``keep`` limbs (used by level alignment)."""
        if not 1 <= keep <= self.level:
            raise ValueError(f"cannot keep {keep} of {self.level} limbs")
        return RnsPolynomial(self.basis[:keep], self.data[:keep].copy(), self.domain)

    def select_limbs(self, indices: Sequence[int]) -> "RnsPolynomial":
        """Extract an arbitrary subset of limbs (used by limb partitioning)."""
        indices = list(indices)
        basis = tuple(self.basis[i] for i in indices)
        return RnsPolynomial(basis, self.data[indices].copy(), self.domain)

    def equals(self, other: "RnsPolynomial") -> bool:
        """Bit-exact equality (same basis, domain, and limb data)."""
        return (
            self.basis == other.basis
            and self.domain == other.domain
            and bool(np.array_equal(self.data, other.data))
        )
