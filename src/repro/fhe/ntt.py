"""Negacyclic Number Theoretic Transform over ``Z_q[X]/(X^N + 1)``.

Implements the merged-twiddle iterative NTT of Longa & Naehrig: the forward
transform is a decimation-in-time Cooley-Tukey pass producing output in
bit-reversed order; the inverse is the matching Gentleman-Sande pass that
consumes bit-reversed input and produces natural order.  Because both
transforms agree on the intermediate ordering, pointwise products can be
taken directly on forward-transform outputs.

Tables (powers of the 2N-th root of unity, in bit-reversed order) are cached
per ``(prime, N)`` pair.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from .modmath import UINT, mod_inv, scratch_buffer
from .primes import find_root_of_unity

_TABLE_CACHE: Dict[Tuple[int, int], "NttTables"] = {}


def _bit_reverse_indices(n: int) -> np.ndarray:
    bits = n.bit_length() - 1
    idx = np.arange(n, dtype=np.int64)
    rev = np.zeros(n, dtype=np.int64)
    for _ in range(bits):
        rev = (rev << 1) | (idx & 1)
        idx >>= 1
    return rev


class NttTables:
    """Precomputed twiddle factors for one ``(prime, ring_degree)`` pair."""

    def __init__(self, prime: int, ring_degree: int):
        if ring_degree & (ring_degree - 1):
            raise ValueError(f"ring degree {ring_degree} must be a power of two")
        self.prime = prime
        self.ring_degree = ring_degree
        psi = find_root_of_unity(prime, 2 * ring_degree)
        self.psi = psi
        self.psi_inv = mod_inv(psi, prime)
        self.n_inv = mod_inv(ring_degree, prime)
        rev = _bit_reverse_indices(ring_degree)
        powers = np.empty(ring_degree, dtype=UINT)
        inv_powers = np.empty(ring_degree, dtype=UINT)
        acc = 1
        acc_inv = 1
        for i in range(ring_degree):
            powers[i] = acc
            inv_powers[i] = acc_inv
            acc = (acc * psi) % prime
            acc_inv = (acc_inv * self.psi_inv) % prime
        self.psi_powers_bitrev = powers[rev]
        self.psi_inv_powers_bitrev = inv_powers[rev]


def get_tables(prime: int, ring_degree: int) -> NttTables:
    """Fetch (building and caching if needed) NTT tables for a modulus."""
    key = (prime, ring_degree)
    tables = _TABLE_CACHE.get(key)
    if tables is None:
        tables = NttTables(prime, ring_degree)
        _TABLE_CACHE[key] = tables
    return tables


def ntt_reference(coeffs: np.ndarray, prime: int) -> np.ndarray:
    """Forward negacyclic NTT of one limb. Output is in bit-reversed order.

    ``coeffs`` is a length-N uint64 array of residues mod ``prime``.  This
    is the per-limb reference kernel; the public :func:`ntt` delegates to
    the active backend (see :mod:`repro.fhe.backend`), which may batch
    whole limb stacks instead.
    """
    n = coeffs.shape[-1]
    tables = get_tables(prime, n)
    p = UINT(prime)
    a = np.array(coeffs, dtype=UINT, copy=True)
    psi = tables.psi_powers_bitrev
    half = n // 2
    ubuf = scratch_buffer("ref-u", half)
    vbuf = scratch_buffer("ref-v", half)
    tbuf = scratch_buffer("ref-t", half)
    t = n
    m = 1
    while m < n:
        t //= 2
        view = a.reshape(m, 2, t)
        twiddles = psi[m : 2 * m].reshape(m, 1)
        u = ubuf[:half].reshape(m, t)
        v = vbuf[:half].reshape(m, t)
        tmp = tbuf[:half].reshape(m, t)
        np.copyto(u, view[:, 0, :])  # copy: the in-place write would alias
        np.multiply(view[:, 1, :], twiddles, out=v)
        v %= p
        np.add(u, v, out=tmp)
        tmp %= p
        view[:, 0, :] = tmp
        np.add(u, p, out=tmp)
        np.subtract(tmp, v, out=tmp)
        tmp %= p
        view[:, 1, :] = tmp
        m *= 2
    return a


def intt_reference(values: np.ndarray, prime: int) -> np.ndarray:
    """Inverse negacyclic NTT of one limb: bit-reversed in, natural out."""
    n = values.shape[-1]
    tables = get_tables(prime, n)
    p = UINT(prime)
    a = np.array(values, dtype=UINT, copy=True)
    psi_inv = tables.psi_inv_powers_bitrev
    half = n // 2
    ubuf = scratch_buffer("ref-u", half)
    vbuf = scratch_buffer("ref-v", half)
    tbuf = scratch_buffer("ref-t", half)
    t = 1
    m = n
    while m > 1:
        m //= 2
        view = a.reshape(m, 2, t)
        twiddles = psi_inv[m : 2 * m].reshape(m, 1)
        u = ubuf[:half].reshape(m, t)
        v = vbuf[:half].reshape(m, t)
        tmp = tbuf[:half].reshape(m, t)
        np.copyto(u, view[:, 0, :])  # copy: the in-place write would alias
        np.copyto(v, view[:, 1, :])
        np.add(u, v, out=tmp)
        tmp %= p
        view[:, 0, :] = tmp
        np.add(u, p, out=tmp)
        np.subtract(tmp, v, out=tmp)
        tmp %= p
        np.multiply(tmp, twiddles, out=tmp)
        tmp %= p
        view[:, 1, :] = tmp
        t *= 2
    np.multiply(a, UINT(tables.n_inv), out=a)
    a %= p
    return a


def ntt(coeffs: np.ndarray, prime: int) -> np.ndarray:
    """Forward negacyclic NTT (thin shim over the active kernel backend)."""
    from .backend import get_backend

    return get_backend().ntt_batch(np.asarray(coeffs)[None, :], (int(prime),))[0]


def intt(values: np.ndarray, prime: int) -> np.ndarray:
    """Inverse negacyclic NTT (thin shim over the active kernel backend)."""
    from .backend import get_backend

    return get_backend().intt_batch(np.asarray(values)[None, :], (int(prime),))[0]


def ntt_batch(coeffs: np.ndarray, primes) -> np.ndarray:
    """Forward NTT of a stack of limbs; ``coeffs`` has shape ``(L, N)``."""
    from .backend import get_backend

    return get_backend().ntt_batch(coeffs, primes)


def intt_batch(values: np.ndarray, primes) -> np.ndarray:
    """Inverse NTT of a stack of limbs; ``values`` has shape ``(L, N)``."""
    from .backend import get_backend

    return get_backend().intt_batch(values, primes)


_AUTO_PERM_CACHE: Dict[Tuple[int, int], np.ndarray] = {}


def eval_automorphism_permutation(galois_element: int, ring_degree: int) -> np.ndarray:
    """Index permutation implementing ``X -> X^k`` on NTT-domain data.

    Slot ``j`` of the (bit-reversed) NTT output holds the evaluation at
    exponent ``e_j = 2*brv(j) + 1``; the automorphism maps the value at
    exponent ``e*k`` into slot ``j``, a pure permutation with no sign
    corrections — which is why hardware applies automorphisms directly in
    the evaluation domain (Cinnamon's transpose/rotation units do this).
    """
    key = (galois_element, ring_degree)
    perm = _AUTO_PERM_CACHE.get(key)
    if perm is not None:
        return perm
    n = ring_degree
    two_n = 2 * n
    rev = _bit_reverse_indices(n)
    exponents = 2 * rev + 1  # e_j for each output slot j
    index_of = np.zeros(two_n, dtype=np.int64)
    index_of[exponents] = np.arange(n)
    perm = index_of[(exponents * galois_element) % two_n]
    _AUTO_PERM_CACHE[key] = perm
    return perm


def eval_automorphism(values: np.ndarray, galois_element: int) -> np.ndarray:
    """Apply ``X -> X^k`` to one evaluation-domain limb (permutation only)."""
    perm = eval_automorphism_permutation(galois_element, values.shape[-1])
    return values[..., perm]


def negacyclic_convolve_reference(a: np.ndarray, b: np.ndarray, prime: int) -> np.ndarray:
    """Schoolbook negacyclic convolution, used as a test oracle."""
    n = len(a)
    out = np.zeros(n, dtype=object)
    a_list = [int(x) for x in a]
    b_list = [int(x) for x in b]
    for i in range(n):
        for j in range(n):
            k = i + j
            term = a_list[i] * b_list[j]
            if k >= n:
                out[k - n] -= term
            else:
                out[k] += term
    return np.array([int(x) % prime for x in out], dtype=UINT)
