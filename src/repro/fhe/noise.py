"""Noise tracking for CKKS ciphertexts.

CKKS is approximate: every operation adds noise, and the *slot-value*
error a user observes is the ring noise divided by the scale.  This module
provides

* an **analytic estimator** with the standard heuristic growth formulas
  (fresh encryption, addition, multiplication + rescale, keyswitching),
  useful for budgeting a pipeline before running it; and
* an **empirical probe** that measures the true slot error of a ciphertext
  against known expected values; and
* a **budget guardrail**: an :class:`~repro.fhe.evaluator.Evaluator`
  constructed with ``noise_budget_bits`` tracks an estimate alongside
  every operation and raises :class:`NoiseBudgetExhausted` the moment
  the predicted slot error crosses the budget — *before* the caller
  decrypts garbage.

The analytic model is a heuristic (canonical-embedding average case); the
tests pin it to within about two orders of magnitude of measurements,
which is the accuracy class such estimators have in practice.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .ciphertext import Ciphertext
from .evaluator import CKKSContext
from .params import CKKSParams


class NoiseBudgetExhausted(RuntimeError):
    """The tracked noise estimate crossed the evaluator's budget.

    Raised by a tracking :class:`~repro.fhe.evaluator.Evaluator` at the
    operation that would push the expected slot error past
    ``noise_budget_bits`` — decrypting the result would yield garbage.
    Carries the offending operation, the ciphertext's level, and the
    predicted vs budgeted error bits.
    """

    def __init__(self, message: str, *, operation: str = "",
                 level: int = 0, error_bits: float = 0.0,
                 budget_bits: float = 0.0):
        super().__init__(message)
        self.operation = operation
        self.level = level
        self.error_bits = error_bits
        self.budget_bits = budget_bits


@dataclass
class NoiseEstimate:
    """Tracked ring-noise standard deviation for one ciphertext."""

    ring_std: float      # std of the noise polynomial's coefficients
    scale: float
    level: int

    @property
    def slot_error_std(self) -> float:
        """Expected slot-value error (canonical embedding averages)."""
        return self.ring_std / self.scale

    @property
    def error_bits(self) -> float:
        """log2 of the expected slot error (more negative = more precise)."""
        if self.slot_error_std <= 0:
            return float("-inf")
        return math.log2(self.slot_error_std)


class NoiseEstimator:
    """Analytic noise propagation for a CKKS parameter set."""

    def __init__(self, params: CKKSParams):
        self.params = params
        n = params.ring_degree
        sigma = params.error_std
        h = params.secret_hamming_weight or (2 * n // 3)
        # Fresh encryption: v*e_pk + e0 + e1*s with ternary v, s.
        self._fresh_std = sigma * math.sqrt(4.0 * n / 3.0 + 1.0 + h)
        # Keyswitch noise: mod-down rounding plus the digit inner product,
        # dominated by the rounding term ~sqrt((1 + h)/12) per coefficient
        # after division by P.
        self._keyswitch_std = math.sqrt((1.0 + h) / 12.0) * \
            (1.0 + params.num_digits)

    # ------------------------------------------------------------------ #

    def fresh(self, level: int = None) -> NoiseEstimate:
        level = level or self.params.max_level
        return NoiseEstimate(self._fresh_std,
                             self.params.scale_at_level(level), level)

    def add(self, a: NoiseEstimate, b: NoiseEstimate) -> NoiseEstimate:
        level = min(a.level, b.level)
        return NoiseEstimate(math.hypot(a.ring_std, b.ring_std),
                             a.scale, level)

    def mul(self, a: NoiseEstimate, b: NoiseEstimate,
            message_bound: float = 1.0) -> NoiseEstimate:
        """Ciphertext multiplication + relinearization + rescale."""
        level = min(a.level, b.level)
        if level <= 1:
            raise ValueError("cannot multiply at level 1")
        # Cross terms: m_a * e_b + m_b * e_a (message at scale * bound),
        # in the ring scaled by sqrt(N) for the convolution.
        n = self.params.ring_degree
        cross = math.sqrt(n) * message_bound * (
            a.scale * b.ring_std + b.scale * a.ring_std
        )
        raised = math.hypot(cross, self._keyswitch_std * a.scale)
        q = self.params.moduli[level - 1]
        rescale_round = math.sqrt(
            (1.0 + (self.params.secret_hamming_weight or n)) / 12.0)
        new_scale = a.scale * b.scale / q
        return NoiseEstimate(math.hypot(raised / q, rescale_round),
                             new_scale, level - 1)

    def mul_plain(self, a: NoiseEstimate,
                  message_bound: float = 1.0) -> NoiseEstimate:
        level = a.level
        if level <= 1:
            raise ValueError("cannot rescale below level 1")
        n = self.params.ring_degree
        q = self.params.moduli[level - 1]
        pt_scale = self.params.scale_at_level(level)
        grown = math.sqrt(n) * message_bound * pt_scale * a.ring_std
        rescale_round = math.sqrt(
            (1.0 + (self.params.secret_hamming_weight or n)) / 12.0)
        return NoiseEstimate(
            math.hypot(grown / q, rescale_round),
            a.scale * pt_scale / q, level - 1)

    def rotate(self, a: NoiseEstimate) -> NoiseEstimate:
        return NoiseEstimate(
            math.hypot(a.ring_std, self._keyswitch_std), a.scale, a.level)

    def rescale(self, a: NoiseEstimate) -> NoiseEstimate:
        """A bare rescale: divide by ``q_last``, add rounding noise."""
        if a.level <= 1:
            raise ValueError("cannot rescale below level 1")
        q = self.params.moduli[a.level - 1]
        rescale_round = math.sqrt(
            (1.0 + (self.params.secret_hamming_weight
                    or self.params.ring_degree)) / 12.0)
        return NoiseEstimate(math.hypot(a.ring_std / q, rescale_round),
                             a.scale / q, a.level - 1)

    def for_ciphertext(self, ct: Ciphertext) -> NoiseEstimate:
        """The estimate attached to ``ct``, or a fresh-encryption one.

        Untracked ciphertexts (inputs encrypted outside the evaluator)
        are assumed freshly encrypted at their own level and scale — the
        conservative floor every encryption starts from.
        """
        if getattr(ct, "noise", None) is not None:
            return ct.noise
        return NoiseEstimate(self._fresh_std, ct.scale, ct.level)


def measure_slot_error(context: CKKSContext, ct: Ciphertext,
                       expected: np.ndarray) -> float:
    """Empirical max slot error of a ciphertext against known values."""
    got = context.decrypt_values(ct, length=len(expected))
    return float(np.max(np.abs(got - np.asarray(expected))))


def measured_error_bits(context: CKKSContext, ct: Ciphertext,
                        expected: np.ndarray) -> float:
    error = measure_slot_error(context, ct, expected)
    return math.log2(max(error, 1e-300))
