"""Pluggable kernel backends for the hot FHE primitives.

Every expensive limb-stack primitive — NTT/INTT, base conversion, mod-up /
mod-down, and pointwise modular multiplication — is dispatched through a
:class:`KernelBackend`.  Three implementations ship in-tree:

* ``"numpy"`` — the seed per-limb kernels: a Python loop over limbs, each
  reduced with plain ``% p``.  Kept as the portable reference and as the
  baseline the microbenchmarks compare against.
* ``"numpy-batched"`` — the limb-batched kernels of
  :mod:`repro.fhe.kernels`: one numpy op per butterfly stage across the
  whole ``(L, N)`` stack, Shoup/Barrett 64-bit-safe reductions, cache
  blocking.  The portable default.
* ``"native"`` — the same arithmetic as tight C loops, compiled on demand
  with the system compiler (:mod:`repro.fhe.native`).  Registered — and
  made the default — only when the toolchain can build it and the result
  passes a bit-identity smoke test.

All backends must be *bit-identical*: canonical residues in ``[0, p)``
matching the reference output exactly (``tests/fhe/test_backend.py``
enforces this for every registered backend).  An accelerated external
backend registers itself with::

    from repro.fhe.backend import register_backend

    @register_backend("my-accelerator")
    class MyBackend:
        ...six KernelBackend methods...

and becomes selectable via ``repro.set_kernel_backend("my-accelerator")``.
Module-level ``ntt()`` / ``intt()`` / ``base_convert()`` etc. keep working
as thin shims that delegate to the active backend.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Protocol, Sequence, Union, runtime_checkable

import numpy as np

from . import kernels as _kernels
from . import ntt as _ntt
from . import rns as _rns


@runtime_checkable
class KernelBackend(Protocol):
    """The six limb-stack primitives every kernel backend provides.

    All arrays are ``uint64`` limb stacks of shape ``(L, N)`` holding
    canonical residues; ``primes``/basis arguments are sequences of Python
    ints.  Implementations must return canonical residues bit-identical to
    the reference backend.
    """

    name: str

    def ntt_batch(self, coeffs: np.ndarray, primes: Sequence[int]) -> np.ndarray:
        """Forward negacyclic NTT per limb row (bit-reversed output)."""

    def intt_batch(self, values: np.ndarray, primes: Sequence[int]) -> np.ndarray:
        """Inverse negacyclic NTT per limb row (natural-order output)."""

    def base_convert(self, limbs: np.ndarray, source: Sequence[int],
                     target: Sequence[int]) -> np.ndarray:
        """Approximate (Bajard) base conversion between RNS bases."""

    def mod_up(self, limbs: np.ndarray, source: Sequence[int],
               target: Sequence[int]) -> np.ndarray:
        """Extend limbs to a superset basis (exact rows copied verbatim)."""

    def mod_down(self, limbs: np.ndarray, base: Sequence[int],
                 extension: Sequence[int]) -> np.ndarray:
        """Divide-and-round by the extension product, back to ``base``."""

    def pointwise_mulmod(self, a: np.ndarray, b: np.ndarray,
                         primes: Sequence[int]) -> np.ndarray:
        """Element-wise ``a * b mod p`` per limb row."""


_REGISTRY: Dict[str, KernelBackend] = {}


def register_backend(name: str):
    """Class decorator: instantiate ``cls()`` and register it as ``name``."""

    def deco(cls):
        instance = cls()
        instance.name = name
        _REGISTRY[name] = instance
        return cls

    return deco


def available_backends() -> tuple:
    """Names of all registered kernel backends, sorted."""
    _maybe_register_native()
    return tuple(sorted(_REGISTRY))


@register_backend("numpy")
class NumpyBackend:
    """Seed per-limb reference kernels (Python loop over limbs)."""

    def ntt_batch(self, coeffs, primes):
        coeffs = np.asarray(coeffs, dtype=_kernels.UINT)
        return np.stack([_ntt.ntt_reference(coeffs[i], int(q))
                         for i, q in enumerate(primes)])

    def intt_batch(self, values, primes):
        values = np.asarray(values, dtype=_kernels.UINT)
        return np.stack([_ntt.intt_reference(values[i], int(q))
                         for i, q in enumerate(primes)])

    def base_convert(self, limbs, source, target):
        return _rns.get_conversion_plan(source, target).convert(limbs)

    def mod_up(self, limbs, source, target):
        return _rns.mod_up_reference(limbs, source, target)

    def mod_down(self, limbs, base, extension):
        return _rns.mod_down_reference(limbs, base, extension)

    def pointwise_mulmod(self, a, b, primes):
        a = np.asarray(a, dtype=_kernels.UINT)
        b = np.asarray(b, dtype=_kernels.UINT)
        b = np.broadcast_to(b, a.shape)
        return np.stack([(a[i] * b[i]) % _kernels.UINT(int(q))
                         for i, q in enumerate(primes)])


@register_backend("numpy-batched")
class BatchedNumpyBackend:
    """Limb-batched kernels: one numpy op per stage across the stack."""

    def ntt_batch(self, coeffs, primes):
        return _kernels.ntt_batch(coeffs, primes)

    def intt_batch(self, values, primes):
        return _kernels.intt_batch(values, primes)

    def base_convert(self, limbs, source, target):
        return _kernels.base_convert(limbs, source, target)

    def mod_up(self, limbs, source, target):
        return _kernels.mod_up(limbs, source, target)

    def mod_down(self, limbs, base, extension):
        return _kernels.mod_down(limbs, base, extension)

    def pointwise_mulmod(self, a, b, primes):
        return _kernels.pointwise_mulmod(a, b, primes)


_DEFAULT_BACKEND = "numpy-batched"
_STATE = threading.local()
_NATIVE_CHECKED = False


def _maybe_register_native() -> None:
    """Register the compiled C backend on first backend use (not import).

    The ``"native"`` backend registers itself only when the system
    toolchain can build it AND the result passes a bit-identity smoke
    test; it then becomes the default.  Deferred to first use so that
    ``import repro`` never shells out to a compiler.
    """
    global _NATIVE_CHECKED, _DEFAULT_BACKEND
    if _NATIVE_CHECKED:
        return
    _NATIVE_CHECKED = True
    try:
        from . import native as _native

        if _native.available():
            register_backend("native")(_native.NativeBackend)
            _DEFAULT_BACKEND = "native"
    except Exception:  # pragma: no cover - defensive: never block dispatch
        pass


def get_backend() -> KernelBackend:
    """The active kernel backend (thread-local; default ``native`` when
    the compiled backend is usable, else ``numpy-batched``)."""
    backend = getattr(_STATE, "backend", None)
    if backend is None:
        _maybe_register_native()
        backend = _STATE.backend = _REGISTRY[_DEFAULT_BACKEND]
    return backend


def set_backend(backend: Union[str, KernelBackend]) -> KernelBackend:
    """Select the active backend by name (or instance); returns the
    *previous* one so callers can restore it."""
    previous = get_backend()
    if isinstance(backend, str):
        try:
            _maybe_register_native()
            backend = _REGISTRY[backend]
        except KeyError:
            raise ValueError(
                f"unknown kernel backend {backend!r}; "
                f"registered: {', '.join(available_backends())}"
            ) from None
    _STATE.backend = backend
    return previous


@contextmanager
def use_backend(backend: Union[str, KernelBackend]):
    """Context manager: run a block under a specific kernel backend."""
    previous = set_backend(backend)
    try:
        yield get_backend()
    finally:
        set_backend(previous)
