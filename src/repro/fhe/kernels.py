"""Limb-batched FHE kernels: whole ``(L, N)`` stacks per numpy op.

This module is the fast half of the kernel-backend split (see
:mod:`repro.fhe.backend`).  Where the seed kernels in :mod:`repro.fhe.ntt`
and :mod:`repro.fhe.rns` loop over limbs in Python, everything here
processes the full limb stack with a *per-limb modulus column* so that one
numpy op covers all ``L`` residue rings at once.

Three 64-bit-safe reduction strategies are used (all produce canonical
residues in ``[0, p)`` bit-identical to the seed kernels' ``% p``):

* **Shoup multiplication** for twiddle factors: with the precomputed
  companion ``w_sh = floor(w * 2**32 / p)`` the product ``a * w mod p``
  costs one high-half estimate ``q = (a * w_sh) >> 32`` and a correction
  ``a*w - q*p`` in ``[0, 2p)``.  Valid whenever ``a < 2**32``.
* **Harvey lazy butterflies** for the NTT/INTT: intermediate values are
  only reduced where the Shoup bound (``< 2**32``) requires it, using the
  branch-free "minimum trick" (``min(x, x - kp)`` picks the reduced value
  because the unsigned wraparound is huge).  The forward transform runs a
  per-plan *reduction schedule*: with 28-bit primes ``2**32/p = 16p``, so
  most stages let values grow by ``2p`` unreduced and only one mid-pass
  stage (plus the final canonicalization) pays for a reduction chain.
  Requires ``4p < 2**32``, i.e. primes below
  :data:`MAX_BATCHED_PRIME_BITS` bits; larger primes fall back to the
  per-limb reference path.
* **Float-quotient Barrett** for data-times-data products: the quotient
  ``floor(z / p)`` is estimated in float64 (error at most 1 for all
  ``z < 2**62``) and repaired with two minimum-trick steps.

The butterfly loops are additionally *cache-blocked*: limbs are processed
in chunks sized to the L2 cache, and the low-stride final stages run in a
transposed layout so every numpy op streams over contiguous memory.  See
``docs/kernels.md`` for the measured effect.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from .modmath import UINT, mod_inv, scratch_buffer
from .ntt import get_tables
from .rns import basis_product, get_conversion_plan

PrimeTuple = Tuple[int, ...]

#: Shift of the Shoup companion ``w_sh = floor(w << SHOUP_SHIFT / p)``.
SHOUP_SHIFT = 32
_S32 = UINT(SHOUP_SHIFT)

#: Largest prime bit-width the lazy butterflies accept: Harvey's invariant
#: keeps values in ``[0, 4p)`` and Shoup needs them ``< 2**32``, so
#: ``p < 2**30``.  (The paper's datapath uses 28-bit primes.)
MAX_BATCHED_PRIME_BITS = 29

#: Stages with butterfly stride below this run in a transposed layout so
#: the inner numpy loops stay contiguous.
_TRANSPOSE_T = 64

#: Per-chunk working-set budget for cache blocking (bytes).
_CHUNK_BYTES = 1 << 21


def shoup_companion(w: np.ndarray, p: np.ndarray) -> np.ndarray:
    """``floor(w * 2**32 / p)`` for uint64 ``w < 2**31`` (vectorized)."""
    return np.left_shift(np.asarray(w, dtype=UINT), _S32) // np.asarray(p, dtype=UINT)


def _limb_chunk(total_limbs: int, n: int) -> int:
    """Limbs per cache block: data + transpose + three scratch halves."""
    per_limb = 8 * n * 4  # a, aT, and ~2.5 half-sized scratch rows
    return max(1, min(total_limbs, _CHUNK_BYTES // max(1, per_limb)))


# --------------------------------------------------------------------- #
# NTT plans


class BatchedNttPlan:
    """Stacked twiddle tables (+ Shoup companions) for one prime set.

    ``supported`` is False when any prime exceeds the lazy-butterfly bound;
    callers then fall back to the per-limb reference kernels.
    """

    def __init__(self, primes: PrimeTuple, ring_degree: int):
        self.primes = primes
        self.n = ring_degree
        self.p = np.array(primes, dtype=UINT)
        self.supported = int(self.p.max()) < (1 << (MAX_BATCHED_PRIME_BITS + 1))
        if not self.supported:
            return
        tables = [get_tables(int(q), ring_degree) for q in primes]
        pcol = self.p[:, None]
        self.psi = np.stack([t.psi_powers_bitrev for t in tables])
        self.psi_sh = shoup_companion(self.psi, pcol)
        self.ipsi = np.stack([t.psi_inv_powers_bitrev for t in tables])
        self.ipsi_sh = shoup_companion(self.ipsi, pcol)
        self.n_inv = np.array([t.n_inv for t in tables], dtype=UINT)
        self.n_inv_sh = shoup_companion(self.n_inv, self.p)
        # Constant-per-row modulus tables, materialized contiguous: ops
        # against a stride-0 broadcast column hit numpy's non-SIMD inner
        # loops (~2-3x slower per element), while these half-sized tables
        # are reused by every stage and stay cache-resident.  Any reshape
        # of a constant row is valid.
        half = max(1, ring_degree // 2)
        self.p_half = np.repeat(self.p[:, None], half, axis=1)
        self.twop_half = self.p_half + self.p_half
        self.n_inv_half = np.repeat(self.n_inv[:, None], half, axis=1)
        self.n_inv_sh_half = np.repeat(self.n_inv_sh[:, None], half, axis=1)
        self._multiples: Dict[int, np.ndarray] = {1: self.p_half,
                                                  2: self.twop_half}
        # First transposed stage index: stages m >= m1 (stride < the
        # threshold) run on blocks of B = n // m1 elements, transposed.
        self.m1 = max(1, ring_degree // _TRANSPOSE_T)
        self._twiddles_t: Dict[Tuple[bool, int], Tuple[np.ndarray, np.ndarray]] = {}
        # Forward lazy-reduction schedule (extended Harvey): the butterfly
        # lets values grow by 2p per stage, and the only hard constraint is
        # that Shoup inputs stay below 2**32.  For narrow primes (28-bit:
        # 2**32/p = 16p) most stages therefore skip the explicit
        # u-reduction entirely.  ``fwd_red[m]`` is the minimum-trick
        # subtraction chain (as multiples of p) bringing u back under 2p
        # at stage ``m`` — empty for the skipped stages; ``fwd_chain`` is
        # the chain canonicalizing the final output.
        bound_max = (1 << 32) // int(self.p.max())
        bound = 1
        self.fwd_red: Dict[int, Tuple[int, ...]] = {}
        m = 1
        while m < ring_degree:
            if bound + 2 <= bound_max:
                self.fwd_red[m] = ()
                bound += 2
            else:
                self.fwd_red[m] = tuple(
                    1 << j for j in range((bound - 1).bit_length() - 1, 0, -1)
                )
                bound = 4
            m *= 2
        self.fwd_chain: Tuple[int, ...] = tuple(
            1 << j for j in range(max(bound - 1, 0).bit_length() - 1, -1, -1)
        ) or (1,)

    def multiple_half(self, k: int) -> np.ndarray:
        """Contiguous half-table of ``k * p`` per limb row (cached)."""
        table = self._multiples.get(k)
        if table is None:
            table = self._multiples[k] = self.p_half * UINT(k)
        return table

    def twiddles(self, m: int, inverse: bool) -> Tuple[np.ndarray, np.ndarray]:
        """Stage-``m`` twiddles (+ Shoup companions) for the butterfly.

        Strided stages (``m < m1``) get broadcastable ``(L, m, 1)`` views
        of the power tables (small, cache-hot).  Transposed stages get a
        compact cached ``(L, rel, 1, m1)`` array whose entry
        ``[l, j1, 0, j0]`` is twiddle ``psi[l, m + j0*rel + j1]``,
        matching how butterfly blocks land in the transposed buffer.
        """
        src, src_sh = (self.ipsi, self.ipsi_sh) if inverse else (self.psi, self.psi_sh)
        if m < self.m1:
            return src[:, m:2 * m, None], src_sh[:, m:2 * m, None]
        key = (inverse, m)
        cached = self._twiddles_t.get(key)
        if cached is not None:
            return cached
        length = len(self.primes)
        rel = m // self.m1
        w = np.ascontiguousarray(
            src[:, m:2 * m].reshape(length, self.m1, rel).transpose(0, 2, 1)
        ).reshape(length, rel, 1, self.m1)
        w_sh = np.ascontiguousarray(
            src_sh[:, m:2 * m].reshape(length, self.m1, rel).transpose(0, 2, 1)
        ).reshape(length, rel, 1, self.m1)
        self._twiddles_t[key] = (w, w_sh)
        return w, w_sh


_NTT_PLAN_CACHE: Dict[Tuple[PrimeTuple, int], BatchedNttPlan] = {}


def get_ntt_plan(primes: Sequence[int], ring_degree: int) -> BatchedNttPlan:
    key = (tuple(int(q) for q in primes), ring_degree)
    plan = _NTT_PLAN_CACHE.get(key)
    if plan is None:
        plan = BatchedNttPlan(key[0], ring_degree)
        _NTT_PLAN_CACHE[key] = plan
    return plan


# --------------------------------------------------------------------- #
# Batched butterflies


def _butterfly_ct(u, v, w, w_sh, p, twop, qq, ss, red):
    """One lazy Cooley-Tukey stage (in place).

    ``red`` is the stage's reduction chain: ``k*p`` tables subtracted from
    ``u`` with the minimum trick before combining.  An empty chain is the
    fully lazy stage (bound grows by 2p); a non-empty chain brings ``u``
    back under 2p first.  The Shoup product needs ``v < 2**32``, which the
    plan's schedule guarantees.
    """
    np.multiply(v, w_sh, out=qq)
    np.right_shift(qq, _S32, out=qq)
    np.multiply(qq, p, out=qq)
    np.multiply(v, w, out=ss)
    np.subtract(ss, qq, out=ss)       # ss = v*w mod-ish, in [0, 2p)
    for kp in red:
        np.subtract(u, kp, out=qq)
        np.minimum(u, qq, out=u)
    np.subtract(u, ss, out=v)
    np.add(v, twop, out=v)            # u - v*w + 2p
    np.add(u, ss, out=u)              # u + v*w


def _butterfly_gs(u, v, w, w_sh, p, twop, qq, ss, rr):
    """One lazy Gentleman-Sande stage: inputs < 2p, outputs < 2p."""
    np.add(u, v, out=ss)              # u + v, < 4p
    np.subtract(u, v, out=qq)
    np.add(qq, twop, out=qq)          # u - v + 2p, in (0, 4p)
    np.multiply(qq, w_sh, out=rr)
    np.right_shift(rr, _S32, out=rr)
    np.multiply(rr, p, out=rr)
    np.multiply(qq, w, out=v)
    np.subtract(v, rr, out=v)         # (u - v)*w, in [0, 2p)
    np.subtract(ss, twop, out=qq)
    np.minimum(ss, qq, out=u)         # u + v reduced to [0, 2p)


def _canonicalize_chain(a2, plan: BatchedNttPlan, lo: int, hi: int, qq) -> None:
    """Reduce ``a2`` to canonical ``[0, p)`` with the plan's final chain.

    ``a2`` is the chunk viewed as ``(limbs, 2, half)``; the ``k*p`` tables
    broadcast over the middle axis (outer loop axis — no inner-loop cost).
    """
    limbs, _, half = a2.shape
    for k in plan.fwd_chain:
        kp = plan.multiple_half(k)[lo:hi].reshape(limbs, 1, half)
        np.subtract(a2, kp, out=qq)
        np.minimum(a2, qq, out=a2)


def _ntt_chunk(a: np.ndarray, plan: BatchedNttPlan, lo: int, hi: int) -> None:
    """Forward NTT of limb rows ``a`` (in place, canonical in/out)."""
    limbs, n = a.shape
    half = n // 2
    qf = scratch_buffer("ntt-q", limbs * half)
    sf = scratch_buffer("ntt-s", limbs * half)
    p_h = plan.p_half[lo:hi]
    twop_h = plan.twop_half[lo:hi]
    qq2 = scratch_buffer("ntt-c", limbs * n)[:limbs * n].reshape(limbs, 2, half)
    m = 1
    while m < plan.m1:                          # strided phase (large t)
        t = n // (2 * m)
        view = a.reshape(limbs, m, 2, t)
        shape = (limbs, m, t)
        w, w_sh = plan.twiddles(m, inverse=False)
        red = tuple(plan.multiple_half(k)[lo:hi].reshape(shape)
                    for k in plan.fwd_red[m])
        _butterfly_ct(view[:, :, 0, :], view[:, :, 1, :],
                      w[lo:hi], w_sh[lo:hi],
                      p_h.reshape(shape), twop_h.reshape(shape),
                      qf[:limbs * half].reshape(shape),
                      sf[:limbs * half].reshape(shape), red)
        m *= 2
    if m >= n:                                  # degenerate tiny ring
        _canonicalize_chain(a.reshape(limbs, 2, half), plan, lo, hi, qq2)
        return
    # Transposed phase: remaining stages act inside blocks of B elements;
    # transposing makes the innermost axis (the m1 blocks) contiguous.
    m1 = m
    block = n // m1
    at = scratch_buffer("ntt-t", limbs * n)[:limbs * n].reshape(limbs, block, m1)
    np.copyto(at, a.reshape(limbs, m1, block).transpose(0, 2, 1))
    while m < n:
        t = n // (2 * m)
        rel = m // m1
        view = at.reshape(limbs, rel, 2, t, m1)
        shape = (limbs, rel, t, m1)
        w, w_sh = plan.twiddles(m, inverse=False)
        red = tuple(plan.multiple_half(k)[lo:hi].reshape(shape)
                    for k in plan.fwd_red[m])
        _butterfly_ct(view[:, :, 0], view[:, :, 1],
                      w[lo:hi], w_sh[lo:hi],
                      p_h.reshape(shape), twop_h.reshape(shape),
                      qf[:limbs * half].reshape(shape),
                      sf[:limbs * half].reshape(shape), red)
        m *= 2
    _canonicalize_chain(at.reshape(limbs, 2, half), plan, lo, hi, qq2)
    np.copyto(a.reshape(limbs, m1, block), at.transpose(0, 2, 1))


def _intt_chunk(a: np.ndarray, plan: BatchedNttPlan, lo: int, hi: int) -> None:
    """Inverse NTT of limb rows ``a`` (in place, canonical in/out)."""
    limbs, n = a.shape
    half = n // 2
    qf = scratch_buffer("ntt-q", limbs * half)
    sf = scratch_buffer("ntt-s", limbs * half)
    rf = scratch_buffer("ntt-r", limbs * half)
    p_h = plan.p_half[lo:hi]
    twop_h = plan.twop_half[lo:hi]
    m = n // 2
    if m >= plan.m1 and n > 1:
        # Transposed phase first: the small-stride stages come first in
        # the Gentleman-Sande ordering.
        m1 = plan.m1
        block = n // m1
        at = scratch_buffer("ntt-t", limbs * n)[:limbs * n].reshape(limbs, block, m1)
        np.copyto(at, a.reshape(limbs, m1, block).transpose(0, 2, 1))
        while m >= m1:
            t = n // (2 * m)
            rel = m // m1
            view = at.reshape(limbs, rel, 2, t, m1)
            shape = (limbs, rel, t, m1)
            w, w_sh = plan.twiddles(m, inverse=True)
            _butterfly_gs(view[:, :, 0], view[:, :, 1],
                          w[lo:hi], w_sh[lo:hi],
                          p_h.reshape(shape), twop_h.reshape(shape),
                          qf[:limbs * half].reshape(shape),
                          sf[:limbs * half].reshape(shape),
                          rf[:limbs * half].reshape(shape))
            m //= 2
        np.copyto(a.reshape(limbs, m1, block), at.transpose(0, 2, 1))
    while m >= 1:                               # strided phase (large t)
        t = n // (2 * m)
        view = a.reshape(limbs, m, 2, t)
        shape = (limbs, m, t)
        w, w_sh = plan.twiddles(m, inverse=True)
        _butterfly_gs(view[:, :, 0, :], view[:, :, 1, :],
                      w[lo:hi], w_sh[lo:hi],
                      p_h.reshape(shape), twop_h.reshape(shape),
                      qf[:limbs * half].reshape(shape),
                      sf[:limbs * half].reshape(shape),
                      rf[:limbs * half].reshape(shape))
        m //= 2
    # Scale by n^-1 (Shoup) and canonicalize; values enter < 2p < 2**32.
    a2 = a.reshape(limbs, 2, half)
    p2 = p_h.reshape(limbs, 1, half)
    ninv2 = plan.n_inv_half[lo:hi].reshape(limbs, 1, half)
    ninv_sh2 = plan.n_inv_sh_half[lo:hi].reshape(limbs, 1, half)
    qq2 = scratch_buffer("ntt-c", limbs * n)[:limbs * n].reshape(limbs, 2, half)
    np.multiply(a2, ninv_sh2, out=qq2)
    np.right_shift(qq2, _S32, out=qq2)
    np.multiply(qq2, p2, out=qq2)
    np.multiply(a2, ninv2, out=a2)
    np.subtract(a2, qq2, out=a2)                # in [0, 2p)
    np.subtract(a2, p2, out=qq2)
    np.minimum(a2, qq2, out=a2)


def _reference_stack(values: np.ndarray, primes: Sequence[int], inverse: bool) -> np.ndarray:
    from . import ntt as _ntt  # late import; ntt is the reference impl

    fn = _ntt.intt_reference if inverse else _ntt.ntt_reference
    return np.stack([fn(values[i], int(q)) for i, q in enumerate(primes)])


def ntt_batch(coeffs: np.ndarray, primes: Sequence[int]) -> np.ndarray:
    """Forward negacyclic NTT of a limb stack ``(L, N)``, batched.

    Bit-identical to the per-limb reference (canonical residues, same
    bit-reversed output order).
    """
    coeffs = np.ascontiguousarray(coeffs, dtype=UINT)
    if coeffs.ndim == 1:
        return ntt_batch(coeffs[None, :], primes)[0]
    length, n = coeffs.shape
    plan = get_ntt_plan(primes, n)
    if not plan.supported:
        return _reference_stack(coeffs, primes, inverse=False)
    out = coeffs.copy()
    step = _limb_chunk(length, n)
    for lo in range(0, length, step):
        hi = min(length, lo + step)
        _ntt_chunk(out[lo:hi], plan, lo, hi)
    return out


def intt_batch(values: np.ndarray, primes: Sequence[int]) -> np.ndarray:
    """Inverse negacyclic NTT of a limb stack ``(L, N)``, batched."""
    values = np.ascontiguousarray(values, dtype=UINT)
    if values.ndim == 1:
        return intt_batch(values[None, :], primes)[0]
    length, n = values.shape
    plan = get_ntt_plan(primes, n)
    if not plan.supported:
        return _reference_stack(values, primes, inverse=True)
    out = values.copy()
    step = _limb_chunk(length, n)
    for lo in range(0, length, step):
        hi = min(length, lo + step)
        _intt_chunk(out[lo:hi], plan, lo, hi)
    return out


# --------------------------------------------------------------------- #
# Column-modulus pointwise kernels


def _prime_column(primes: Sequence[int]) -> np.ndarray:
    return np.array([int(q) for q in primes], dtype=UINT)[:, None]


def pointwise_mulmod(a: np.ndarray, b: np.ndarray, primes: Sequence[int]) -> np.ndarray:
    """``a * b mod p`` per limb row via float-quotient Barrett.

    Works for all primes below 2**31 (products stay below 2**62, and the
    float64 quotient estimate is off by at most one — repaired with two
    minimum-trick corrections).
    """
    p = _prime_column(primes)
    z = np.multiply(np.asarray(a, dtype=UINT), np.asarray(b, dtype=UINT))
    quot = (z.astype(np.float64) * (1.0 / p.astype(np.float64))).astype(UINT)
    r = z - quot * p
    np.minimum(r, r + p, out=r)       # fix quotient overestimates
    np.minimum(r, r - p, out=r)       # fix quotient underestimates
    return r


def _barrett_reduce(z: np.ndarray, p: np.ndarray) -> np.ndarray:
    """Canonical ``z mod p`` for ``z < 2**62`` via the float quotient."""
    quot = (z.astype(np.float64) * (1.0 / p.astype(np.float64))).astype(UINT)
    r = z - quot * p
    np.minimum(r, r + p, out=r)
    np.minimum(r, r - p, out=r)
    return r


def pointwise_addmod(a: np.ndarray, b: np.ndarray, primes: Sequence[int]) -> np.ndarray:
    """``a + b mod p`` per limb row (canonical inputs)."""
    p = _prime_column(primes)
    s = np.asarray(a, dtype=UINT) + np.asarray(b, dtype=UINT)
    return np.minimum(s, s - p)


def pointwise_submod(a: np.ndarray, b: np.ndarray, primes: Sequence[int]) -> np.ndarray:
    """``a - b mod p`` per limb row (canonical inputs)."""
    p = _prime_column(primes)
    d = np.asarray(a, dtype=UINT) - np.asarray(b, dtype=UINT) + p
    return np.minimum(d, d - p)


def pointwise_negmod(a: np.ndarray, primes: Sequence[int]) -> np.ndarray:
    """``-a mod p`` per limb row (canonical input)."""
    p = _prime_column(primes)
    r = p - np.asarray(a, dtype=UINT)
    return np.minimum(r, r - p)


def from_signed_batch(coeffs: np.ndarray, primes: Sequence[int]) -> np.ndarray:
    """Reduce one signed int64 row into every limb ring at once."""
    p = np.array([int(q) for q in primes], dtype=np.int64)[:, None]
    return np.mod(np.asarray(coeffs, dtype=np.int64)[None, :], p).astype(UINT)


# --------------------------------------------------------------------- #
# Batched base conversion


class BatchedConversionPlan:
    """Matmul-form approximate base conversion between two fixed bases.

    The accumulation ``sum_j scaled[j] * factors[j, k] mod p_k`` is two
    float64 GEMMs on a 16-bit split of the scaled limbs: every partial sum
    stays below 2**53, so the float arithmetic is exact and the result is
    bit-identical to the per-limb reference.  Requires at most 64 source
    limbs (``supported`` is False otherwise).
    """

    def __init__(self, source: PrimeTuple, target: PrimeTuple):
        ref = get_conversion_plan(source, target)
        self.source = ref.source
        self.target = ref.target
        self.q_hat_inv = ref.q_hat_inv[:, None]                # (Ls, 1)
        self.source_p = np.array(ref.source, dtype=UINT)[:, None]
        self.target_p = np.array(ref.target, dtype=UINT)[:, None]
        self.supported = (
            len(ref.source) <= 64
            and max(ref.source + ref.target, default=0) < (1 << 31)
        )
        # factors.T as float64: (Lt, Ls); exact since factors < 2**31.
        self.factors_f = ref.factors.astype(np.float64).T.copy()

    def convert(self, limbs: np.ndarray) -> np.ndarray:
        z = np.multiply(np.asarray(limbs, dtype=UINT), self.q_hat_inv)
        scaled = _barrett_reduce(z, self.source_p)
        lo = (scaled & UINT(0xFFFF)).astype(np.float64)
        hi = (scaled >> UINT(16)).astype(np.float64)
        acc_lo = (self.factors_f @ lo).astype(UINT)            # < 2**53
        acc_hi = (self.factors_f @ hi).astype(UINT)            # < 2**52
        p = self.target_p
        combined = (_barrett_reduce(acc_hi, p) << UINT(16)) + acc_lo
        return _barrett_reduce(combined, p)


_CONV_PLAN_CACHE: Dict[Tuple[PrimeTuple, PrimeTuple], BatchedConversionPlan] = {}


def get_batched_conversion_plan(source: Sequence[int],
                                target: Sequence[int]) -> BatchedConversionPlan:
    key = (tuple(int(q) for q in source), tuple(int(q) for q in target))
    plan = _CONV_PLAN_CACHE.get(key)
    if plan is None:
        plan = BatchedConversionPlan(*key)
        _CONV_PLAN_CACHE[key] = plan
    return plan


def base_convert(limbs: np.ndarray, source: Sequence[int],
                 target: Sequence[int]) -> np.ndarray:
    """Approximate base conversion, batched (falls back when unsupported)."""
    plan = get_batched_conversion_plan(source, target)
    if not plan.supported:
        return get_conversion_plan(source, target).convert(limbs)
    return plan.convert(np.asarray(limbs, dtype=UINT))


class _ModUpPlan:
    """Limb routing for :func:`mod_up` (which target rows are copies)."""

    def __init__(self, source: PrimeTuple, target: PrimeTuple):
        position = {p: i for i, p in enumerate(source)}
        self.missing = tuple(p for p in target if p not in position)
        self.copy_rows = [(k, position[p]) for k, p in enumerate(target)
                          if p in position]
        self.conv_rows = [k for k, p in enumerate(target) if p not in position]


class _ModDownPlan:
    """Cached ``P^{-1} mod q`` column for :func:`mod_down`."""

    def __init__(self, base: PrimeTuple, extension: PrimeTuple):
        p_total = basis_product(extension)
        self.p_inv = np.array([mod_inv(p_total % q, q) for q in base],
                              dtype=UINT)[:, None]


_MODUP_PLAN_CACHE: Dict[Tuple[PrimeTuple, PrimeTuple], _ModUpPlan] = {}
_MODDOWN_PLAN_CACHE: Dict[Tuple[PrimeTuple, PrimeTuple], _ModDownPlan] = {}


def mod_up(limbs: np.ndarray, source: Sequence[int],
           target: Sequence[int]) -> np.ndarray:
    """Extend limbs to a superset basis (copies + one batched conversion)."""
    key = (tuple(int(q) for q in source), tuple(int(q) for q in target))
    plan = _MODUP_PLAN_CACHE.get(key)
    if plan is None:
        plan = _MODUP_PLAN_CACHE[key] = _ModUpPlan(*key)
    out = np.empty((len(key[1]), limbs.shape[1]), dtype=UINT)
    for row, src_row in plan.copy_rows:
        out[row] = limbs[src_row]
    if plan.missing:
        out[plan.conv_rows] = base_convert(limbs, key[0], plan.missing)
    return out


def mod_down(limbs: np.ndarray, base: Sequence[int],
             extension: Sequence[int]) -> np.ndarray:
    """Scale down by the extension product, batched across base limbs."""
    key = (tuple(int(q) for q in base), tuple(int(q) for q in extension))
    plan = _MODDOWN_PLAN_CACHE.get(key)
    if plan is None:
        plan = _MODDOWN_PLAN_CACHE[key] = _ModDownPlan(*key)
    n_base = len(key[0])
    if limbs.shape[0] != n_base + len(key[1]):
        raise ValueError(
            f"expected {n_base + len(key[1])} limbs, got {limbs.shape[0]}"
        )
    approx = base_convert(limbs[n_base:], key[1], key[0])
    diff = pointwise_submod(limbs[:n_base], approx, key[0])
    return pointwise_mulmod(diff, plan.p_inv, key[0])
