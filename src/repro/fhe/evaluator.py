"""The CKKS evaluator: homomorphic operations on ciphertexts.

:class:`CKKSContext` bundles parameters, keys, and the encoder;
:class:`Evaluator` implements the homomorphic ops (Figure 5 of the paper):
addition, multiplication with relinearization, rotation via automorphism +
keyswitching, conjugation, rescaling, and hoisted rotation batches.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Sequence

import numpy as np

from .ciphertext import Ciphertext
from .encoding import (
    CKKSEncoder,
    Plaintext,
    conjugation_galois_element,
    rotation_galois_element,
)
from .keys import KeyChain
from . import kernels as _kernels
from .backend import get_backend
from .keyswitch import hoisted_decompose, keyswitch, evalkey_accumulate, moddown_poly
from .modmath import centered, mod_inv
from .params import CKKSParams
from .polynomial import EVAL, RnsPolynomial

# Scale drift tolerance for additions.  Chain primes sit within ~2**-12 of
# the nominal scale, so each rescale drifts the scale by ~2.4e-4; treating
# scales within 1% as equal introduces error far below the scheme noise.
_SCALE_RTOL = 1e-2


class CKKSContext:
    """Parameters + keys + encoder for one CKKS instance."""

    def __init__(self, params: CKKSParams, seed: int = 2025):
        self.params = params
        self.keychain = KeyChain(params, seed=seed)
        self.encoder = CKKSEncoder(params)
        self._rng = self.keychain.rng

    # ------------------------------------------------------------------ #

    def encode(self, values, scale: float = None, level: int = None) -> Plaintext:
        if scale is None:
            scale = self.params.scale_at_level(
                self.params.max_level if level is None else level
            )
        return self.encoder.encode(values, scale=scale, level=level)

    def decode(self, plaintext: Plaintext, length: int = None) -> np.ndarray:
        return self.encoder.decode(plaintext, length=length)

    def encrypt(self, plaintext: Plaintext) -> Ciphertext:
        params = self.params
        pk = self.keychain.public_key().at_level(plaintext.level)
        basis = plaintext.poly.basis
        n = params.ring_degree
        v = self._rng.small_poly(self._rng.ternary_secret(n), basis)
        e0 = self._rng.error_poly(basis, n, params.error_std)
        e1 = self._rng.error_poly(basis, n, params.error_std)
        c0 = v * pk.b + e0 + plaintext.poly
        c1 = v * pk.a + e1
        return Ciphertext([c0, c1], plaintext.scale)

    def decrypt(self, ct: Ciphertext) -> Plaintext:
        s = self.keychain.secret.poly(ct.basis)
        acc = ct.polys[0]
        s_power = None
        for c_k in ct.polys[1:]:
            s_power = s if s_power is None else s_power * s
            acc = acc + c_k * s_power
        return Plaintext(acc, ct.scale)

    def encrypt_values(self, values, scale: float = None, level: int = None) -> Ciphertext:
        return self.encrypt(self.encode(values, scale=scale, level=level))

    def decrypt_values(self, ct: Ciphertext, length: int = None) -> np.ndarray:
        return self.decode(self.decrypt(ct), length=length)


class Evaluator:
    """Homomorphic operations, including the keyswitch-based ones.

    With ``track_noise`` (implied by ``noise_budget_bits``) every
    operation propagates an analytic :class:`~repro.fhe.noise.
    NoiseEstimate` on the result's ``noise`` attribute.  When
    ``noise_budget_bits`` is set, any operation whose predicted slot
    error (log2) crosses it raises :class:`~repro.fhe.noise.
    NoiseBudgetExhausted` — the guardrail that stops a pipeline *before*
    it decrypts garbage (e.g. ``noise_budget_bits=-8`` demands the
    result stay accurate to better than 2^-8).
    """

    def __init__(self, context: CKKSContext, track_noise: bool = False,
                 noise_budget_bits: float = None):
        self.context = context
        self.params = context.params
        self.keychain = context.keychain
        self.encoder = context.encoder
        self.track_noise = track_noise or noise_budget_bits is not None
        self.noise_budget_bits = noise_budget_bits
        self._estimator = None
        if self.track_noise:
            # Imported here: noise.py imports this module at its top.
            from .noise import NoiseEstimator

            self._estimator = NoiseEstimator(self.params)

    # ------------------------------------------------------------------ #
    # Noise tracking

    def noise_of(self, ct: Ciphertext):
        """The tracked (or assumed-fresh) estimate for ``ct``; ``None``
        when the evaluator is not tracking."""
        if self._estimator is None:
            return None
        return self._estimator.for_ciphertext(ct)

    def _track(self, out: Ciphertext, estimate, operation: str) -> Ciphertext:
        if self._estimator is None:
            return out
        out.noise = estimate
        if self.noise_budget_bits is not None \
                and estimate.error_bits > self.noise_budget_bits:
            from .noise import NoiseBudgetExhausted

            raise NoiseBudgetExhausted(
                f"{operation} at level {out.level} pushes the expected "
                f"slot error to 2^{estimate.error_bits:.1f}, past the "
                f"budget of 2^{self.noise_budget_bits:.1f}",
                operation=operation, level=out.level,
                error_bits=estimate.error_bits,
                budget_bits=self.noise_budget_bits)
        return out

    # ------------------------------------------------------------------ #
    # Level / scale alignment

    def match_level(self, ct: Ciphertext, level: int, target_scale: float = None) -> Ciphertext:
        """Bring ``ct`` down to ``level`` with an *exact* target scale.

        Dropping limbs alone keeps the raw scale, which drifts off the
        target; instead one of the levels being dropped is spent on a
        multiplication by the constant 1 encoded at exactly the scale that
        lands the rescale on ``target_scale``.  No extra depth is consumed
        relative to a plain drop.
        """
        if target_scale is None:
            target_scale = self.params.scale_at_level(level)
        if ct.level < level:
            raise ValueError(f"cannot raise level {ct.level} -> {level}")
        if ct.level == level:
            return ct
        if math.isclose(ct.scale, target_scale, rel_tol=1e-12):
            return ct.at_level(level)
        ct = ct.at_level(level + 1)
        q = self.params.moduli[level]
        pt_scale = target_scale * q / ct.scale
        one = self.encoder.encode_constant(1.0, scale=pt_scale, level=level + 1)
        out = Ciphertext([p * one.poly for p in ct.polys], ct.scale * pt_scale)
        return self.rescale(out)

    def _align(self, a: Ciphertext, b: Ciphertext, check_scale: bool = True):
        level = min(a.level, b.level)
        if check_scale:
            # Exact alignment for additions: spend a dropped level on a
            # scale-correcting constant multiplication where possible.
            if a.level > level:
                a = self.match_level(a, level, b.scale)
            elif b.level > level:
                b = self.match_level(b, level, a.scale)
        else:
            a = a.at_level(level)
            b = b.at_level(level)
        if check_scale and not math.isclose(a.scale, b.scale, rel_tol=_SCALE_RTOL):
            raise ValueError(
                f"scale mismatch: 2^{math.log2(a.scale):.6f} vs "
                f"2^{math.log2(b.scale):.6f}"
            )
        return a, b

    # ------------------------------------------------------------------ #
    # Linear ops

    def add(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        a, b = self._align(a, b)
        degree = max(a.degree, b.degree)
        polys = []
        for k in range(degree):
            if k < a.degree and k < b.degree:
                polys.append(a.polys[k] + b.polys[k])
            elif k < a.degree:
                polys.append(a.polys[k].copy())
            else:
                polys.append(b.polys[k].copy())
        out = Ciphertext(polys, a.scale)
        if self._estimator is not None:
            out = self._track(out, self._estimator.add(
                self.noise_of(a), self.noise_of(b)), "add")
        return out

    def sub(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        return self.add(a, self.negate(b))

    def negate(self, a: Ciphertext) -> Ciphertext:
        out = Ciphertext([-p for p in a.polys], a.scale)
        out.noise = getattr(a, "noise", None)
        return out

    def add_plain(self, a: Ciphertext, pt: Plaintext) -> Ciphertext:
        level = min(a.level, pt.level)
        a = a.at_level(level)
        poly = pt.poly.drop_limbs(level)
        if not math.isclose(a.scale, pt.scale, rel_tol=_SCALE_RTOL):
            raise ValueError("plaintext scale must match ciphertext scale")
        polys = [a.polys[0] + poly] + [p.copy() for p in a.polys[1:]]
        return Ciphertext(polys, a.scale)

    def sub_plain(self, a: Ciphertext, pt: Plaintext) -> Ciphertext:
        neg = Plaintext(-pt.poly, pt.scale)
        return self.add_plain(a, neg)

    def add_scalar(self, a: Ciphertext, value: complex) -> Ciphertext:
        pt = self.encoder.encode_constant(value, scale=a.scale, level=a.level)
        return self.add_plain(a, pt)

    def mul_plain(self, a: Ciphertext, pt: Plaintext, rescale: bool = True) -> Ciphertext:
        level = min(a.level, pt.level)
        a = a.at_level(level)
        poly = pt.poly.drop_limbs(level)
        polys = [p * poly for p in a.polys]
        out = Ciphertext(polys, a.scale * pt.scale)
        if not rescale:
            return out
        estimate = (self._estimator.mul_plain(self.noise_of(a))
                    if self._estimator is not None else None)
        out = self.rescale(out)
        if estimate is not None:
            out = self._track(out, estimate, "mul_plain")
        return out

    def _invariant_plain_scale(self, ct: Ciphertext, target_scale: float = None) -> float:
        """Plaintext scale that lands ``mul_plain`` exactly on the invariant.

        Multiplying ``ct`` (scale ``s``, level ``l``) by a plaintext at
        scale ``S_{l-1} * q_{l-1} / s`` and rescaling produces exactly the
        invariant scale ``S_{l-1}``, independent of ``s``'s drift.
        """
        if ct.level <= 1:
            raise ValueError("cannot rescale below level 1")
        if target_scale is None:
            target_scale = self.params.scale_at_level(ct.level - 1)
        q = self.params.moduli[ct.level - 1]
        return target_scale * q / ct.scale

    def mul_values(self, a: Ciphertext, values, rescale: bool = True,
                   pt_scale: float = None) -> Ciphertext:
        """Multiply by a plaintext vector, staying on the scale invariant.

        ``pt_scale`` overrides the plaintext encoding scale (bootstrapping
        threads non-standard scales through its linear transforms).
        """
        if pt_scale is None:
            pt_scale = (
                self._invariant_plain_scale(a)
                if rescale
                else self.params.scale_at_level(a.level)
            )
        pt = self.encoder.encode(values, scale=pt_scale, level=a.level)
        return self.mul_plain(a, pt, rescale=rescale)

    def mul_scalar(self, a: Ciphertext, value: complex, rescale: bool = True) -> Ciphertext:
        if rescale:
            pt = self.encoder.encode_constant(
                value, scale=self._invariant_plain_scale(a), level=a.level
            )
        else:
            pt = self.encoder.encode_constant(
                value, scale=self.params.scale_at_level(a.level), level=a.level
            )
        return self.mul_plain(a, pt, rescale=rescale)

    # ------------------------------------------------------------------ #
    # Multiplication

    def mul_no_relin(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        """Tensor product: produces a degree-3 ciphertext at scale s_a*s_b."""
        # Align levels, steering the higher operand onto the invariant so
        # the product rescales back onto it too.
        level = min(a.level, b.level)
        if a.level > level:
            a = self.match_level(a, level)
        elif b.level > level:
            b = self.match_level(b, level)
        if a.degree != 2 or b.degree != 2:
            raise ValueError("multiplication requires canonical (degree-2) inputs")
        a0, a1 = a.polys
        b0, b1 = b.polys
        d0 = a0 * b0
        d1 = a0 * b1 + a1 * b0
        d2 = a1 * b1
        return Ciphertext([d0, d1, d2], a.scale * b.scale)

    def relinearize(self, ct: Ciphertext) -> Ciphertext:
        """Fold the quadratic component back to degree 2 via keyswitching."""
        if ct.degree == 2:
            return ct
        if ct.degree != 3:
            raise ValueError(f"cannot relinearize degree-{ct.degree} ciphertext")
        evk = self.keychain.relin_key(ct.level)
        f0, f1 = keyswitch(ct.polys[2], evk, self.params)
        return Ciphertext([ct.polys[0] + f0, ct.polys[1] + f1], ct.scale)

    def mul(self, a: Ciphertext, b: Ciphertext, rescale: bool = True) -> Ciphertext:
        estimate = None
        if self._estimator is not None and rescale:
            # The analytic model covers mul + relinearize + rescale as
            # one step; track it on the final (rescaled) result only.
            estimate = self._estimator.mul(self.noise_of(a),
                                           self.noise_of(b))
        out = self.relinearize(self.mul_no_relin(a, b))
        if not rescale:
            return out
        out = self.rescale(out)
        if estimate is not None:
            out = self._track(out, estimate, "mul")
        return out

    def square(self, a: Ciphertext, rescale: bool = True) -> Ciphertext:
        return self.mul(a, a, rescale=rescale)

    # ------------------------------------------------------------------ #
    # Rescaling

    def rescale(self, ct: Ciphertext) -> Ciphertext:
        """Drop the last limb, dividing the plaintext (and scale) by ``q_last``.

        RNS rescale: for each remaining limb ``j``,
        ``c'_j = (c_j - [c]_{q_last}) * q_last^{-1} mod q_j`` with the
        centered representative of the last limb.
        """
        if ct.level <= 1:
            raise ValueError("cannot rescale a level-1 ciphertext")
        basis = ct.basis
        q_last = basis[-1]
        new_basis = basis[:-1]
        new_polys = []
        backend = get_backend()
        inv_col = np.array(
            [mod_inv(q_last % q, q) for q in new_basis], dtype=np.uint64
        )[:, None]
        for poly in ct.polys:
            poly = poly.to_eval()
            last_coeff = poly.drop_limbs(ct.level).select_limbs([ct.level - 1])
            last_centered = centered(last_coeff.to_coeff().data[0], q_last)
            # One batched NTT of the correction term across all remaining
            # limbs, then stack-wide subtract and per-limb inverse scale.
            correction = backend.ntt_batch(
                _kernels.from_signed_batch(last_centered, new_basis), new_basis
            )
            diff = _kernels.pointwise_submod(
                poly.data[: len(new_basis)], correction, new_basis
            )
            data = backend.pointwise_mulmod(diff, inv_col, new_basis)
            new_polys.append(RnsPolynomial(new_basis, data, EVAL))
        out = Ciphertext(new_polys, ct.scale / q_last)
        if self._estimator is not None and getattr(ct, "noise", None) is not None:
            # Bare rescales of tracked values propagate; the composite
            # ops (mul/mul_plain) overwrite this with their own model.
            out = self._track(out, self._estimator.rescale(ct.noise),
                              "rescale")
        return out

    # ------------------------------------------------------------------ #
    # Rotation / conjugation

    def _apply_galois(self, ct: Ciphertext, galois_element: int) -> Ciphertext:
        if ct.degree != 2:
            raise ValueError("rotate/conjugate require canonical ciphertexts")
        c0 = ct.polys[0].automorphism(galois_element)
        c1 = ct.polys[1].automorphism(galois_element)
        evk = self.keychain.galois_key(galois_element, ct.level)
        f0, f1 = keyswitch(c1, evk, self.params)
        out = Ciphertext([c0 + f0, f1], ct.scale)
        if self._estimator is not None:
            out = self._track(out, self._estimator.rotate(
                self.noise_of(ct)), "rotate")
        return out

    def rotate(self, ct: Ciphertext, rotation: int) -> Ciphertext:
        """Cyclically shift slots left by ``rotation``."""
        if rotation % self.params.slot_count == 0:
            return ct.copy()
        k = rotation_galois_element(rotation, self.params.ring_degree)
        return self._apply_galois(ct, k)

    def conjugate(self, ct: Ciphertext) -> Ciphertext:
        return self._apply_galois(ct, conjugation_galois_element(self.params.ring_degree))

    def rotate_hoisted(self, ct: Ciphertext, rotations: Sequence[int]) -> Dict[int, Ciphertext]:
        """Rotate one ciphertext by many amounts, sharing the mod-up.

        This is the "multiple rotations on a single ciphertext" pattern of
        Section 4.3.1: the expensive digit decomposition + mod-up of ``c1``
        runs once; each rotation then applies a cheap automorphism to the
        decomposition and its own evaluation-key inner product.
        """
        if ct.degree != 2:
            raise ValueError("hoisted rotation requires a canonical ciphertext")
        params = self.params
        level = ct.level
        partition = params.digit_partition(level)
        active = ct.basis
        ext = params.extension_moduli
        decomposed = hoisted_decompose(ct.polys[1], partition, params)
        out: Dict[int, Ciphertext] = {}
        for rotation in rotations:
            if rotation % params.slot_count == 0:
                out[rotation] = ct.copy()
                continue
            k = rotation_galois_element(rotation, params.ring_degree)
            rotated_digits = [d.automorphism(k) for d in decomposed]
            evk = self.keychain.galois_key(k, level, partition)
            f0_ext, f1_ext = evalkey_accumulate(rotated_digits, evk)
            f0 = moddown_poly(f0_ext, active, ext)
            f1 = moddown_poly(f1_ext, active, ext)
            c0 = ct.polys[0].automorphism(k)
            rotated = Ciphertext([c0 + f0, f1], ct.scale)
            if self._estimator is not None:
                rotated = self._track(rotated, self._estimator.rotate(
                    self.noise_of(ct)), "rotate_hoisted")
            out[rotation] = rotated
        return out

    # ------------------------------------------------------------------ #
    # Aggregates

    def add_many(self, cts: Iterable[Ciphertext]) -> Ciphertext:
        cts = list(cts)
        if not cts:
            raise ValueError("add_many of empty sequence")
        acc = cts[0]
        for ct in cts[1:]:
            acc = self.add(acc, ct)
        return acc

    def rotate_and_sum(self, ct: Ciphertext, span: int) -> Ciphertext:
        """Sum slots ``j..j+span-1`` into every slot ``j`` (log-depth tree)."""
        if span & (span - 1):
            raise ValueError("span must be a power of two")
        acc = ct
        shift = 1
        while shift < span:
            acc = self.add(acc, self.rotate(acc, shift))
            shift *= 2
        return acc
