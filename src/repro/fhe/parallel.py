"""Scale-out parallel keyswitching (Section 4.3 of the paper), functionally.

This module executes keyswitching the way a Cinnamon *machine* would: the
limbs of every polynomial are partitioned across ``n`` virtual chips
(``limb i`` lives on ``chip i mod n``), every chip computes only on limbs it
holds, and any limb that crosses a chip boundary is charged to an explicit
communication ledger.  Four algorithms are implemented:

* ``sequential``          — single chip, no communication (the reference).
* ``cifher``              — CiFHER-style: broadcast the input limbs at
                            mod-up and the extension limbs at mod-down
                            (3 broadcasts per keyswitch).
* ``input_broadcast``     — Cinnamon #1: broadcast the input limbs once;
                            every chip duplicates the *extension* limbs so
                            the mod-down needs no communication.
* ``output_aggregation``  — Cinnamon #2: digits = the resident limb
                            partitions, so mod-up needs no communication;
                            the per-chip evalkey products are mod-downed
                            locally and then aggregate+scattered
                            (2 aggregations per keyswitch).

Exactness contract (what the tests pin down): ``cifher`` and
``input_broadcast`` are **bit-exact** against the sequential algorithm run
with the same digit partition — they only re-partition limb-wise-exact
arithmetic.  ``output_aggregation`` commutes the mod-down with the final
aggregation; because mod-down uses *approximate* base conversion, per-digit
rounding differs from summed rounding by a small integer per coefficient
(bounded by ``num_chips * |E| / 2``), which CKKS absorbs as keyswitching
noise — this is precisely the sense in which the paper calls the reordering
"valid" (Section 4.3.1: no effect on noise budget or levels).  The
batched-pattern entry points at the bottom implement the two program
patterns the Cinnamon keyswitch compiler pass targets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from .ciphertext import Ciphertext
from .keys import EvalKey, KeyChain
from .keyswitch import evalkey_accumulate, keyswitch, moddown_poly, modup_digit
from .params import CKKSParams
from .polynomial import COEFF, RnsPolynomial
from .rns import mod_down, mod_up


# --------------------------------------------------------------------------- #
# Communication ledger


@dataclass
class CommStats:
    """Network traffic ledger for one or more parallel keyswitches.

    ``limb_bytes`` is fixed by the ring degree (4 bytes per coefficient at
    the architectural word width).  ``broadcasts``/``aggregations`` count
    *events* (what the paper's algorithmic analysis counts); ``bytes_moved``
    counts the limb payloads that actually crossed chip boundaries.
    """

    limb_bytes: int
    broadcasts: int = 0
    aggregations: int = 0
    limbs_broadcast: int = 0
    limbs_aggregated: int = 0

    @property
    def events(self) -> int:
        return self.broadcasts + self.aggregations

    @property
    def bytes_moved(self) -> int:
        return (self.limbs_broadcast + self.limbs_aggregated) * self.limb_bytes

    def record_broadcast(self, num_limbs: int, num_chips: int):
        """Broadcast ``num_limbs`` distributed limbs so all chips hold all.

        Each chip must receive the ``num_limbs * (n-1)/n`` limbs it does not
        already hold; the ring/switch moves ``num_limbs * (n-1)`` limb
        payloads in total.
        """
        self.broadcasts += 1
        self.limbs_broadcast += num_limbs * (num_chips - 1)

    def record_aggregation(self, num_limbs: int, num_chips: int):
        """Aggregate+scatter ``num_limbs``-limb partial sums from all chips.

        A reduce-scatter of an ``num_limbs``-limb polynomial replicated as
        partials on ``n`` chips moves ``num_limbs * (n-1)`` limb payloads.
        """
        self.aggregations += 1
        self.limbs_aggregated += num_limbs * (num_chips - 1)


# --------------------------------------------------------------------------- #
# Limb partitioning


def modular_partition(level: int, num_chips: int) -> Tuple[Tuple[int, ...], ...]:
    """The paper's partition: chip ``c`` holds limbs ``{i : i mod n == c}``."""
    return tuple(
        tuple(i for i in range(level) if i % num_chips == c)
        for c in range(num_chips)
    )


def chip_of_limb(limb_index: int, num_chips: int) -> int:
    return limb_index % num_chips


# --------------------------------------------------------------------------- #
# The parallel algorithms


class ParallelKeyswitcher:
    """Runs keyswitching as ``num_chips`` cooperating virtual chips."""

    def __init__(self, params: CKKSParams, num_chips: int):
        if num_chips < 1:
            raise ValueError("need at least one chip")
        self.params = params
        self.num_chips = num_chips
        self.stats = CommStats(limb_bytes=params.limb_bytes)

    def reset_stats(self):
        self.stats = CommStats(limb_bytes=self.params.limb_bytes)

    # ------------------------------------------------------------------ #

    def sequential(self, d: RnsPolynomial, evk: EvalKey):
        """Single-chip reference (Figure 8a). No communication."""
        return keyswitch(d, evk, self.params)

    # ------------------------------------------------------------------ #

    def cifher(self, d: RnsPolynomial, evk: EvalKey):
        """CiFHER-style parallel keyswitch (3 broadcasts, Figure 8 context).

        Limbs (including the extension limbs of the inner product) stay
        modularly distributed; cross-limb dependencies are resolved by
        broadcasting the inputs of *every* base conversion: the input limbs
        at mod-up, and the extension limbs of both accumulators at mod-down.
        """
        params = self.params
        n = self.num_chips
        active = d.basis
        level = len(active)
        ext = params.extension_moduli
        extended_basis = active + ext

        # Broadcast 1: input limbs to all chips for the digit mod-ups.
        self.stats.record_broadcast(level, n)
        d_coeff = d.to_coeff()

        # Every chip computes the extended-digit limbs it owns; since the
        # arithmetic per output limb is independent, the union of the
        # per-chip rows equals the sequential mod-up exactly.  We compute
        # the full mod-up once and slice per chip to model this.
        extended_digits = [
            modup_digit(d_coeff, digit, extended_basis) for digit in evk.partition
        ]
        f0_ext, f1_ext = evalkey_accumulate(extended_digits, evk)

        # Broadcasts 2 and 3: the extension limbs of both accumulators are
        # distributed across chips and must be gathered everywhere before
        # each chip can mod-down its own share of the active limbs.
        self.stats.record_broadcast(len(ext), n)
        self.stats.record_broadcast(len(ext), n)
        return (
            moddown_poly(f0_ext, active, ext),
            moddown_poly(f1_ext, active, ext),
        )

    # ------------------------------------------------------------------ #

    def input_broadcast(self, d: RnsPolynomial, evk: EvalKey,
                        already_broadcast: bool = False):
        """Cinnamon's input-broadcast keyswitching (Figure 8b).

        One broadcast of the input limbs; afterwards every chip holds all
        input limbs, computes its share ``Q_c`` of the initial-basis outputs
        but **all** extension limbs (duplicated compute), and finishes the
        mod-down locally.  ``already_broadcast`` suppresses the ledger entry
        when the broadcast was batched across several keyswitches.
        """
        params = self.params
        n = self.num_chips
        active = d.basis
        level = len(active)
        ext = params.extension_moduli

        if not already_broadcast:
            self.stats.record_broadcast(level, n)
        d_coeff = d.to_coeff()

        chip_outputs: List[Tuple[Tuple[int, ...], np.ndarray, np.ndarray]] = []
        partition_chips = modular_partition(level, n)
        for chip, owned in enumerate(partition_chips):
            owned_primes = tuple(active[i] for i in owned)
            chip_basis = owned_primes + ext
            # Per-digit mod-up restricted to this chip's output limbs plus
            # the (duplicated) extension limbs.
            f0 = None
            f1 = None
            for digit, (b_i, a_i) in zip(evk.partition, evk.digits):
                digit_primes = tuple(active[i] for i in digit)
                up = mod_up(d_coeff.data[list(digit)], digit_primes, chip_basis)
                up_poly = RnsPolynomial(chip_basis, up, COEFF).to_eval()
                key_rows = [active.index(p) if p in active else level + ext.index(p)
                            for p in chip_basis]
                b_sel = b_i.select_limbs(key_rows)
                a_sel = a_i.select_limbs(key_rows)
                t0 = up_poly * b_sel
                t1 = up_poly * a_sel
                f0 = t0 if f0 is None else f0 + t0
                f1 = t1 if f1 is None else f1 + t1
            # Local mod-down: all extension limbs are resident (duplicated),
            # so no communication is needed (the algorithm's key property).
            out0 = mod_down(f0.to_coeff().data, owned_primes, ext)
            out1 = mod_down(f1.to_coeff().data, owned_primes, ext)
            chip_outputs.append((owned, out0, out1))

        return (
            _reassemble(chip_outputs, 1, active, d.ring_degree),
            _reassemble(chip_outputs, 2, active, d.ring_degree),
        )

    # ------------------------------------------------------------------ #

    def output_aggregation(self, d: RnsPolynomial, evk: EvalKey,
                           defer_aggregation: bool = False):
        """Cinnamon's output-aggregation keyswitching (Figure 8c).

        The resident modular partition *is* the digit partition, so mod-up
        needs no communication.  Each chip mod-downs its own evalkey
        products, then the partial sums are aggregate+scattered.  Mod-down
        commutes with the sum up to approximate-base-conversion rounding (a
        small integer per coefficient), so the result is noise-equivalent —
        not bit-identical — to the sequential keyswitch (see module doc).

        ``evk`` must carry the modular partition for this chip count.  With
        ``defer_aggregation`` the per-chip partials are returned unsummed so
        a caller can batch the aggregation across many keyswitches.
        """
        params = self.params
        n = self.num_chips
        active = d.basis
        level = len(active)
        ext = params.extension_moduli
        extended_basis = active + ext
        expected = modular_partition(level, n)
        if evk.partition != expected:
            raise ValueError(
                "output aggregation requires an evaluation key generated for "
                f"the modular partition {expected}, got {evk.partition}"
            )

        d_coeff = d.to_coeff()
        partials: List[Tuple[RnsPolynomial, RnsPolynomial]] = []
        for chip, (digit, (b_i, a_i)) in enumerate(zip(evk.partition, evk.digits)):
            up_poly = modup_digit(d_coeff, digit, extended_basis)
            f0_ext = up_poly * b_i
            f1_ext = up_poly * a_i
            partials.append(
                (moddown_poly(f0_ext, active, ext), moddown_poly(f1_ext, active, ext))
            )
        if defer_aggregation:
            return partials
        # Two aggregations: one reduce-scatter per output polynomial.
        self.stats.record_aggregation(level, n)
        self.stats.record_aggregation(level, n)
        return _sum_partials(partials)


def _reassemble(chip_outputs, slot: int, active, ring_degree) -> RnsPolynomial:
    """Stitch per-chip limb rows back into a full polynomial (eval domain)."""
    data = np.zeros((len(active), ring_degree), dtype=np.uint64)
    for owned, out0, out1 in chip_outputs:
        rows = out0 if slot == 1 else out1
        for local, limb_index in enumerate(owned):
            data[limb_index] = rows[local]
    return RnsPolynomial(active, data, COEFF).to_eval()


def _sum_partials(partials) -> Tuple[RnsPolynomial, RnsPolynomial]:
    f0 = partials[0][0]
    f1 = partials[0][1]
    for p0, p1 in partials[1:]:
        f0 = f0 + p0
        f1 = f1 + p1
    return f0, f1


# --------------------------------------------------------------------------- #
# Batched program patterns (what the Cinnamon keyswitch pass emits)


def batched_rotations_input_broadcast(
    switcher: ParallelKeyswitcher,
    keychain: KeyChain,
    ct: Ciphertext,
    rotations: Sequence[int],
) -> Dict[int, Ciphertext]:
    """Pattern 1: many rotations of one ciphertext — 1 broadcast total.

    The broadcast of ``c1``'s limbs is hoisted out of the rotation batch;
    every chip then rotates/keyswitches locally via input-broadcast
    keyswitching.  (Automorphisms are limb-parallel, so ``c0`` needs no
    communication at all.)
    """
    from .encoding import rotation_galois_element

    params = switcher.params
    level = ct.level
    switcher.stats.record_broadcast(level, switcher.num_chips)
    out: Dict[int, Ciphertext] = {}
    for rotation in rotations:
        if rotation % params.slot_count == 0:
            out[rotation] = ct.copy()
            continue
        k = rotation_galois_element(rotation, params.ring_degree)
        c0 = ct.polys[0].automorphism(k)
        c1 = ct.polys[1].automorphism(k)
        evk = keychain.galois_key(k, level)
        f0, f1 = switcher.input_broadcast(c1, evk, already_broadcast=True)
        out[rotation] = Ciphertext([c0 + f0, f1], ct.scale)
    return out


def batched_rotate_sum_output_aggregation(
    switcher: ParallelKeyswitcher,
    keychain: KeyChain,
    cts: Sequence[Ciphertext],
    rotations: Sequence[int],
) -> Ciphertext:
    """Pattern 2: rotate ``r`` ciphertexts and sum — 2 aggregations total.

    Every chip accumulates the partial keyswitch outputs of all rotations
    locally; one aggregate+scatter per output polynomial finishes the batch.
    """
    from .encoding import rotation_galois_element

    if len(cts) != len(rotations):
        raise ValueError("one rotation per ciphertext")
    params = switcher.params
    level = min(ct.level for ct in cts)
    partition = modular_partition(level, switcher.num_chips)

    sum_c0 = None
    passthrough_c1 = None  # identity rotations need no keyswitch at all
    partial_acc: List[List[RnsPolynomial]] = None  # one (f0, f1) per chip
    scale = cts[0].scale
    for ct, rotation in zip(cts, rotations):
        ct = ct.at_level(level)
        if rotation % params.slot_count == 0:
            c0, c1 = ct.polys[0], ct.polys[1]
            sum_c0 = c0 if sum_c0 is None else sum_c0 + c0
            passthrough_c1 = c1 if passthrough_c1 is None else passthrough_c1 + c1
            continue
        k = rotation_galois_element(rotation, params.ring_degree)
        c0 = ct.polys[0].automorphism(k)
        c1 = ct.polys[1].automorphism(k)
        evk = keychain.galois_key(k, level, partition)
        partials = switcher.output_aggregation(c1, evk, defer_aggregation=True)
        sum_c0 = c0 if sum_c0 is None else sum_c0 + c0
        if partial_acc is None:
            partial_acc = [list(pair) for pair in partials]
        else:
            for acc, pair in zip(partial_acc, partials):
                acc[0] = acc[0] + pair[0]
                acc[1] = acc[1] + pair[1]

    if partial_acc is None:
        return Ciphertext([sum_c0, passthrough_c1], scale)
    switcher.stats.record_aggregation(level, switcher.num_chips)
    switcher.stats.record_aggregation(level, switcher.num_chips)
    f0, f1 = _sum_partials([tuple(pair) for pair in partial_acc])
    if passthrough_c1 is not None:
        f1 = f1 + passthrough_c1
    return Ciphertext([sum_c0 + f0, f1], scale)
