"""NTT-friendly prime generation for RNS-CKKS.

An RNS limb prime ``q`` must satisfy ``q = 1 (mod 2N)`` so that the ring
``Z_q[X]/(X^N + 1)`` admits a negacyclic NTT (a primitive ``2N``-th root of
unity must exist mod ``q``).  All primes are kept below ``2**31`` so that
modular products fit in ``uint64`` (see :mod:`repro.fhe.modmath`).
"""

from __future__ import annotations

from typing import List

from .modmath import MAX_PRIME_BITS, is_prime, mod_pow


def generate_primes(
    count: int,
    bits: int,
    ring_degree: int,
    exclude: tuple = (),
    descending: bool = True,
) -> List[int]:
    """Generate ``count`` distinct primes of roughly ``bits`` bits.

    Each prime ``q`` satisfies ``q = 1 (mod 2 * ring_degree)``.  Primes are
    searched downward from ``2**bits`` (or upward if ``descending`` is
    False), skipping anything in ``exclude``.

    Raises ``ValueError`` when the requested width cannot host NTT-friendly
    primes or exceeds the uint64-safe limit.
    """
    if bits > MAX_PRIME_BITS:
        raise ValueError(
            f"prime width {bits} exceeds uint64-safe limit of {MAX_PRIME_BITS} bits"
        )
    m = 2 * ring_degree
    if 2**bits <= m:
        raise ValueError(
            f"prime width {bits} too small for ring degree {ring_degree}"
        )
    excluded = set(exclude)
    primes: List[int] = []
    if descending:
        candidate = (2**bits // m) * m + 1
        step = -m
    else:
        candidate = (2 ** (bits - 1) // m) * m + m + 1
        step = m
    while len(primes) < count:
        if candidate <= m or candidate >= 2 ** (bits + 1):
            raise ValueError(
                f"exhausted {bits}-bit candidates: found {len(primes)}/{count} primes"
            )
        if candidate not in excluded and is_prime(candidate):
            primes.append(candidate)
        candidate += step
    return primes


def find_primitive_root(p: int) -> int:
    """Find a generator of the multiplicative group of ``Z_p``."""
    order = p - 1
    factors = _factorize(order)
    for g in range(2, p):
        if all(mod_pow(g, order // f, p) != 1 for f in factors):
            return g
    raise ValueError(f"no primitive root found for {p}")


def find_root_of_unity(p: int, n: int) -> int:
    """Find a primitive ``n``-th root of unity modulo ``p``.

    Requires ``n`` to divide ``p - 1``.
    """
    if (p - 1) % n != 0:
        raise ValueError(f"{n} does not divide {p} - 1")
    g = find_primitive_root(p)
    root = mod_pow(g, (p - 1) // n, p)
    # Defensive: verify primitivity (root^(n/f) != 1 for prime factors f of n).
    for f in _factorize(n):
        if mod_pow(root, n // f, p) == 1:
            raise ArithmeticError(f"derived root {root} is not a primitive {n}-th root")
    return root


def _factorize(n: int) -> List[int]:
    """Return the distinct prime factors of ``n`` (trial division)."""
    factors = []
    d = 2
    while d * d <= n:
        if n % d == 0:
            factors.append(d)
            while n % d == 0:
                n //= d
        d += 1 if d == 2 else 2
    if n > 1:
        factors.append(n)
    return factors
