"""Residue Number System (RNS) bases and base conversion.

A polynomial with a huge ciphertext modulus ``Q = q_0 * q_1 * ... * q_{l-1}``
is represented as ``l`` *limbs*: its residues modulo each word-sized prime.
Base conversion (Bajard et al., the "fast/approximate" variant) moves a
polynomial from one RNS basis to another entirely with word arithmetic:

    C_{p_k} = sum_j [C * (Q/q_j)^{-1}]_{q_j} * [(Q/q_j)]_{p_k}   (mod p_k)

The conversion is *approximate*: the result equals the exact value plus a
small multiple ``u * Q`` with ``|u| <= l/2``, which CKKS absorbs as noise.

Base conversion is the one FHE primitive that is **not** limb-parallel; it is
what makes keyswitching hard to scale out and is the operation Cinnamon's
base conversion unit (BCU) accelerates.
"""

from __future__ import annotations

from functools import reduce
from typing import Dict, Sequence, Tuple

import numpy as np

from .modmath import UINT, mod_inv, mod_mul, mod_sub

PrimeTuple = Tuple[int, ...]


def basis_product(primes: Sequence[int]) -> int:
    """Product of the basis primes as an arbitrary-precision int."""
    return reduce(lambda a, b: a * b, (int(p) for p in primes), 1)


class BaseConversionPlan:
    """Precomputed factors for converting between two fixed RNS bases.

    ``q_hat_inv[j]``   : ``(Q/q_j)^{-1} mod q_j``
    ``factors[j, k]``  : ``(Q/q_j) mod p_k``

    where ``Q`` is the product of the *source* basis.
    """

    def __init__(self, source: PrimeTuple, target: PrimeTuple):
        self.source = tuple(int(p) for p in source)
        self.target = tuple(int(p) for p in target)
        q_total = basis_product(self.source)
        self.q_hat_inv = np.array(
            [mod_inv(q_total // qj, qj) for qj in self.source], dtype=UINT
        )
        self.factors = np.array(
            [[(q_total // qj) % pk for pk in self.target] for qj in self.source],
            dtype=UINT,
        )

    def convert(self, limbs: np.ndarray) -> np.ndarray:
        """Convert coefficient-domain limbs ``(len(source), N)`` to the target.

        Returns an array of shape ``(len(target), N)``.
        """
        if limbs.shape[0] != len(self.source):
            raise ValueError(
                f"expected {len(self.source)} source limbs, got {limbs.shape[0]}"
            )
        n = limbs.shape[1]
        scaled = np.empty_like(limbs)
        for j, qj in enumerate(self.source):
            scaled[j] = mod_mul(limbs[j], self.q_hat_inv[j], qj)
        out = np.zeros((len(self.target), n), dtype=UINT)
        # Accumulate in uint64 with periodic reduction: each product is
        # < 2**62, so we can add at most two products before reducing.
        for k, pk in enumerate(self.target):
            acc = np.zeros(n, dtype=UINT)
            for j in range(len(self.source)):
                acc = (acc + scaled[j] * self.factors[j, k]) % UINT(pk)
            out[k] = acc
        return out


_PLAN_CACHE: Dict[Tuple[PrimeTuple, PrimeTuple], BaseConversionPlan] = {}


def get_conversion_plan(source: Sequence[int], target: Sequence[int]) -> BaseConversionPlan:
    """Fetch (building if needed) the cached conversion plan for a base pair."""
    key = (tuple(int(p) for p in source), tuple(int(p) for p in target))
    plan = _PLAN_CACHE.get(key)
    if plan is None:
        plan = BaseConversionPlan(*key)
        _PLAN_CACHE[key] = plan
    return plan


def base_convert(limbs: np.ndarray, source: Sequence[int], target: Sequence[int]) -> np.ndarray:
    """Approximate base conversion (shim over the active kernel backend)."""
    from .backend import get_backend

    return get_backend().base_convert(limbs, source, target)


def mod_up(
    limbs: np.ndarray, source: Sequence[int], target: Sequence[int]
) -> np.ndarray:
    """Extend limbs to a superset basis (shim over the active backend)."""
    from .backend import get_backend

    return get_backend().mod_up(limbs, source, target)


def mod_down(
    limbs: np.ndarray, base: Sequence[int], extension: Sequence[int]
) -> np.ndarray:
    """Scale down by the extension product (shim over the active backend)."""
    from .backend import get_backend

    return get_backend().mod_down(limbs, base, extension)


def mod_up_reference(
    limbs: np.ndarray, source: Sequence[int], target: Sequence[int]
) -> np.ndarray:
    """Extend limbs from basis ``source`` to superset basis ``target``.

    Limbs whose prime already exists in ``source`` are copied verbatim (the
    conversion is exact for them by construction); the remaining limbs are
    produced by approximate base conversion.  All arrays are in the
    coefficient domain.  This is the per-limb reference implementation the
    ``"numpy"`` backend uses.
    """
    source = tuple(int(p) for p in source)
    target = tuple(int(p) for p in target)
    missing = tuple(p for p in target if p not in source)
    position = {p: i for i, p in enumerate(source)}
    converted = (get_conversion_plan(source, missing).convert(limbs)
                 if missing else None)
    out = np.empty((len(target), limbs.shape[1]), dtype=UINT)
    miss_idx = 0
    for k, p in enumerate(target):
        if p in position:
            out[k] = limbs[position[p]]
        else:
            out[k] = converted[miss_idx]
            miss_idx += 1
    return out


def mod_down_reference(
    limbs: np.ndarray,
    base: Sequence[int],
    extension: Sequence[int],
) -> np.ndarray:
    """Scale down from basis ``base + extension`` to ``base``.

    Computes ``round(x / P)`` in RNS where ``P`` is the product of the
    extension primes: for each ``q`` in ``base``,

        y_q = (x_q - BaseConvert(x_E -> q)) * P^{-1}   (mod q)

    ``limbs`` must be ordered with the ``base`` limbs first, then the
    ``extension`` limbs.  All arrays are in the coefficient domain.  This
    is the per-limb reference implementation the ``"numpy"`` backend uses.
    """
    base = tuple(int(p) for p in base)
    extension = tuple(int(p) for p in extension)
    n_base = len(base)
    if limbs.shape[0] != n_base + len(extension):
        raise ValueError(
            f"expected {n_base + len(extension)} limbs, got {limbs.shape[0]}"
        )
    ext_limbs = limbs[n_base:]
    approx = get_conversion_plan(extension, base).convert(ext_limbs)
    p_total = basis_product(extension)
    out = np.empty((n_base, limbs.shape[1]), dtype=UINT)
    for i, q in enumerate(base):
        p_inv = mod_inv(p_total % q, q)
        out[i] = mod_mul(mod_sub(limbs[i], approx[i], q), p_inv, q)
    return out


def crt_reconstruct(limbs: np.ndarray, primes: Sequence[int]) -> list:
    """Exact CRT reconstruction to centered Python ints.

    Returns a list of ``N`` integers in ``(-Q/2, Q/2]``.  Used for encoding,
    decoding, and as a test oracle; not on any performance path.
    """
    primes = [int(p) for p in primes]
    q_total = basis_product(primes)
    weights = []
    for qj in primes:
        q_hat = q_total // qj
        weights.append(q_hat * mod_inv(q_hat, qj))
    n = limbs.shape[1]
    result = []
    cols = limbs.T
    for i in range(n):
        acc = 0
        col = cols[i]
        for j in range(len(primes)):
            acc += int(col[j]) * weights[j]
        acc %= q_total
        if acc > q_total // 2:
            acc -= q_total
        result.append(acc)
    return result


def integers_to_rns(values: Sequence[int], primes: Sequence[int]) -> np.ndarray:
    """Decompose arbitrary-precision integers into RNS limbs ``(L, N)``."""
    primes = [int(p) for p in primes]
    n = len(values)
    out = np.empty((len(primes), n), dtype=UINT)
    int_values = [int(v) for v in values]
    for j, q in enumerate(primes):
        out[j] = np.array([v % q for v in int_values], dtype=UINT)
    return out
