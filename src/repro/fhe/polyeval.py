"""Homomorphic polynomial evaluation in the Chebyshev basis.

Bootstrapping's EvalMod step and the transformer activation functions
(GELU/softmax/tanh approximations) both reduce to evaluating a fixed
polynomial on a ciphertext.  High-degree approximations are numerically
stable only in the Chebyshev basis, and level consumption must be
logarithmic in the degree, so we implement the baby-step/giant-step (BSGS)
recursive scheme of Han-Ki:

* baby steps ``T_1 .. T_k`` and giant steps ``T_2k, T_4k, ...`` are built
  with the double/addition identities (``T_{2i} = 2*T_i^2 - 1``,
  ``T_{i+j} = 2*T_i*T_j - T_{i-j}``), consuming ``O(log d)`` levels;
* the polynomial is recursively divided by giant-step Chebyshev
  polynomials (``p = q * T_g + r``) so every ciphertext-ciphertext
  multiplication pairs a quotient with a precomputed ``T_g``.

Rotation-heavy linear algebra lives in :mod:`repro.fhe.linear`.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Sequence

import numpy as np

from .ciphertext import Ciphertext
from .evaluator import Evaluator


def chebyshev_coefficients(
    fn: Callable[[np.ndarray], np.ndarray], degree: int, interval=( -1.0, 1.0)
) -> np.ndarray:
    """Chebyshev-basis coefficients of ``fn`` on ``interval``.

    Fits at the Chebyshev nodes of the interval, which is numerically exact
    for polynomial interpolation of the given degree.
    """
    lo, hi = interval
    nodes = np.cos(np.pi * (np.arange(degree + 1) + 0.5) / (degree + 1))
    x = 0.5 * (hi - lo) * nodes + 0.5 * (hi + lo)
    y = fn(x)
    return np.polynomial.chebyshev.chebfit(nodes, y, degree)


def chebyshev_divmod(coeffs: Sequence[float], n: int):
    """Divide a Chebyshev-basis polynomial by ``T_n``.

    Returns ``(q, r)`` (both Chebyshev-basis coefficient lists) with
    ``p = q * T_n + r`` and ``deg r < n``, using
    ``T_i = 2*T_{i-n}*T_n - T_{|i-2n|}``.
    """
    c = list(coeffs)
    d = len(c) - 1
    if d < n:
        return [0.0], c
    q = [0.0] * (d - n + 1)
    for i in range(d, n, -1):
        q[i - n] += 2.0 * c[i]
        c[abs(i - 2 * n)] -= c[i]
        c[i] = 0.0
    q[0] += c[n]
    c[n] = 0.0
    return q, c[:n]


def _trim(coeffs: Sequence[float]) -> List[float]:
    c = list(coeffs)
    while len(c) > 1 and c[-1] == 0.0:
        c.pop()
    return c


class ChebyshevEvaluator:
    """Evaluates Chebyshev-basis polynomials on ciphertexts via BSGS."""

    def __init__(self, evaluator: Evaluator):
        self.ev = evaluator

    # ------------------------------------------------------------------ #

    def _build_power_table(self, x: Ciphertext, degree: int, baby: int):
        """Precompute baby steps ``T_0..T_baby`` and giants ``T_{2^j*baby}``."""
        ev = self.ev
        table: Dict[int, Ciphertext] = {1: x}
        # Babies via addition formulas, keeping depth logarithmic.
        for i in range(2, baby + 1):
            if i in table:
                continue
            half = i // 2
            other = i - half
            prod = ev.mul(table[half], table[other])
            t_i = ev.add(prod, prod)  # 2*T_a*T_b
            diff = abs(half - other)
            if diff == 0:
                t_i = ev.add_scalar(t_i, -1.0)  # T_{2a} = 2*T_a^2 - 1
            else:
                t_i = ev.sub(t_i, self._resolve(table, diff, ev))
            table[i] = t_i
        # Giants by repeated doubling (only those the recursion can use).
        g = baby
        while 2 * g <= degree:
            prod = ev.square(table[g])
            t = ev.add(prod, prod)
            table[2 * g] = ev.add_scalar(t, -1.0)
            g *= 2
        return table

    @staticmethod
    def _resolve(table: Dict[int, Ciphertext], i: int, ev: Evaluator) -> Ciphertext:
        if i == 0:
            raise KeyError("T_0 handled as a scalar, never materialized")
        if i not in table:
            raise KeyError(f"T_{i} missing from power table")
        return table[i]

    # ------------------------------------------------------------------ #

    def _eval_small(self, coeffs: List[float], table: Dict[int, Ciphertext]) -> Ciphertext:
        """Directly combine ``sum_i c_i * T_i`` for a low-degree tail."""
        ev = self.ev
        acc = None
        for i in range(1, len(coeffs)):
            if coeffs[i] == 0.0:
                continue
            term = ev.mul_scalar(table[i], coeffs[i])
            acc = term if acc is None else ev.add(acc, term)
        if acc is None:
            # Constant polynomial: encode on a throwaway multiple of T_1.
            acc = ev.mul_scalar(table[1], 0.0)
        if coeffs[0] != 0.0:
            acc = ev.add_scalar(acc, coeffs[0])
        return acc

    def _eval_recursive(self, coeffs: List[float], table: Dict[int, Ciphertext],
                        baby: int) -> Ciphertext:
        ev = self.ev
        coeffs = _trim(coeffs)
        degree = len(coeffs) - 1
        if degree < max(baby, 2):
            return self._eval_small(coeffs, table)
        # Largest giant T_g with g <= degree (g = baby * 2^j).
        g = baby
        while 2 * g <= degree:
            g *= 2
        q, r = chebyshev_divmod(coeffs, g)
        q_ct = self._eval_recursive(q, table, baby)
        prod = ev.mul(q_ct, table[g])
        if _trim(r) == [0.0]:
            return prod
        r_ct = self._eval_recursive(r, table, baby)
        return ev.add(prod, r_ct)

    def evaluate(self, x: Ciphertext, coeffs: Sequence[float]) -> Ciphertext:
        """Evaluate ``sum_i coeffs[i] * T_i(x)`` homomorphically.

        ``x`` must encode values in ``[-1, 1]`` (callers rescale their
        domain into Chebyshev range first).  Consumes ``O(log degree)``
        levels.
        """
        coeffs = _trim(list(float(c) for c in coeffs))
        degree = len(coeffs) - 1
        if degree == 0:
            out = self.ev.mul_scalar(x, 0.0)
            return self.ev.add_scalar(out, coeffs[0])
        baby = 1 << max(1, math.ceil(math.log2(math.sqrt(degree + 1))))
        table = self._build_power_table(x, degree, baby)
        return self._eval_recursive(coeffs, table, baby)

    def evaluate_function(
        self,
        x: Ciphertext,
        fn: Callable[[np.ndarray], np.ndarray],
        degree: int,
        interval=(-1.0, 1.0),
    ) -> Ciphertext:
        """Approximate ``fn`` on ``interval`` and evaluate it on ``x``.

        ``x``'s slots must lie in ``interval``; the affine map into
        Chebyshev range is folded in homomorphically (one level when the
        interval is not already ``[-1, 1]``).
        """
        lo, hi = interval
        coeffs = chebyshev_coefficients(fn, degree, interval)
        if not (math.isclose(lo, -1.0) and math.isclose(hi, 1.0)):
            scale = 2.0 / (hi - lo)
            shift = -(hi + lo) / (hi - lo)
            x = self.ev.mul_scalar(x, scale)
            if abs(shift) > 1e-12:
                x = self.ev.add_scalar(x, shift)
        return self.evaluate(x, coeffs)
