"""CKKS encoding: packing complex vectors into ring plaintexts.

CKKS batches ``N/2`` complex *slots* into one polynomial via the canonical
embedding: slot ``j`` is the evaluation of the message polynomial at
``zeta^(5^j)`` where ``zeta = exp(i*pi/N)`` is a primitive ``2N``-th root of
unity.  The powers ``{+-5^j}`` enumerate all odd exponents, so for real
(integer-coefficient) polynomials the remaining evaluations are forced to be
the complex conjugates of the slots.

Both directions are computed in ``O(N log N)`` with an FFT twist:

    m(zeta^(2t+1)) = N * ifft(m_i * zeta^i)[t]

Slot rotation corresponds to the ring automorphism ``X -> X^(5^r)`` and
conjugation to ``X -> X^(2N-1)``; :func:`rotation_galois_element` maps slot
shifts to Galois elements.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from .params import CKKSParams
from .polynomial import COEFF, RnsPolynomial
from .rns import crt_reconstruct, integers_to_rns

_GEOM_CACHE: Dict[int, "SlotGeometry"] = {}


class SlotGeometry:
    """Index bookkeeping for the canonical embedding at one ring degree."""

    def __init__(self, ring_degree: int):
        n = ring_degree
        self.ring_degree = n
        self.slot_count = n // 2
        two_n = 2 * n
        # Orbit of 5 modulo 2N: the Galois elements reachable by rotation.
        exps = np.empty(self.slot_count, dtype=np.int64)
        e = 1
        for j in range(self.slot_count):
            exps[j] = e
            e = (e * 5) % two_n
        self.rot_exponents = exps
        self.slot_fft_index = (exps - 1) // 2
        conj = (two_n - exps) % two_n
        self.conj_fft_index = (conj - 1) // 2
        i = np.arange(n)
        self.zeta_powers = np.exp(1j * np.pi * i / n)
        self.zeta_inv_powers = np.exp(-1j * np.pi * i / n)


def get_geometry(ring_degree: int) -> SlotGeometry:
    geom = _GEOM_CACHE.get(ring_degree)
    if geom is None:
        geom = SlotGeometry(ring_degree)
        _GEOM_CACHE[ring_degree] = geom
    return geom


def rotation_galois_element(rotation: int, ring_degree: int) -> int:
    """Galois element ``5^rotation mod 2N`` implementing a left slot shift."""
    two_n = 2 * ring_degree
    return pow(5, rotation % (ring_degree // 2), two_n)


def conjugation_galois_element(ring_degree: int) -> int:
    """Galois element ``2N - 1`` implementing slot-wise conjugation."""
    return 2 * ring_degree - 1


class Plaintext:
    """An encoded message: an RNS polynomial plus its scale."""

    __slots__ = ("poly", "scale")

    def __init__(self, poly: RnsPolynomial, scale: float):
        self.poly = poly
        self.scale = scale

    @property
    def level(self) -> int:
        return self.poly.level

    def __repr__(self):
        return f"Plaintext(level={self.level}, scale=2^{np.log2(self.scale):.1f})"


class CKKSEncoder:
    """Encode/decode complex vectors to/from RNS plaintexts."""

    def __init__(self, params: CKKSParams):
        self.params = params
        self.geometry = get_geometry(params.ring_degree)

    def _embed(self, values: np.ndarray, scale: float) -> np.ndarray:
        """Inverse canonical embedding: slots -> scaled integer coefficients."""
        geom = self.geometry
        n = geom.ring_degree
        values = np.asarray(values, dtype=np.complex128)
        if len(values) > geom.slot_count:
            raise ValueError(
                f"{len(values)} values exceed {geom.slot_count} slots"
            )
        slots = np.zeros(geom.slot_count, dtype=np.complex128)
        slots[: len(values)] = values
        spectrum = np.zeros(n, dtype=np.complex128)
        spectrum[geom.slot_fft_index] = slots * scale
        spectrum[geom.conj_fft_index] = np.conj(slots) * scale
        twisted = np.fft.fft(spectrum) / n
        coeffs = np.real(twisted * geom.zeta_inv_powers)
        return np.round(coeffs)

    def encode(self, values, scale: float = None, level: int = None) -> Plaintext:
        """Encode a vector of numbers into a plaintext.

        ``values`` may be shorter than the slot count (zero padded).  The
        plaintext is produced at ``level`` limbs (default: the full chain).
        """
        scale = self.params.scale if scale is None else scale
        level = self.params.max_level if level is None else level
        basis = self.params.basis_at_level(level)
        coeffs = self._embed(values, scale)
        if np.max(np.abs(coeffs)) < 2**62:
            ints = coeffs.astype(np.int64)
        else:  # very large scales (e.g. Delta^2 plaintexts) need big ints
            ints = [int(c) for c in coeffs]
        poly = RnsPolynomial(basis, integers_to_rns(ints, basis), COEFF).to_eval()
        return Plaintext(poly, scale)

    def decode(self, plaintext: Plaintext, length: int = None) -> np.ndarray:
        """Decode a plaintext back to a complex vector of ``length`` slots."""
        geom = self.geometry
        poly = plaintext.poly.to_coeff()
        coeffs = np.array(
            crt_reconstruct(poly.data, poly.basis), dtype=np.float64
        )
        twisted = coeffs * geom.zeta_powers
        spectrum = np.fft.ifft(twisted) * geom.ring_degree
        slots = spectrum[geom.slot_fft_index] / plaintext.scale
        if length is not None:
            slots = slots[:length]
        return slots

    def encode_constant(self, value: complex, scale: float = None, level: int = None) -> Plaintext:
        """Encode a constant replicated across all slots."""
        full = np.full(self.geometry.slot_count, value, dtype=np.complex128)
        return self.encode(full, scale=scale, level=level)

    def rotate_reference(self, values: Sequence[complex], rotation: int) -> np.ndarray:
        """Plaintext oracle for slot rotation (left shift by ``rotation``)."""
        arr = np.asarray(values, dtype=np.complex128)
        return np.roll(arr, -rotation)
