"""Functional RNS-CKKS substrate.

This subpackage is a from-scratch, numpy-backed implementation of the CKKS
fully homomorphic encryption scheme (Cheon-Kim-Kim-Song) in the RNS/double-
CRT representation used by FHE accelerators: limb-decomposed polynomials,
negacyclic NTTs, approximate base conversion, hybrid digit keyswitching,
and bootstrapping.  It is the executable ground truth against which the
Cinnamon compiler, ISA emulator, and parallel keyswitching algorithms are
validated.
"""

from .backend import (
    KernelBackend,
    available_backends,
    get_backend,
    register_backend,
    set_backend,
    use_backend,
)
from .packing import SlotCapacityError
from .params import ArchParams, CKKSParams, make_params, toy_params
from .polynomial import RnsPolynomial
from .ciphertext import Ciphertext
from .encoding import CKKSEncoder, Plaintext
from .keys import EvalKey, KeyChain, PublicKey, SecretKey
from .evaluator import CKKSContext, Evaluator
from .noise import (
    NoiseBudgetExhausted,
    NoiseEstimate,
    NoiseEstimator,
    measure_slot_error,
)
from .serialize import (
    CorruptPayloadError,
    SERIALIZE_SCHEMA_VERSION,
    dump_ciphertext,
    dump_params,
    dump_plaintext,
    load_ciphertext,
    load_params,
    load_plaintext,
)

__all__ = [
    "KernelBackend",
    "available_backends",
    "get_backend",
    "register_backend",
    "set_backend",
    "use_backend",
    "SlotCapacityError",
    "ArchParams",
    "CKKSParams",
    "make_params",
    "toy_params",
    "RnsPolynomial",
    "Ciphertext",
    "CKKSEncoder",
    "Plaintext",
    "EvalKey",
    "KeyChain",
    "PublicKey",
    "SecretKey",
    "CKKSContext",
    "Evaluator",
    "NoiseBudgetExhausted",
    "NoiseEstimate",
    "NoiseEstimator",
    "measure_slot_error",
    "CorruptPayloadError",
    "SERIALIZE_SCHEMA_VERSION",
    "dump_ciphertext",
    "load_ciphertext",
    "dump_plaintext",
    "load_plaintext",
    "dump_params",
    "load_params",
]
