"""Functional RNS-CKKS substrate.

This subpackage is a from-scratch, numpy-backed implementation of the CKKS
fully homomorphic encryption scheme (Cheon-Kim-Kim-Song) in the RNS/double-
CRT representation used by FHE accelerators: limb-decomposed polynomials,
negacyclic NTTs, approximate base conversion, hybrid digit keyswitching,
and bootstrapping.  It is the executable ground truth against which the
Cinnamon compiler, ISA emulator, and parallel keyswitching algorithms are
validated.
"""

from .params import ArchParams, CKKSParams, make_params, toy_params
from .polynomial import RnsPolynomial
from .ciphertext import Ciphertext
from .encoding import CKKSEncoder, Plaintext
from .keys import EvalKey, KeyChain, PublicKey, SecretKey
from .evaluator import CKKSContext, Evaluator

__all__ = [
    "ArchParams",
    "CKKSParams",
    "make_params",
    "toy_params",
    "RnsPolynomial",
    "Ciphertext",
    "CKKSEncoder",
    "Plaintext",
    "EvalKey",
    "KeyChain",
    "PublicKey",
    "SecretKey",
    "CKKSContext",
    "Evaluator",
]
