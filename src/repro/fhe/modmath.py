"""Vectorized modular arithmetic over word-sized primes.

All kernels operate on ``numpy.uint64`` arrays holding residues modulo a
prime ``p < 2**31``.  Restricting the primes to 31 bits guarantees that the
product of two residues fits in a ``uint64`` without overflow, which lets
every kernel stay in plain numpy.  This mirrors Cinnamon's word-sized RNS
limbs (the paper uses a 28-bit datapath).
"""

from __future__ import annotations

import threading

import numpy as np

#: Largest prime bit-width for which ``a * b`` cannot overflow ``uint64``.
MAX_PRIME_BITS = 31

UINT = np.uint64

_SCRATCH = threading.local()


def scratch_buffer(name: str, size: int) -> np.ndarray:
    """A reusable flat ``uint64`` scratch array of at least ``size`` elements.

    Buffers are keyed by ``name`` and grow monotonically, so hot kernels
    (the NTT butterflies, the simulator) avoid per-call allocation churn.
    They are thread-local: each serving shard gets its own set.  Callers
    slice and ``reshape`` the returned array; contents are undefined.
    """
    buffers = getattr(_SCRATCH, "buffers", None)
    if buffers is None:
        buffers = _SCRATCH.buffers = {}
    buf = buffers.get(name)
    if buf is None or buf.size < size:
        buf = buffers[name] = np.empty(size, dtype=UINT)
    return buf


def _as_uint(a: np.ndarray) -> np.ndarray:
    return np.asarray(a, dtype=UINT)


def mod_add(a: np.ndarray, b: np.ndarray, p: int) -> np.ndarray:
    """Element-wise ``(a + b) mod p``."""
    return (_as_uint(a) + _as_uint(b)) % UINT(p)


def mod_sub(a: np.ndarray, b: np.ndarray, p: int) -> np.ndarray:
    """Element-wise ``(a - b) mod p`` (safe for unsigned operands)."""
    return (_as_uint(a) + UINT(p) - _as_uint(b)) % UINT(p)


def mod_neg(a: np.ndarray, p: int) -> np.ndarray:
    """Element-wise ``(-a) mod p``."""
    return (UINT(p) - _as_uint(a)) % UINT(p)


def mod_mul(a: np.ndarray, b: np.ndarray, p: int) -> np.ndarray:
    """Element-wise ``(a * b) mod p``.

    Requires ``p < 2**31`` so the intermediate product fits in ``uint64``.
    """
    return (_as_uint(a) * _as_uint(b)) % UINT(p)


def mod_scalar_mul(a: np.ndarray, scalar: int, p: int) -> np.ndarray:
    """Element-wise ``(a * scalar) mod p`` for a Python-int scalar."""
    return mod_mul(a, UINT(scalar % p), p)


def mod_pow(base: int, exponent: int, p: int) -> int:
    """Scalar modular exponentiation (wraps :func:`pow`)."""
    return pow(base % p, exponent, p)


def mod_inv(a: int, m: int) -> int:
    """Scalar modular inverse of ``a`` modulo ``m``.

    ``m`` may be composite (digit products in keyswitching are); ``a`` must
    be coprime to ``m``.
    """
    a = a % m
    if a == 0:
        raise ZeroDivisionError(f"{a} has no inverse modulo {m}")
    return pow(a, -1, m)


def centered(a: np.ndarray, p: int) -> np.ndarray:
    """Map residues in ``[0, p)`` to signed representatives in ``(-p/2, p/2]``.

    Returns an ``int64`` array.
    """
    a = _as_uint(a).astype(np.int64)
    half = p // 2
    return np.where(a > half, a - p, a)


def from_signed(a: np.ndarray, p: int) -> np.ndarray:
    """Reduce a signed integer array into ``[0, p)`` as ``uint64``."""
    a = np.asarray(a)
    if a.dtype == object:
        return np.array([int(x) % p for x in a.ravel()], dtype=UINT).reshape(a.shape)
    return np.mod(a.astype(np.int64), np.int64(p)).astype(UINT)


def batch_mod(values, p: int) -> np.ndarray:
    """Reduce arbitrary-precision Python integers modulo ``p``.

    ``values`` may be a list/array of Python ints of any magnitude.
    """
    return np.array([int(v) % p for v in values], dtype=UINT)


def is_prime(n: int) -> bool:
    """Deterministic Miller-Rabin for ``n < 3.3 * 10**24`` (covers uint64)."""
    if n < 2:
        return False
    for small in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        if n % small == 0:
            return n == small
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = (x * x) % n
            if x == n - 1:
                break
        else:
            return False
    return True
