"""Randomness for CKKS: secret, error, and uniform polynomial sampling.

The hardware PRNG functional unit in Cinnamon regenerates the uniform
``a`` components of keys on the fly; functionally that is just uniform
sampling, which we model with a seeded ``numpy`` generator so the whole
library is reproducible.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .modmath import UINT
from .polynomial import COEFF, EVAL, RnsPolynomial


class FheRng:
    """Seeded source of all randomness used by key generation/encryption."""

    def __init__(self, seed: int = 2025):
        self._rng = np.random.default_rng(seed)

    def uniform_poly(self, basis: Sequence[int], ring_degree: int) -> RnsPolynomial:
        """Uniform element of ``R_Q`` sampled directly in the eval domain.

        Sampling each NTT slot uniformly is equivalent to sampling the
        polynomial uniformly (the NTT is a bijection), and matches how
        hardware PRNGs generate ``a`` directly in the evaluation domain.
        """
        data = np.empty((len(basis), ring_degree), dtype=UINT)
        for j, q in enumerate(basis):
            data[j] = self._rng.integers(0, int(q), size=ring_degree, dtype=np.uint64)
        return RnsPolynomial(basis, data, EVAL)

    def ternary_secret(self, ring_degree: int, hamming_weight: int = 0) -> np.ndarray:
        """Ternary secret coefficients in ``{-1, 0, 1}`` (int64).

        With ``hamming_weight > 0``, exactly that many coefficients are
        nonzero (sparse secrets keep the ``I(X)`` overflow polynomial small
        during bootstrapping's ModRaise, shrinking the EvalMod interval).
        """
        if hamming_weight <= 0:
            return self._rng.integers(-1, 2, size=ring_degree, dtype=np.int64)
        if hamming_weight > ring_degree:
            raise ValueError("hamming weight exceeds ring degree")
        coeffs = np.zeros(ring_degree, dtype=np.int64)
        support = self._rng.choice(ring_degree, size=hamming_weight, replace=False)
        coeffs[support] = self._rng.choice(np.array([-1, 1]), size=hamming_weight)
        return coeffs

    def gaussian_coeffs(self, ring_degree: int, std: float) -> np.ndarray:
        """Rounded centered Gaussian error coefficients (int64)."""
        return np.round(self._rng.normal(0.0, std, size=ring_degree)).astype(np.int64)

    def small_poly(
        self, coeffs: np.ndarray, basis: Sequence[int], domain: str = EVAL
    ) -> RnsPolynomial:
        """Embed small signed coefficients into ``R_Q``."""
        from .modmath import from_signed

        data = np.empty((len(basis), len(coeffs)), dtype=UINT)
        for j, q in enumerate(basis):
            data[j] = from_signed(coeffs, int(q))
        poly = RnsPolynomial(basis, data, COEFF)
        return poly.to_eval() if domain == EVAL else poly

    def error_poly(
        self, basis: Sequence[int], ring_degree: int, std: float, domain: str = EVAL
    ) -> RnsPolynomial:
        return self.small_poly(self.gaussian_coeffs(ring_degree, std), basis, domain)
