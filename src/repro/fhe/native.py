"""Compile-on-demand C kernel backend ("native").

The butterfly loops in :mod:`repro.fhe.kernels` are one numpy op per stage
across the whole limb stack — portable, but each stage streams the stack
through memory several times.  ``_native.c`` implements the same
Shoup/Harvey arithmetic as tight C loops that keep one limb cache-resident
per transform; on a single core with auto-vectorization this is ~10x the
seed per-limb loop and ~5x the batched numpy kernels at (L=24, N=8192).

The shared library is built lazily with the system C compiler (``$CC`` or
``cc``) into ``_native_build/`` next to this file, keyed by a hash of the
C source so stale objects are never reused.  Everything degrades
gracefully: if no compiler is present, compilation fails, or the built
library does not reproduce the reference kernels bit-for-bit on a smoke
test, the ``"native"`` backend simply is not registered and the default
stays ``"numpy-batched"``.  ``build_error()`` reports why.

This is also the in-tree demonstration of the :mod:`repro.fhe.backend`
extension story: an accelerated backend only implements the primitives it
accelerates (here the two NTT directions) and delegates the rest.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
import threading
from pathlib import Path
from typing import Optional, Sequence

import numpy as np

from . import kernels as _kernels
from .modmath import UINT

_SOURCE = Path(__file__).with_name("_native.c")
_CFLAGS = ("-O3", "-march=native", "-funroll-loops", "-shared", "-fPIC")

_LOCK = threading.Lock()
_LIB: Optional[ctypes.CDLL] = None
_ERROR: Optional[str] = None
_TRIED = False

_U64P = ctypes.POINTER(ctypes.c_uint64)


def _build_dir() -> Path:
    """Writable directory for the compiled object (repo dir, else tmp)."""
    preferred = _SOURCE.with_name("_native_build")
    try:
        preferred.mkdir(exist_ok=True)
        return preferred
    except OSError:
        return Path(tempfile.mkdtemp(prefix="repro-native-"))


def _compile() -> ctypes.CDLL:
    source = _SOURCE.read_text()
    tag = hashlib.sha256(source.encode()).hexdigest()[:16]
    shared_object = _build_dir() / f"_native-{tag}.so"
    if not shared_object.exists():
        compiler = os.environ.get("CC", "cc")
        scratch = str(shared_object) + f".tmp{os.getpid()}"
        proc = subprocess.run(
            [compiler, *_CFLAGS, "-o", scratch, str(_SOURCE)],
            capture_output=True, text=True,
        )
        if proc.returncode != 0:
            raise RuntimeError(
                f"{compiler} failed ({proc.returncode}): {proc.stderr.strip()}"
            )
        os.replace(scratch, shared_object)
    lib = ctypes.CDLL(str(shared_object))
    lib.repro_ntt_batch.restype = None
    lib.repro_ntt_batch.argtypes = [
        _U64P, ctypes.c_long, ctypes.c_long, _U64P, _U64P, _U64P,
    ]
    lib.repro_intt_batch.restype = None
    lib.repro_intt_batch.argtypes = [
        _U64P, ctypes.c_long, ctypes.c_long, _U64P, _U64P, _U64P, _U64P, _U64P,
    ]
    return lib


def _as_u64p(array: np.ndarray):
    return array.ctypes.data_as(_U64P)


def _run(lib: ctypes.CDLL, stack: np.ndarray, plan, inverse: bool) -> np.ndarray:
    out = np.ascontiguousarray(stack, dtype=UINT).copy()
    limbs, n = out.shape
    if inverse:
        lib.repro_intt_batch(
            _as_u64p(out), limbs, n, _as_u64p(plan.ipsi), _as_u64p(plan.ipsi_sh),
            _as_u64p(plan.p), _as_u64p(plan.n_inv), _as_u64p(plan.n_inv_sh),
        )
    else:
        lib.repro_ntt_batch(
            _as_u64p(out), limbs, n, _as_u64p(plan.psi), _as_u64p(plan.psi_sh),
            _as_u64p(plan.p),
        )
    return out


def _smoke_test(lib: ctypes.CDLL) -> None:
    """Refuse to register a miscompiled library: round-trip vs reference."""
    from .ntt import intt_reference, ntt_reference
    from .primes import generate_primes

    primes = generate_primes(2, 28, 64)
    plan = _kernels.get_ntt_plan(primes, 64)
    rng = np.random.default_rng(7)
    stack = rng.integers(0, plan.p[:, None], size=(2, 64), dtype=UINT)
    want_fwd = np.stack(
        [ntt_reference(stack[i], int(q)) for i, q in enumerate(primes)]
    )
    got_fwd = _run(lib, stack, plan, inverse=False)
    if not np.array_equal(got_fwd, want_fwd):
        raise RuntimeError("forward NTT smoke test mismatch")
    want_inv = np.stack(
        [intt_reference(want_fwd[i], int(q)) for i, q in enumerate(primes)]
    )
    got_inv = _run(lib, got_fwd, plan, inverse=True)
    if not np.array_equal(got_inv, want_inv):
        raise RuntimeError("inverse NTT smoke test mismatch")


def load_library() -> Optional[ctypes.CDLL]:
    """Compile (once) and return the shared library, or None on failure."""
    global _LIB, _ERROR, _TRIED
    with _LOCK:
        if not _TRIED:
            _TRIED = True
            try:
                lib = _compile()
                _smoke_test(lib)
                _LIB = lib
            except Exception as exc:  # no compiler, bad toolchain, ...
                _ERROR = f"{type(exc).__name__}: {exc}"
        return _LIB


def available() -> bool:
    """True when the compiled backend built and passed its smoke test."""
    return load_library() is not None


def build_error() -> Optional[str]:
    """Why the native backend is unavailable (None when it is available)."""
    load_library()
    return _ERROR


class NativeBackend:
    """C NTT/INTT kernels; other primitives delegate to the batched ones."""

    name = "native"

    def ntt_batch(self, coeffs: np.ndarray, primes: Sequence[int]) -> np.ndarray:
        return self._transform(coeffs, primes, inverse=False)

    def intt_batch(self, values: np.ndarray, primes: Sequence[int]) -> np.ndarray:
        return self._transform(values, primes, inverse=True)

    def _transform(self, stack, primes, inverse):
        stack = np.ascontiguousarray(stack, dtype=UINT)
        if stack.ndim == 1:
            return self._transform(stack[None, :], primes, inverse)[0]
        lib = load_library()
        plan = _kernels.get_ntt_plan(primes, stack.shape[1])
        if lib is None or not plan.supported:
            fall = _kernels.intt_batch if inverse else _kernels.ntt_batch
            return fall(stack, primes)
        return _run(lib, stack, plan, inverse)

    def base_convert(self, limbs, source, target):
        return _kernels.base_convert(limbs, source, target)

    def mod_up(self, limbs, source, target):
        return _kernels.mod_up(limbs, source, target)

    def mod_down(self, limbs, base, extension):
        return _kernels.mod_down(limbs, base, extension)

    def pointwise_mulmod(self, a, b, primes):
        return _kernels.pointwise_mulmod(a, b, primes)
