#!/usr/bin/env python
"""Encrypted logistic-regression inference (the HELR workload, small N).

A logistic-regression model is applied to *encrypted* feature vectors:
the server computes sigmoid(W @ x + b) without ever decrypting x, using

* a BSGS diagonal matrix-vector product for ``W @ x``;
* a Chebyshev polynomial approximation of the sigmoid.

The model is trained in the clear on a synthetic 2-class problem
(substituting for MNIST per DESIGN.md section 3 — FHE cost depends on
shapes, not weight values), then evaluated homomorphically and compared
against the plaintext scores.

Run:  python examples/encrypted_logreg.py
"""

import numpy as np

from repro.fhe import CKKSContext, Evaluator, make_params
from repro.fhe.linear import bsgs_matvec
from repro.fhe.polyeval import ChebyshevEvaluator


def sigmoid(z):
    return 1.0 / (1.0 + np.exp(-z))


def train_plaintext_model(rng, features: int, samples: int = 400):
    """A few steps of plain logistic regression on synthetic data."""
    true_w = rng.normal(size=features)
    x = rng.normal(size=(samples, features))
    labels = (x @ true_w + 0.1 * rng.normal(size=samples) > 0).astype(float)
    w = np.zeros(features)
    lr = 0.5
    for _ in range(200):
        grad = x.T @ (sigmoid(x @ w) - labels) / samples
        w -= lr * grad
    accuracy = np.mean((sigmoid(x @ w) > 0.5) == labels)
    return w, accuracy


def main():
    rng = np.random.default_rng(7)
    params = make_params(ring_degree=256, levels=10, prime_bits=28,
                         num_digits=3)
    context = CKKSContext(params, seed=11)
    evaluator = Evaluator(context)
    cheb = ChebyshevEvaluator(evaluator)

    features = 16
    w, accuracy = train_plaintext_model(rng, features)
    print(f"[train]   plaintext model accuracy: {accuracy:.2%}")

    # Pack a batch of feature vectors: each ciphertext holds one vector
    # tiled across the slots (so rotations wrap within the vector).
    batch = [rng.normal(size=features) * 0.5 for _ in range(4)]
    slots = params.slot_count
    encrypted = [
        context.encrypt_values(np.tile(x, slots // features)) for x in batch
    ]

    # W @ x as a diagonal matmul: a rank-1 "matrix" replicating the score
    # into every slot, so the sigmoid applies element-wise afterwards.
    w_matrix = np.tile(w, (features, 1))

    for i, (x, ct) in enumerate(zip(batch, encrypted)):
        score_ct = bsgs_matvec(evaluator, ct, matrix=w_matrix)
        prob_ct = cheb.evaluate_function(
            score_ct, sigmoid, degree=15, interval=(-8.0, 8.0))
        prob = context.decrypt_values(prob_ct).real[0]
        true_prob = sigmoid(w @ x)
        print(f"[infer]   sample {i}: encrypted={prob:.4f} "
              f"plaintext={true_prob:.4f} "
              f"|err|={abs(prob - true_prob):.2e}")


if __name__ == "__main__":
    main()
