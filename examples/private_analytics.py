#!/usr/bin/env python
"""Private database analytics on encrypted data.

The paper's other headline use case (Section 1): a client uploads an
encrypted column of salaries; the server answers aggregate queries —
mean, variance, and "how many earn above the threshold?" — without ever
seeing a single value.

Run:  python examples/private_analytics.py
"""

import numpy as np

from repro.fhe import CKKSContext, Evaluator, make_params
from repro.fhe.analytics import (
    encrypted_count_above,
    encrypted_mean,
    encrypted_variance,
)
from repro.fhe.packing import pad_prefix


def main():
    params = make_params(ring_degree=256, levels=14, prime_bits=28,
                         num_digits=3)
    context = CKKSContext(params, seed=17)
    evaluator = Evaluator(context)

    rng = np.random.default_rng(4)
    rows = 64
    salaries = rng.lognormal(mean=0.0, sigma=0.3, size=rows)
    salaries = salaries / salaries.max()  # normalize into CKKS range

    # --- client side: encrypt the column ------------------------------- #
    column = context.encrypt_values(
        pad_prefix(salaries, params.slot_count))
    column_padded_low = context.encrypt_values(
        pad_prefix(salaries, params.slot_count, fill=-1.0))
    print(f"[client] encrypted {rows} salary records "
          f"({column.level}-level ciphertext)")

    # --- server side: aggregate queries on ciphertexts ----------------- #
    mean_ct = encrypted_mean(evaluator, column, rows)
    var_ct = encrypted_variance(evaluator, column, rows)
    threshold = 0.5
    count_ct = encrypted_count_above(evaluator, column_padded_low, rows,
                                     threshold=threshold, sharpness=12.0)

    # --- client side: decrypt the three aggregate results -------------- #
    mean = context.decrypt_values(mean_ct).real[0]
    variance = context.decrypt_values(var_ct).real[0]
    raw_count = context.decrypt_values(count_ct).real[0]
    baseline = (params.slot_count - rows) / (1 + np.exp(12.0))
    count = raw_count - baseline

    print(f"[server] SELECT AVG(salary)          -> {mean:.4f} "
          f"(true {salaries.mean():.4f})")
    print(f"[server] SELECT VAR(salary)          -> {variance:.4f} "
          f"(true {np.var(salaries):.4f})")
    print(f"[server] SELECT COUNT(*) WHERE > {threshold}  -> {count:.1f} "
          f"(true {np.sum(salaries > threshold)})")


if __name__ == "__main__":
    main()
