#!/usr/bin/env python
"""Cinnamon's parallel keyswitching algorithms, functionally.

Runs the four keyswitching algorithms of Section 4.3 on real data across
four virtual chips, verifying correctness against the sequential reference
and printing each algorithm's communication ledger — the algorithmic
content of Figure 8 and Section 7.4 in one script.

Run:  python examples/keyswitch_comparison.py
"""

import numpy as np

from repro.fhe import CKKSContext, make_params
from repro.fhe.keyswitch import keyswitch
from repro.fhe.parallel import (
    ParallelKeyswitcher,
    batched_rotations_input_broadcast,
    modular_partition,
)
from repro.fhe.rns import crt_reconstruct


def main():
    params = make_params(ring_degree=128, levels=8, prime_bits=28,
                         num_digits=2)
    context = CKKSContext(params, seed=3)
    keychain = context.keychain
    chips = 4
    level = 8

    d = keychain.rng.uniform_poly(params.basis_at_level(level),
                                  params.ring_degree)
    evk = keychain.relin_key(level)
    reference = keyswitch(d, evk, params)

    print(f"Keyswitching one level-{level} polynomial across {chips} chips\n")
    header = f"{'algorithm':20s} {'correct':>9s} {'bcasts':>7s} " \
             f"{'aggrs':>6s} {'limbs moved':>12s}"
    print(header)

    # Input broadcast: bit-exact.
    sw = ParallelKeyswitcher(params, chips)
    f0, f1 = sw.input_broadcast(d, evk)
    exact = f0.equals(reference[0]) and f1.equals(reference[1])
    print(f"{'input broadcast':20s} {'bit-exact' if exact else 'NO':>9s} "
          f"{sw.stats.broadcasts:>7d} {sw.stats.aggregations:>6d} "
          f"{sw.stats.limbs_broadcast + sw.stats.limbs_aggregated:>12d}")

    # CiFHER baseline: bit-exact but 3 broadcasts.
    sw = ParallelKeyswitcher(params, chips)
    f0, f1 = sw.cifher(d, evk)
    exact = f0.equals(reference[0]) and f1.equals(reference[1])
    print(f"{'cifher':20s} {'bit-exact' if exact else 'NO':>9s} "
          f"{sw.stats.broadcasts:>7d} {sw.stats.aggregations:>6d} "
          f"{sw.stats.limbs_broadcast + sw.stats.limbs_aggregated:>12d}")

    # Output aggregation: noise-equivalent (bounded rounding difference).
    partition = modular_partition(level, chips)
    evk_mod = keychain.switching_key("relin", level, partition)
    seq = keyswitch(d, evk_mod, params)
    sw = ParallelKeyswitcher(params, chips)
    f0, f1 = sw.output_aggregation(d, evk_mod)
    diff = (seq[0] - f0).to_coeff()
    bound = max(abs(v) for v in crt_reconstruct(diff.data, diff.basis))
    print(f"{'output aggregation':20s} {f'|diff|<={bound}':>9s} "
          f"{sw.stats.broadcasts:>7d} {sw.stats.aggregations:>6d} "
          f"{sw.stats.limbs_broadcast + sw.stats.limbs_aggregated:>12d}")

    # The batched pattern: r rotations, ONE broadcast (Section 4.3.1).
    print("\nBatched pattern: 6 rotations of one ciphertext")
    z = np.linspace(-1, 1, params.slot_count)
    ct = context.encrypt_values(z)
    sw = ParallelKeyswitcher(params, chips)
    rotations = [1, 2, 3, 4, 5, 6]
    outs = batched_rotations_input_broadcast(sw, keychain, ct, rotations)
    worst = max(
        np.max(np.abs(context.decrypt_values(outs[r]).real - np.roll(z, -r)))
        for r in rotations
    )
    print(f"  {len(rotations)} rotations -> {sw.stats.broadcasts} broadcast "
          f"(CiFHER would need {3 * len(rotations)}), max error {worst:.2e}")


if __name__ == "__main__":
    main()
