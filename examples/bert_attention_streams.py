#!/usr/bin/env python
"""Program-level parallelism: a transformer attention block on streams.

The BERT workload's attention section exposes six independent ciphertexts
(Section 7.1).  This example writes a miniature attention block in the
Cinnamon DSL with a ``StreamPool``, compiles it for Cinnamon-4/8/12, and
cycle-simulates each — showing how stream parallelism buys speedup that a
single-ciphertext program cannot.

Run:  python examples/bert_attention_streams.py
"""

from repro.core import CinnamonCompiler, CinnamonProgram, CompilerOptions
from repro.core.dsl import StreamPool
from repro.core.ir.bootstrap_graph import bsgs_matmul_ops
from repro.fhe import ArchParams
from repro.sim import CINNAMON_4, CINNAMON_8, CINNAMON_12, CycleSimulator
from repro.sim.config import config_for


def attention_program(num_streams: int) -> CinnamonProgram:
    """Per stream: scores = softmax-ish((Q x) * (K x)), out = scores @ V."""
    prog = CinnamonProgram(f"attention-x{num_streams}", level=14)

    def stream_fn(stream_id: int):
        x = prog.input(f"x{stream_id}")
        q = bsgs_matmul_ops(prog, x, 16, f"wq{stream_id % 2}")
        k = bsgs_matmul_ops(prog, x, 16, f"wk{stream_id % 2}")
        scores = q * k
        # Cheap polynomial softmax surrogate: s + s^2 (keeps the example
        # shallow; the real workload uses the degree-31 approximation).
        soft = scores + scores * scores
        out = bsgs_matmul_ops(prog, soft, 16, f"wv{stream_id % 2}")
        prog.output(f"y{stream_id}", out)

    StreamPool(prog, num_streams, stream_fn)
    return prog


def main():
    params = ArchParams(max_level=14)
    machines = {
        "Cinnamon-4 (1 stream x 4 chips)": (CINNAMON_4, 1, 4),
        "Cinnamon-8 (2 streams x 4 chips)": (CINNAMON_8, 2, 4),
        "Cinnamon-12 (3 streams x 4 chips)": (CINNAMON_12, 3, 4),
    }
    reference_us = None
    for label, (machine, streams, chips_per_stream) in machines.items():
        program = attention_program(streams)
        options = CompilerOptions(num_chips=machine.num_chips,
                                  chips_per_stream=chips_per_stream)
        compiled = CinnamonCompiler(params, options).compile(program)
        result = CycleSimulator(machine).run(compiled.isa)
        per_head_us = result.seconds * 1e6 / streams
        if reference_us is None:
            reference_us = per_head_us
        print(f"{label:36s} {result.cycles:>9d} cycles | "
              f"{per_head_us:8.1f} us per head | "
              f"throughput speedup {reference_us / per_head_us:4.2f}x")


if __name__ == "__main__":
    main()
