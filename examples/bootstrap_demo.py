#!/usr/bin/env python
"""Full CKKS bootstrapping on real encrypted data.

A ciphertext with an exhausted multiplicative budget (level 1) is
refreshed through the complete pipeline — ModRaise, CoeffToSlot, EvalMod,
SlotToCoeff — and then *used*: the refreshed ciphertext is squared twice,
something the exhausted one could never do.

Takes ~10 s (pure-Python CKKS at N = 256).

Run:  python examples/bootstrap_demo.py
"""

import time

import numpy as np

from repro.fhe import CKKSContext, Evaluator, make_params
from repro.fhe.bootstrap import Bootstrapper


def main():
    params = make_params(ring_degree=256, levels=18, prime_bits=28,
                         num_digits=3, secret_hamming_weight=32)
    context = CKKSContext(params, seed=9)
    bootstrapper = Bootstrapper(context)
    evaluator = Evaluator(context)

    rng = np.random.default_rng(1)
    values = rng.uniform(-0.9, 0.9, params.slot_count)

    exhausted = bootstrapper.encrypt_for_bootstrap(values)
    print(f"[before]  level {exhausted.level}: multiplicative budget gone "
          f"(any multiplication would fail)")

    start = time.perf_counter()
    refreshed = bootstrapper.bootstrap(exhausted)
    elapsed = time.perf_counter() - start
    error = np.max(np.abs(context.decrypt_values(refreshed).real - values))
    print(f"[boot]    refreshed to level {refreshed.level} in {elapsed:.1f}s; "
          f"value error {error:.2e}")

    # Spend the refreshed budget.
    squared = evaluator.square(refreshed)
    fourth = evaluator.square(squared)
    result = context.decrypt_values(fourth).real
    err = np.max(np.abs(result - values ** 4))
    print(f"[after]   computed x^4 on the refreshed ciphertext "
          f"(level {fourth.level}), error {err:.2e}")


if __name__ == "__main__":
    main()
