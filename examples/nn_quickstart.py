#!/usr/bin/env python
"""The repro.nn model frontend in one page.

1. Build a model from typed layers (HELR's logistic-regression step),
   lower it to a Cinnamon DSL program with automatic packing, and run a
   *real* encrypted forward pass — compiler, ISA emulator, RNS-CKKS
   limbs — checking it against the plaintext numpy reference.
2. Lower a BERT encoder block at serving scale, compile it for the
   Cinnamon-4 machine, and cycle-simulate its latency.
3. Show the depth ledger: how a deep model schedules bootstraps
   (Orion-style, before the stages that would underflow the budget).

Run:  python examples/nn_quickstart.py
"""

import numpy as np

import repro
from repro.core.ir.bootstrap_graph import BOOTSTRAP_13
from repro.fhe.params import ArchParams
from repro.nn import (
    build_bert_encoder,
    build_helr,
    encrypted_forward,
    lower,
    nn_params,
    sample_input,
)
from repro.workloads.serving import nn_mix


def main():
    # ------------------------------------------------------------------ #
    # 1. HELR end to end: model -> lowering -> compile -> emulate.
    model = build_helr()                       # Linear + degree-7 sigmoid
    lowered = lower(model, nn_params(levels=8))
    x = sample_input(model)                    # (batch, features) lanes
    got = encrypted_forward(lowered, x)
    want = model.reference(x)
    print(f"[nn]       {model.name}: {len(lowered.program.ops)} ops, "
          f"depth {lowered.plan.total_depth}, "
          f"parity max|err| = {np.abs(got - want).max():.2e}")

    # ------------------------------------------------------------------ #
    # 2. A BERT encoder block as a serving workload: lower at the small
    #    scale, compile for Cinnamon-4, and cycle-simulate latency.
    entry = nn_mix("small")["nn-bert-encoder"]
    compiled = repro.compile(entry.build(), entry.params,
                             machine="cinnamon_4")
    result = compiled.simulate("cinnamon_4")
    print(f"[serve]    nn-bert-encoder: {result.cycles} cycles "
          f"({result.milliseconds:.3f} ms on cinnamon_4)")

    # ------------------------------------------------------------------ #
    # 3. Deep models refresh mid-graph: at the paper scale the encoder's
    #    depth exceeds BOOTSTRAP_13's steady-state budget, so the
    #    lowering plans refreshes before the stages that would underflow.
    deep = lower(build_bert_encoder(), ArchParams(),
                 bootstrap_plan=BOOTSTRAP_13)
    print(f"[depth]    paper BERT encoder: depth {deep.plan.total_depth}, "
          f"{deep.plan.bootstrap_count} bootstraps at stages "
          f"{sorted(set(deep.plan.refresh_at))}")


if __name__ == "__main__":
    main()
