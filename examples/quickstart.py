#!/usr/bin/env python
"""Quickstart: the Cinnamon framework end to end in one page.

1. Run real encrypted arithmetic with the functional CKKS library.
2. Write the same computation in the Cinnamon DSL, compile it with the
   ``repro.compile()`` facade for a 2-chip machine, and *emulate* the
   generated ISA — checking that it decrypts to the same answer.
3. Re-compile at datacenter scale (N = 64K) and cycle-simulate on
   Cinnamon-4 — then compile again and observe the runtime cache hit.

Run:  python examples/quickstart.py

Set ``QUICKSTART_TRACE=trace.json`` to record the whole run with
repro.obs cross-layer tracing and write one merged Chrome/Perfetto
timeline (compile passes + simulated functional units).
"""

import os

import numpy as np

import repro
from repro import CinnamonProgram
from repro.fhe import ArchParams, CKKSContext, Evaluator, make_params


def main():
    trace_out = os.environ.get("QUICKSTART_TRACE")
    if trace_out:
        repro.enable_tracing()
    # ------------------------------------------------------------------ #
    # 1. Functional CKKS: encrypt -> compute -> decrypt.
    params = make_params(ring_degree=256, levels=8, prime_bits=28)
    context = CKKSContext(params, seed=42)
    evaluator = Evaluator(context)

    rng = np.random.default_rng(0)
    x = rng.uniform(-1, 1, params.slot_count)
    y = rng.uniform(-1, 1, params.slot_count)

    ct_x = context.encrypt_values(x)
    ct_y = context.encrypt_values(y)
    ct_out = evaluator.add(evaluator.mul(ct_x, ct_y),
                           evaluator.rotate(ct_x, 1))
    result = context.decrypt_values(ct_out).real
    expected = x * y + np.roll(x, -1)
    print(f"[fhe]      x*y + rot(x,1): max error = "
          f"{np.max(np.abs(result - expected)):.2e}")

    # ------------------------------------------------------------------ #
    # 2. The same computation as a Cinnamon DSL program, compiled through
    #    the facade and emulated instruction by instruction.
    program = CinnamonProgram("quickstart", level=params.max_level)
    a = program.input("x")
    b = program.input("y")
    program.output("out", a * b + a.rotate(1))

    compiled = repro.compile(program, params, machine=2)
    print(f"[compiler] {len(compiled.ct_program.ops)} ciphertext ops -> "
          f"{len(compiled.poly_program.ops)} polynomial ops -> "
          f"{len(compiled.limb_program.ops)} limb ops -> "
          f"{compiled.instruction_count} ISA instructions on 2 chips")

    outputs = compiled.emulate({"x": ct_x, "y": ct_y}, context=context)
    emulated = context.decrypt_values(outputs["out"]).real
    print(f"[emulator] compiled program: max error = "
          f"{np.max(np.abs(emulated - expected)):.2e}")

    # ------------------------------------------------------------------ #
    # 3. Datacenter scale: N = 64K, cycle-simulated on four chips.
    #    Machines are named; `"cinnamon_4"` resolves to the standard
    #    4-chip ring (repro.resolve_machine accepts names, chip counts,
    #    or MachineConfig objects everywhere).
    arch = ArchParams(max_level=16)

    def build_big():
        big = CinnamonProgram("quickstart-64k", level=16)
        a = big.input("x")
        b = big.input("y")
        big.output("out", a * b + a.rotate(1))
        return big

    big = repro.compile(build_big(), arch, machine="cinnamon_4")
    timing = big.simulate("cinnamon_4")
    util = timing.utilization()
    print(f"[simulator] N=64K on Cinnamon-4: {timing.cycles} cycles "
          f"({timing.seconds * 1e6:.1f} us at 1 GHz), "
          f"compute util {util['compute']:.0%}, "
          f"HBM util {util['memory']:.0%}")

    # Compiling a structurally identical program again is served from the
    # default session's content-addressed cache — no IR pass re-runs.
    again = repro.compile(build_big(), arch, machine="cinnamon_4")
    trace = repro.default_session().trace()
    last = trace["jobs"][-1]
    print(f"[runtime]  recompile of identical program: cache={last['cache']} "
          f"(same artifact: {again is big}), "
          f"{len(trace['jobs'])} traced jobs this session")

    if trace_out:
        events = repro.export_chrome_trace(trace_out)
        print(f"[obs]      merged Chrome trace -> {trace_out} "
              f"({events} events; load in Perfetto)")


if __name__ == "__main__":
    main()
